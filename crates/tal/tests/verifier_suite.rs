//! Verifier rejection/acceptance suite: one case per typing rule.
//!
//! The verifier is the safety gate for dynamic patches, so its rejection
//! behaviour is specified as exhaustively as its acceptance.

use tal::{
    verify_module, Field, FnSig, Instr, ModuleBuilder, NoAmbientTypes, Ty, TypeDef, VerifyError,
};

fn check_fn(
    sig: FnSig,
    build: impl FnOnce(&mut tal::FunctionBuilder<'_>),
) -> Result<(), VerifyError> {
    let mut b = ModuleBuilder::new("t", "v");
    b.def_type(TypeDef::new(
        "rec",
        vec![Field::new("n", Ty::Int), Field::new("s", Ty::Str)],
    ));
    b.function("f", sig, build);
    verify_module(&b.finish(), &NoAmbientTypes)
}

fn rejects(sig: FnSig, needle: &str, build: impl FnOnce(&mut tal::FunctionBuilder<'_>)) {
    let e = check_fn(sig, build).expect_err("must be rejected");
    assert!(e.message.contains(needle), "expected {needle:?} in `{e}`");
}

fn accepts(sig: FnSig, build: impl FnOnce(&mut tal::FunctionBuilder<'_>)) {
    check_fn(sig, build).unwrap_or_else(|e| panic!("must verify: {e}"));
}

#[test]
fn empty_body_is_rejected() {
    rejects(FnSig::new(vec![], Ty::Unit), "empty code body", |_| {});
}

#[test]
fn locals_prefix_mismatch_rejected() {
    // Build a function whose first local does not match its parameter.
    let mut m = tal::Module::new("t", "v");
    m.functions.push(tal::Function {
        name: "f".into(),
        sig: FnSig::new(vec![Ty::Int], Ty::Int),
        locals: vec![Ty::Bool],
        code: vec![Instr::PushInt(1), Instr::Ret],
    });
    let e = verify_module(&m, &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("does not match parameter"), "{e}");

    let mut m = tal::Module::new("t", "v");
    m.functions.push(tal::Function {
        name: "f".into(),
        sig: FnSig::new(vec![Ty::Int], Ty::Int),
        locals: vec![],
        code: vec![Instr::PushInt(1), Instr::Ret],
    });
    let e = verify_module(&m, &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("fewer locals"), "{e}");
}

#[test]
fn jump_bounds_are_checked() {
    rejects(FnSig::new(vec![], Ty::Unit), "falls off", |f| {
        f.emit(Instr::Jump(99));
    });
}

#[test]
fn operand_kinds_are_checked_per_instruction() {
    // Integer op on strings.
    rejects(
        FnSig::new(vec![Ty::Str, Ty::Str], Ty::Int),
        "expected int",
        |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(1));
            f.emit(Instr::Add);
            f.emit(Instr::Ret);
        },
    );
    // Concat on ints.
    rejects(
        FnSig::new(vec![Ty::Int, Ty::Int], Ty::Str),
        "expected string",
        |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(1));
            f.emit(Instr::Concat);
            f.emit(Instr::Ret);
        },
    );
    // Branch on non-bool.
    rejects(FnSig::new(vec![Ty::Int], Ty::Unit), "expected bool", |f| {
        f.emit(Instr::LoadLocal(0));
        f.emit(Instr::JumpIfFalse(2));
        f.emit(Instr::PushUnit);
        f.emit(Instr::Ret);
    });
    // ArrayGet with non-int index.
    rejects(
        FnSig::new(vec![Ty::array(Ty::Int), Ty::Bool], Ty::Int),
        "expected int",
        |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(1));
            f.emit(Instr::ArrayGet);
            f.emit(Instr::Ret);
        },
    );
    // ArrayGet on non-array.
    rejects(
        FnSig::new(vec![Ty::Int], Ty::Int),
        "array.get on non-array",
        |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushInt(0));
            f.emit(Instr::ArrayGet);
            f.emit(Instr::Ret);
        },
    );
    // ArraySet element type mismatch.
    rejects(
        FnSig::new(vec![Ty::array(Ty::Int)], Ty::Unit),
        "array.set type mismatch",
        |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushInt(0));
            f.emit(Instr::PushBool(true));
            f.emit(Instr::ArraySet);
            f.emit(Instr::PushUnit);
            f.emit(Instr::Ret);
        },
    );
    // CallIndirect on non-function.
    rejects(
        FnSig::new(vec![Ty::Int], Ty::Int),
        "call.indirect on non-function",
        |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::CallIndirect);
            f.emit(Instr::Ret);
        },
    );
}

#[test]
fn record_instruction_rules() {
    // Field index out of range.
    rejects(
        FnSig::new(vec![Ty::named("rec")], Ty::Int),
        "has no field 7",
        |f| {
            let tr = f.type_ref("rec");
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::GetField(tr, 7));
            f.emit(Instr::Ret);
        },
    );
    // SetField with wrong value type.
    rejects(
        FnSig::new(vec![Ty::named("rec")], Ty::Unit),
        "expected int",
        |f| {
            let tr = f.type_ref("rec");
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushBool(true));
            f.emit(Instr::SetField(tr, 0));
            f.emit(Instr::PushUnit);
            f.emit(Instr::Ret);
        },
    );
    // NewRecord with fields in the wrong order.
    rejects(
        FnSig::new(vec![], Ty::named("rec")),
        "expected string",
        |f| {
            let tr = f.type_ref("rec");
            let s = f.string("x");
            f.emit(Instr::PushStr(s));
            f.emit(Instr::PushInt(1));
            f.emit(Instr::NewRecord(tr));
            f.emit(Instr::Ret);
        },
    );
    // IsNull on the wrong named type.
    let mut b = ModuleBuilder::new("t", "v");
    b.def_type(TypeDef::new("a", vec![Field::new("x", Ty::Int)]));
    b.def_type(TypeDef::new("b", vec![Field::new("x", Ty::Int)]));
    let trb = b.type_ref("b");
    b.function("f", FnSig::new(vec![Ty::named("a")], Ty::Bool), move |f| {
        f.emit(Instr::LoadLocal(0));
        f.emit(Instr::IsNull(trb));
        f.emit(Instr::Ret);
    });
    let e = verify_module(&b.finish(), &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("expected b, found a"), "{e}");
}

#[test]
fn nominal_types_do_not_unify_structurally() {
    // Two structurally identical named types are distinct.
    let mut b = ModuleBuilder::new("t", "v");
    b.def_type(TypeDef::new("a", vec![Field::new("x", Ty::Int)]));
    b.def_type(TypeDef::new("b", vec![Field::new("x", Ty::Int)]));
    let tra = b.type_ref("a");
    b.function("f", FnSig::new(vec![], Ty::named("b")), move |f| {
        f.emit(Instr::PushInt(1));
        f.emit(Instr::NewRecord(tra));
        f.emit(Instr::Ret);
    });
    let e = verify_module(&b.finish(), &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("expected b, found a"), "{e}");
}

#[test]
fn stack_discipline_at_joins() {
    // A loop that grows the stack each iteration must be rejected (the
    // entry typing of the loop head would disagree).
    rejects(FnSig::new(vec![], Ty::Int), "join", |f| {
        let top = f.new_label();
        f.emit(Instr::PushInt(0)); // 0
        f.bind(top);
        f.emit(Instr::PushInt(1)); // grows every iteration
        f.emit(Instr::PushBool(true));
        f.jump_if_false(top); // jump back with a deeper stack? no: jump target is `top`
        f.jump(top);
    });
}

#[test]
fn diamond_join_with_equal_typing_is_accepted() {
    accepts(FnSig::new(vec![Ty::Bool], Ty::Int), |f| {
        let lelse = f.new_label();
        let lend = f.new_label();
        f.emit(Instr::LoadLocal(0));
        f.jump_if_false(lelse);
        f.emit(Instr::PushInt(1));
        f.jump(lend);
        f.bind(lelse);
        f.emit(Instr::PushInt(2));
        f.bind(lend);
        f.emit(Instr::Ret);
    });
}

#[test]
fn unreachable_ill_typed_code_is_ignored() {
    // The verifier is a reachability-based dataflow: dead code after an
    // unconditional return is not checked (this mirrors TAL, where only
    // reachable instructions need typings).
    accepts(FnSig::new(vec![], Ty::Int), |f| {
        f.emit(Instr::PushInt(1));
        f.emit(Instr::Ret);
        f.emit(Instr::Concat); // ill-typed but unreachable
        f.emit(Instr::Ret);
    });
}

#[test]
fn swap_dup_pop_typing() {
    accepts(FnSig::new(vec![Ty::Int, Ty::Str], Ty::Str), |f| {
        f.emit(Instr::LoadLocal(0));
        f.emit(Instr::LoadLocal(1));
        f.emit(Instr::Swap); // [str, int]
        f.emit(Instr::Pop); // [str]
        f.emit(Instr::Dup); // [str, str]
        f.emit(Instr::Concat);
        f.emit(Instr::Ret);
    });
    rejects(FnSig::new(vec![], Ty::Unit), "underflow", |f| {
        f.emit(Instr::Dup);
        f.emit(Instr::PushUnit);
        f.emit(Instr::Ret);
    });
    rejects(FnSig::new(vec![Ty::Int], Ty::Unit), "underflow", |f| {
        f.emit(Instr::LoadLocal(0));
        f.emit(Instr::Swap);
        f.emit(Instr::PushUnit);
        f.emit(Instr::Ret);
    });
}

#[test]
fn symbol_kind_confusion_is_rejected() {
    // Calling a global symbol.
    let mut b = ModuleBuilder::new("t", "v");
    let g = b.declare_global("g", Ty::Int);
    b.global("g", Ty::Int, vec![Instr::PushInt(0), Instr::Ret]);
    b.function("f", FnSig::new(vec![], Ty::Int), move |f| {
        f.emit(Instr::Call(g));
        f.emit(Instr::Ret);
    });
    let e = verify_module(&b.finish(), &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("wrong symbol kind"), "{e}");

    // Loading a function symbol as a global.
    let mut b = ModuleBuilder::new("t", "v");
    b.function("h", FnSig::new(vec![], Ty::Unit), |f| {
        f.emit(Instr::PushUnit);
        f.emit(Instr::Ret);
    });
    let h = b.declare_fn("h", FnSig::new(vec![], Ty::Unit));
    b.function("f", FnSig::new(vec![], Ty::Unit), move |f| {
        f.emit(Instr::LoadGlobal(h));
        f.emit(Instr::Ret);
    });
    let e = verify_module(&b.finish(), &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("not a global symbol"), "{e}");

    // CallHost through a guest-function symbol.
    let mut b = ModuleBuilder::new("t", "v");
    b.function("h", FnSig::new(vec![], Ty::Unit), |f| {
        f.emit(Instr::PushUnit);
        f.emit(Instr::Ret);
    });
    let h = b.declare_fn("h", FnSig::new(vec![], Ty::Unit));
    b.function("f", FnSig::new(vec![], Ty::Unit), move |f| {
        f.emit(Instr::CallHost(h));
        f.emit(Instr::Ret);
    });
    let e = verify_module(&b.finish(), &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("wrong symbol kind"), "{e}");
}

#[test]
fn function_value_types_are_precise() {
    // Pushing &h where a different signature is expected must fail at the
    // point of use (sig is part of the value's type).
    let mut b = ModuleBuilder::new("t", "v");
    b.function("h", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
        f.emit(Instr::LoadLocal(0));
        f.emit(Instr::Ret);
    });
    let h = b.declare_fn("h", FnSig::new(vec![Ty::Int], Ty::Int));
    b.function("f", FnSig::new(vec![], Ty::Bool), move |f| {
        f.emit(Instr::PushFn(h));
        f.emit(Instr::CallIndirect); // pops no args per sig? needs an int
        f.emit(Instr::Ret);
    });
    let e = verify_module(&b.finish(), &NoAmbientTypes).unwrap_err();
    assert!(
        e.message.contains("underflow") || e.message.contains("expected"),
        "{e}"
    );
}

#[test]
fn bad_pool_references_are_rejected() {
    let mut m = tal::Module::new("t", "v");
    m.functions.push(tal::Function {
        name: "f".into(),
        sig: FnSig::new(vec![], Ty::Str),
        locals: vec![],
        code: vec![Instr::PushStr(tal::StrId(9)), Instr::Ret],
    });
    let e = verify_module(&m, &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("bad string ref"), "{e}");

    let mut m = tal::Module::new("t", "v");
    m.functions.push(tal::Function {
        name: "f".into(),
        sig: FnSig::new(vec![], Ty::Int),
        locals: vec![],
        code: vec![Instr::Call(tal::SymId(4)), Instr::Ret],
    });
    let e = verify_module(&m, &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("bad symbol ref"), "{e}");
}

#[test]
fn global_initialiser_must_be_closed() {
    // Initialisers have no locals: referencing one underflows or errors.
    let mut m = tal::Module::new("t", "v");
    m.globals.push(tal::GlobalDef {
        name: "g".into(),
        ty: Ty::Int,
        init: vec![Instr::LoadLocal(0), Instr::Ret],
    });
    let e = verify_module(&m, &NoAmbientTypes).unwrap_err();
    assert!(e.message.contains("no local 0"), "{e}");
}
