//! Text-format completeness: every instruction variant must survive
//! `Display` → `parse_instr` unchanged, so the on-disk format can never
//! silently lag the instruction set.

use tal::text::parse_instr;
use tal::{Instr, StrId, SymId, Ty, TypeRefId};

/// One of every instruction variant (operands arbitrary but in-range for
/// the pools a real module would carry).
fn all_variants() -> Vec<Instr> {
    vec![
        Instr::PushUnit,
        Instr::PushInt(-42),
        Instr::PushInt(i64::MAX),
        Instr::PushBool(true),
        Instr::PushBool(false),
        Instr::PushStr(StrId(3)),
        Instr::PushNull(TypeRefId(1)),
        Instr::PushFn(SymId(2)),
        Instr::LoadLocal(7),
        Instr::StoreLocal(0),
        Instr::LoadGlobal(SymId(4)),
        Instr::StoreGlobal(SymId(5)),
        Instr::Dup,
        Instr::Pop,
        Instr::Swap,
        Instr::Add,
        Instr::Sub,
        Instr::Mul,
        Instr::Div,
        Instr::Rem,
        Instr::Neg,
        Instr::Eq,
        Instr::Ne,
        Instr::Lt,
        Instr::Le,
        Instr::Gt,
        Instr::Ge,
        Instr::And,
        Instr::Or,
        Instr::Not,
        Instr::Concat,
        Instr::StrLen,
        Instr::Substr,
        Instr::CharAt,
        Instr::StrEq,
        Instr::StrFind,
        Instr::IntToStr,
        Instr::StrToInt,
        Instr::Jump(9),
        Instr::JumpIfFalse(12),
        Instr::Call(SymId(1)),
        Instr::CallIndirect,
        Instr::CallHost(SymId(0)),
        Instr::Ret,
        Instr::NewRecord(TypeRefId(0)),
        Instr::GetField(TypeRefId(0), 2),
        Instr::SetField(TypeRefId(1), 0),
        Instr::IsNull(TypeRefId(0)),
        Instr::NewArray(Ty::Int),
        Instr::NewArray(Ty::array(Ty::named("t"))),
        Instr::NewArray(Ty::func(vec![Ty::Int, Ty::Str], Ty::Bool)),
        Instr::ArrayGet,
        Instr::ArraySet,
        Instr::ArrayLen,
        Instr::ArrayPush,
        Instr::UpdatePoint,
        Instr::Nop,
    ]
}

#[test]
fn every_instruction_round_trips_through_text() {
    for instr in all_variants() {
        let line = instr.to_string();
        let back = parse_instr(&line).unwrap_or_else(|e| panic!("`{line}` must parse: {e}"));
        assert_eq!(instr, back, "`{line}`");
    }
}

#[test]
fn display_forms_are_distinct() {
    // No two variants may share a rendering (ambiguous disassembly).
    let rendered: Vec<String> = all_variants().iter().map(ToString::to_string).collect();
    let unique: std::collections::BTreeSet<&String> = rendered.iter().collect();
    assert_eq!(unique.len(), rendered.len());
}

#[test]
fn encoded_size_is_positive_for_all_variants() {
    for instr in all_variants() {
        assert!(instr.encoded_size() >= 1, "{instr}");
    }
}
