//! The type language of the bytecode.
//!
//! Types are deliberately close to what Popcorn (the paper's safe C dialect)
//! offers: integers, booleans, strings, fixed-shape named records, growable
//! arrays, first-class function pointers and unit. Named record types are
//! *nominal*: two definitions with identical fields but different names are
//! distinct, which is what makes type *versioning* (`T@1`, `T@2`) meaningful
//! for dynamic updates.

use std::fmt;

/// A bytecode-level type.
///
/// `Named` types admit a `null` value (as in C); every other type is
/// non-nullable. Function-typed locals default to an *unresolved* function
/// value that traps when called, mirroring an uninitialised C function
/// pointer, without compromising memory safety.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// The unit (void) type with a single value.
    Unit,
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Immutable UTF-8 string.
    Str,
    /// Growable homogeneous array.
    Array(Box<Ty>),
    /// Nominal record type, referenced by name (possibly versioned, e.g.
    /// `"cache_entry@1"`). Nullable.
    Named(String),
    /// First-class function pointer.
    Fn(Box<FnSig>),
}

impl Ty {
    /// Convenience constructor for an array type.
    pub fn array(elem: Ty) -> Ty {
        Ty::Array(Box::new(elem))
    }

    /// Convenience constructor for a named record type.
    pub fn named(name: impl Into<String>) -> Ty {
        Ty::Named(name.into())
    }

    /// Convenience constructor for a function-pointer type.
    pub fn func(params: Vec<Ty>, ret: Ty) -> Ty {
        Ty::Fn(Box::new(FnSig { params, ret }))
    }

    /// Whether values of this type may be `null`.
    pub fn is_nullable(&self) -> bool {
        matches!(self, Ty::Named(_))
    }

    /// Collects every named record type mentioned anywhere inside this type
    /// (including inside array element types and function signatures).
    pub fn collect_named(&self, out: &mut Vec<String>) {
        match self {
            Ty::Named(n) => out.push(n.clone()),
            Ty::Array(e) => e.collect_named(out),
            Ty::Fn(sig) => {
                for p in &sig.params {
                    p.collect_named(out);
                }
                sig.ret.collect_named(out);
            }
            _ => {}
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Unit => write!(f, "unit"),
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
            Ty::Str => write!(f, "string"),
            Ty::Array(e) => write!(f, "[{e}]"),
            Ty::Named(n) => write!(f, "{n}"),
            Ty::Fn(sig) => write!(f, "fn{sig}"),
        }
    }
}

/// A function signature: parameter types and a return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FnSig {
    /// Parameter types, in order.
    pub params: Vec<Ty>,
    /// Return type (`Ty::Unit` for procedures).
    pub ret: Ty,
}

impl FnSig {
    /// Creates a new signature.
    pub fn new(params: Vec<Ty>, ret: Ty) -> FnSig {
        FnSig { params, ret }
    }
}

impl fmt::Display for FnSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "): {}", self.ret)
    }
}

/// A single field of a record type definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name (unique within the record).
    pub name: String,
    /// Field type.
    pub ty: Ty,
}

impl Field {
    /// Creates a new field.
    pub fn new(name: impl Into<String>, ty: Ty) -> Field {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// A named record type definition.
///
/// Definitions are nominal; the dynamic linker registers each distinct
/// definition once and tags runtime records with the registration identity,
/// which is how two *versions* of the "same" source-level type coexist after
/// a dynamic update.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeDef {
    /// Fully qualified (possibly versioned) type name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl TypeDef {
    /// Creates a new record type definition.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> TypeDef {
        TypeDef {
            name: name.into(),
            fields,
        }
    }

    /// Index of the field called `name`, if present.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Whether `self` and `other` have structurally identical field lists
    /// (names and types, in order), ignoring the type name itself.
    ///
    /// Used by the dynamic linker to bind a patch's *alias* for an old type
    /// version (e.g. `cache_entry_v1`) to the existing registration.
    pub fn same_structure(&self, other: &TypeDef) -> bool {
        self.fields == other.fields
    }
}

impl fmt::Display for TypeDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "struct {} {{ ", self.name)?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fld.name, fld.ty)?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Ty::Int.to_string(), "int");
        assert_eq!(Ty::array(Ty::Str).to_string(), "[string]");
        assert_eq!(Ty::named("point").to_string(), "point");
        assert_eq!(
            Ty::func(vec![Ty::Int, Ty::Bool], Ty::Str).to_string(),
            "fn(int, bool): string"
        );
        assert_eq!(Ty::func(vec![], Ty::Unit).to_string(), "fn(): unit");
    }

    #[test]
    fn nullability() {
        assert!(Ty::named("t").is_nullable());
        assert!(!Ty::Int.is_nullable());
        assert!(!Ty::array(Ty::named("t")).is_nullable());
    }

    #[test]
    fn collect_named_walks_nested_types() {
        let ty = Ty::func(
            vec![Ty::array(Ty::named("a")), Ty::named("b")],
            Ty::array(Ty::array(Ty::named("c"))),
        );
        let mut out = Vec::new();
        ty.collect_named(&mut out);
        assert_eq!(out, vec!["a", "b", "c"]);
    }

    #[test]
    fn typedef_field_lookup_and_structure() {
        let a = TypeDef::new(
            "point",
            vec![Field::new("x", Ty::Int), Field::new("y", Ty::Int)],
        );
        let b = TypeDef::new(
            "point@1",
            vec![Field::new("x", Ty::Int), Field::new("y", Ty::Int)],
        );
        let c = TypeDef::new("point", vec![Field::new("x", Ty::Int)]);
        assert_eq!(a.field_index("y"), Some(1));
        assert_eq!(a.field_index("z"), None);
        assert!(a.same_structure(&b));
        assert!(!a.same_structure(&c));
    }
}
