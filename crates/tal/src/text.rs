//! Textual object-code format: assembler and disassembler.
//!
//! Modules (and therefore dynamic patches) can be written to a stable,
//! human-auditable text form and read back — the analogue of the paper's
//! on-disk verifiable object files. [`emit`] and [`parse`] round-trip
//! exactly: `parse(emit(m)) == m`.
//!
//! ```text
//! module flashed v3
//! type cache_entry { path: string, body: string }
//! typeref cache_entry
//! str "GET "
//! sym fn handle (string) -> string
//! sym host fs_read (string) -> string
//! sym global served_total : int
//! global served_total : int {
//!     push.int 0
//!     ret
//! }
//! fun handle (string) -> string locals [string, int] {
//!     local.get 0
//!     ...
//! }
//! ```

use std::error::Error;
use std::fmt;

use crate::instr::{Instr, StrId, SymId, TypeRefId};
use crate::module::{Function, GlobalDef, Module, Symbol, SymbolKind};
use crate::types::{Field, FnSig, Ty, TypeDef};

/// A failure while parsing textual object code.
#[derive(Debug, Clone, PartialEq)]
pub struct TextError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tal text error at line {}: {}", self.line, self.message)
    }
}

impl Error for TextError {}

// ================================ emit ================================

/// Renders a module to its textual object-code form.
pub fn emit(m: &Module) -> String {
    let mut out = String::new();
    out.push_str(&format!("module {} {}\n", m.name, m.version));
    for t in &m.types {
        let fields: Vec<String> = t
            .fields
            .iter()
            .map(|f| format!("{}: {}", f.name, f.ty))
            .collect();
        out.push_str(&format!("type {} {{ {} }}\n", t.name, fields.join(", ")));
    }
    for r in &m.type_refs {
        out.push_str(&format!("typeref {r}\n"));
    }
    for s in &m.strings {
        out.push_str(&format!("str {s:?}\n"));
    }
    for s in &m.symbols {
        match &s.kind {
            SymbolKind::Fn(sig) => {
                out.push_str(&format!("sym fn {} {}\n", s.name, sig_text(sig)));
            }
            SymbolKind::Host(sig) => {
                out.push_str(&format!("sym host {} {}\n", s.name, sig_text(sig)));
            }
            SymbolKind::Global(ty) => {
                out.push_str(&format!("sym global {} : {ty}\n", s.name));
            }
        }
    }
    for g in &m.globals {
        out.push_str(&format!("global {} : {} {{\n", g.name, g.ty));
        for i in &g.init {
            out.push_str(&format!("    {i}\n"));
        }
        out.push_str("}\n");
    }
    for f in &m.functions {
        let locals: Vec<String> = f.locals.iter().map(ToString::to_string).collect();
        out.push_str(&format!(
            "fun {} {} locals [{}] {{\n",
            f.name,
            sig_text(&f.sig),
            locals.join(", ")
        ));
        for i in &f.code {
            out.push_str(&format!("    {i}\n"));
        }
        out.push_str("}\n");
    }
    out
}

fn sig_text(sig: &FnSig) -> String {
    let params: Vec<String> = sig.params.iter().map(ToString::to_string).collect();
    format!("({}) -> {}", params.join(", "), sig.ret)
}

// ================================ parse ================================

/// Parses textual object code back into a [`Module`].
///
/// # Errors
///
/// Returns a [`TextError`] locating the first malformed line.
pub fn parse(text: &str) -> Result<Module, TextError> {
    let mut p = Parser {
        lines: text.lines().enumerate().collect(),
        at: 0,
        module: Module::default(),
    };
    p.run()?;
    Ok(p.module)
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    at: usize,
    module: Module,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> TextError {
        let line = self
            .lines
            .get(self.at.min(self.lines.len().saturating_sub(1)));
        TextError {
            line: line.map_or(0, |(n, _)| n + 1),
            message: msg.into(),
        }
    }

    fn next_line(&mut self) -> Option<&'a str> {
        while self.at < self.lines.len() {
            let (_, raw) = self.lines[self.at];
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with(';') {
                self.at += 1;
                continue;
            }
            return Some(trimmed);
        }
        None
    }

    fn run(&mut self) -> Result<(), TextError> {
        // Header.
        let Some(header) = self.next_line() else {
            return Err(self.err("empty input"));
        };
        let mut parts = header.split_whitespace();
        if parts.next() != Some("module") {
            return Err(self.err("expected `module <name> <version>`"));
        }
        self.module.name = parts
            .next()
            .ok_or_else(|| self.err("missing module name"))?
            .into();
        self.module.version = parts.next().unwrap_or("v0").into();
        self.at += 1;

        while let Some(line) = self.next_line() {
            let keyword = line.split_whitespace().next().unwrap_or_default();
            match keyword {
                "type" => self.parse_type(line)?,
                "typeref" => {
                    let name = line["typeref".len()..].trim();
                    if name.is_empty() {
                        return Err(self.err("typeref needs a name"));
                    }
                    self.module.type_refs.push(name.to_string());
                    self.at += 1;
                }
                "str" => {
                    let lit = line["str".len()..].trim();
                    let s = parse_string_literal(lit).map_err(|m| self.err(m))?;
                    self.module.strings.push(s);
                    self.at += 1;
                }
                "sym" => self.parse_symbol(line)?,
                "global" => self.parse_global(line)?,
                "fun" => self.parse_function(line)?,
                other => return Err(self.err(format!("unexpected `{other}`"))),
            }
        }
        Ok(())
    }

    fn parse_type(&mut self, line: &str) -> Result<(), TextError> {
        // type NAME { f: ty, ... }
        let rest = line["type".len()..].trim();
        let (name, body) = rest
            .split_once('{')
            .ok_or_else(|| self.err("type needs `{ ... }`"))?;
        let body = body.trim_end_matches('}').trim();
        let mut fields = Vec::new();
        if !body.is_empty() {
            for part in split_top_level(body) {
                let (fname, fty) = part
                    .split_once(':')
                    .ok_or_else(|| self.err(format!("bad field `{part}`")))?;
                fields.push(Field::new(
                    fname.trim().to_string(),
                    parse_ty(fty.trim()).map_err(|m| self.err(m))?,
                ));
            }
        }
        self.module
            .types
            .push(TypeDef::new(name.trim().to_string(), fields));
        self.at += 1;
        Ok(())
    }

    fn parse_symbol(&mut self, line: &str) -> Result<(), TextError> {
        let rest = line["sym".len()..].trim();
        let (kind, rest) = rest
            .split_once(' ')
            .ok_or_else(|| self.err("sym needs a kind"))?;
        let sym = match kind {
            "fn" | "host" => {
                let (name, sig) = rest
                    .split_once(' ')
                    .ok_or_else(|| self.err("sym fn needs a signature"))?;
                let sig = parse_sig(sig.trim()).map_err(|m| self.err(m))?;
                if kind == "fn" {
                    Symbol::func(name.trim(), sig)
                } else {
                    Symbol::host(name.trim(), sig)
                }
            }
            "global" => {
                let (name, ty) = rest
                    .split_once(':')
                    .ok_or_else(|| self.err("sym global needs `: ty`"))?;
                Symbol::global(name.trim(), parse_ty(ty.trim()).map_err(|m| self.err(m))?)
            }
            other => return Err(self.err(format!("unknown symbol kind `{other}`"))),
        };
        self.module.symbols.push(sym);
        self.at += 1;
        Ok(())
    }

    fn parse_code_block(&mut self) -> Result<Vec<Instr>, TextError> {
        self.at += 1; // past the `{` line
        let mut code = Vec::new();
        loop {
            let Some(line) = self.next_line() else {
                return Err(self.err("unterminated code block"));
            };
            if line == "}" {
                self.at += 1;
                return Ok(code);
            }
            code.push(parse_instr(line).map_err(|m| self.err(m))?);
            self.at += 1;
        }
    }

    fn parse_global(&mut self, line: &str) -> Result<(), TextError> {
        // global NAME : ty {
        let rest = line["global".len()..].trim().trim_end_matches('{').trim();
        let (name, ty) = rest
            .split_once(':')
            .ok_or_else(|| self.err("global needs `: ty`"))?;
        let name = name.trim().to_string();
        let ty = parse_ty(ty.trim()).map_err(|m| self.err(m))?;
        let init = self.parse_code_block()?;
        self.module.globals.push(GlobalDef { name, ty, init });
        Ok(())
    }

    fn parse_function(&mut self, line: &str) -> Result<(), TextError> {
        // fun NAME (tys) -> ty locals [tys] {
        let rest = line["fun".len()..].trim().trim_end_matches('{').trim();
        let (name, rest) = rest
            .split_once(' ')
            .ok_or_else(|| self.err("fun needs a signature"))?;
        let (sig_part, locals_part) = rest
            .split_once("locals")
            .ok_or_else(|| self.err("fun needs `locals [..]`"))?;
        let sig = parse_sig(sig_part.trim()).map_err(|m| self.err(m))?;
        let locals_part = locals_part.trim();
        if !(locals_part.starts_with('[') && locals_part.ends_with(']')) {
            return Err(self.err("locals must be `[ty, ...]`"));
        }
        let inner = &locals_part[1..locals_part.len() - 1];
        let mut locals = Vec::new();
        if !inner.trim().is_empty() {
            for part in split_top_level(inner) {
                locals.push(parse_ty(part.trim()).map_err(|m| self.err(m))?);
            }
        }
        let code = self.parse_code_block()?;
        self.module.functions.push(Function {
            name: name.trim().to_string(),
            sig,
            locals,
            code,
        });
        Ok(())
    }
}

/// Splits `s` on top-level commas (ignoring commas inside `()`, `[]`,
/// `{}`).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = s[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// Parses a type: `int | bool | string | unit | [T] | fn(T,..): R | name`.
pub fn parse_ty(s: &str) -> Result<Ty, String> {
    let s = s.trim();
    match s {
        "int" => return Ok(Ty::Int),
        "bool" => return Ok(Ty::Bool),
        "string" => return Ok(Ty::Str),
        "unit" => return Ok(Ty::Unit),
        _ => {}
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unclosed `[` in `{s}`"))?;
        return Ok(Ty::array(parse_ty(inner)?));
    }
    if let Some(rest) = s.strip_prefix("fn(") {
        // fn(T, U): R — find the matching close paren.
        let close = matching_paren(rest).ok_or_else(|| format!("unclosed `(` in `{s}`"))?;
        let params_text = &rest[..close];
        let after = rest[close + 1..].trim();
        let ret_text = after
            .strip_prefix(':')
            .ok_or_else(|| format!("missing `:` in `{s}`"))?
            .trim();
        let mut params = Vec::new();
        if !params_text.trim().is_empty() {
            for p in split_top_level(params_text) {
                params.push(parse_ty(p)?);
            }
        }
        return Ok(Ty::func(params, parse_ty(ret_text)?));
    }
    if s.chars()
        .all(|c| c.is_alphanumeric() || c == '_' || c == '@' || c == '.')
        && !s.is_empty()
    {
        return Ok(Ty::Named(s.to_string()));
    }
    Err(format!("unparseable type `{s}`"))
}

/// Index (within `s`) of the `)` matching an already-consumed `(`.
fn matching_paren(s: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                if depth == 0 {
                    return Some(i);
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    None
}

/// Parses `(T, U) -> R`.
pub fn parse_sig(s: &str) -> Result<FnSig, String> {
    let s = s.trim();
    let rest = s
        .strip_prefix('(')
        .ok_or_else(|| format!("signature must start with `(`: `{s}`"))?;
    let close = matching_paren(rest).ok_or_else(|| format!("unclosed `(` in `{s}`"))?;
    let params_text = &rest[..close];
    let after = rest[close + 1..].trim();
    let ret_text = after
        .strip_prefix("->")
        .ok_or_else(|| format!("missing `->` in `{s}`"))?
        .trim();
    let mut params = Vec::new();
    if !params_text.trim().is_empty() {
        for p in split_top_level(params_text) {
            params.push(parse_ty(p)?);
        }
    }
    Ok(FnSig::new(params, parse_ty(ret_text)?))
}

/// Unescapes a Rust-`{:?}`-style string literal.
fn parse_string_literal(s: &str) -> Result<String, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("string literal must be quoted: {s}"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('\'') => out.push('\''),
            Some('u') => {
                // \u{XXXX}
                if chars.next() != Some('{') {
                    return Err("bad unicode escape".into());
                }
                let mut hex = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    hex.push(c);
                }
                let cp = u32::from_str_radix(&hex, 16).map_err(|_| "bad unicode escape")?;
                out.push(char::from_u32(cp).ok_or("bad unicode scalar")?);
            }
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or('?'))),
        }
    }
    Ok(out)
}

/// Parses one instruction line (the exact `Display` form of [`Instr`]).
#[allow(clippy::too_many_lines)]
pub fn parse_instr(line: &str) -> Result<Instr, String> {
    let line = line.trim();
    let (mnemonic, rest) = match line.split_once(' ') {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let int = |s: &str| s.parse::<i64>().map_err(|_| format!("bad integer `{s}`"));
    let idx = |s: &str| s.parse::<u32>().map_err(|_| format!("bad index `{s}`"));
    let pool = |s: &str, prefix: &str| -> Result<u32, String> {
        s.strip_prefix(prefix)
            .ok_or_else(|| format!("expected `{prefix}N`, got `{s}`"))
            .and_then(|t| t.parse::<u32>().map_err(|_| format!("bad index `{s}`")))
    };
    Ok(match mnemonic {
        "push.unit" => Instr::PushUnit,
        "push.int" => Instr::PushInt(int(rest)?),
        "push.bool" => Instr::PushBool(rest == "true"),
        "push.str" => Instr::PushStr(StrId(pool(rest, "#")?)),
        "push.null" => Instr::PushNull(TypeRefId(pool(rest, "ty#")?)),
        "push.fn" => Instr::PushFn(SymId(pool(rest, "sym#")?)),
        "local.get" => Instr::LoadLocal(idx(rest)? as u16),
        "local.set" => Instr::StoreLocal(idx(rest)? as u16),
        "global.get" => Instr::LoadGlobal(SymId(pool(rest, "sym#")?)),
        "global.set" => Instr::StoreGlobal(SymId(pool(rest, "sym#")?)),
        "dup" => Instr::Dup,
        "pop" => Instr::Pop,
        "swap" => Instr::Swap,
        "add" => Instr::Add,
        "sub" => Instr::Sub,
        "mul" => Instr::Mul,
        "div" => Instr::Div,
        "rem" => Instr::Rem,
        "neg" => Instr::Neg,
        "eq" => Instr::Eq,
        "ne" => Instr::Ne,
        "lt" => Instr::Lt,
        "le" => Instr::Le,
        "gt" => Instr::Gt,
        "ge" => Instr::Ge,
        "and" => Instr::And,
        "or" => Instr::Or,
        "not" => Instr::Not,
        "str.concat" => Instr::Concat,
        "str.len" => Instr::StrLen,
        "str.sub" => Instr::Substr,
        "str.at" => Instr::CharAt,
        "str.eq" => Instr::StrEq,
        "str.find" => Instr::StrFind,
        "int.to_str" => Instr::IntToStr,
        "str.to_int" => Instr::StrToInt,
        "jump" => Instr::Jump(idx(rest)?),
        "jump.ifz" => Instr::JumpIfFalse(idx(rest)?),
        "call" => Instr::Call(SymId(pool(rest, "sym#")?)),
        "call.indirect" => Instr::CallIndirect,
        "call.host" => Instr::CallHost(SymId(pool(rest, "sym#")?)),
        "ret" => Instr::Ret,
        "record.new" => Instr::NewRecord(TypeRefId(pool(rest, "ty#")?)),
        "record.get" => {
            let (t, f) = rest.split_once('.').ok_or("record.get needs ty#N.F")?;
            Instr::GetField(TypeRefId(pool(t, "ty#")?), idx(f)? as u16)
        }
        "record.set" => {
            let (t, f) = rest.split_once('.').ok_or("record.set needs ty#N.F")?;
            Instr::SetField(TypeRefId(pool(t, "ty#")?), idx(f)? as u16)
        }
        "is_null" => Instr::IsNull(TypeRefId(pool(rest, "ty#")?)),
        "array.new" => Instr::NewArray(parse_ty(rest)?),
        "array.get" => Instr::ArrayGet,
        "array.set" => Instr::ArraySet,
        "array.len" => Instr::ArrayLen,
        "array.push" => Instr::ArrayPush,
        "update.point" => Instr::UpdatePoint,
        "nop" => Instr::Nop,
        other => return Err(format!("unknown mnemonic `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    fn sample_module() -> Module {
        let mut b = ModuleBuilder::new("sample", "v7");
        b.def_type(TypeDef::new(
            "pair",
            vec![
                Field::new("a", Ty::Int),
                Field::new("b", Ty::array(Ty::Str)),
            ],
        ));
        let tr = b.type_ref("pair");
        let hello = b.string("he\"llo\n\t\\");
        let host = b.declare_host("log", FnSig::new(vec![Ty::Str], Ty::Unit));
        let gsym = b.declare_global("g", Ty::named("pair"));
        b.global(
            "g",
            Ty::named("pair"),
            vec![Instr::PushNull(tr), Instr::Ret],
        );
        b.function(
            "f",
            FnSig::new(vec![Ty::Int, Ty::func(vec![Ty::Int], Ty::Bool)], Ty::Str),
            move |f| {
                f.local(Ty::array(Ty::Int));
                f.emit(Instr::PushStr(hello));
                f.emit(Instr::CallHost(host));
                f.emit(Instr::Pop);
                f.emit(Instr::LoadGlobal(gsym));
                f.emit(Instr::IsNull(tr));
                f.emit(Instr::JumpIfFalse(8));
                f.emit(Instr::PushStr(hello));
                f.emit(Instr::Ret);
                f.emit(Instr::PushStr(hello));
                f.emit(Instr::Ret);
            },
        );
        b.finish()
    }

    #[test]
    fn emit_parse_round_trip_sample() {
        let m = sample_module();
        let text = emit(&m);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(m, back);
    }

    #[test]
    fn round_trip_is_stable_text() {
        let m = sample_module();
        let t1 = emit(&m);
        let t2 = emit(&parse(&t1).unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn type_parser_handles_nesting() {
        assert_eq!(parse_ty("int").unwrap(), Ty::Int);
        assert_eq!(
            parse_ty("[[string]]").unwrap(),
            Ty::array(Ty::array(Ty::Str))
        );
        assert_eq!(
            parse_ty("fn(int, [bool]): fn(): unit").unwrap(),
            Ty::func(
                vec![Ty::Int, Ty::array(Ty::Bool)],
                Ty::func(vec![], Ty::Unit)
            )
        );
        assert_eq!(
            parse_ty("cache_entry@1").unwrap(),
            Ty::named("cache_entry@1")
        );
        assert!(parse_ty("fn(int: int").is_err());
        assert!(parse_ty("[int").is_err());
    }

    #[test]
    fn instruction_parser_rejects_garbage() {
        assert!(parse_instr("frobnicate 3").is_err());
        assert!(parse_instr("push.int abc").is_err());
        assert!(parse_instr("call #3").is_err());
        assert!(parse_instr("record.get ty#0").is_err());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "module m v1\nbogusline here\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "",
            "plain",
            "a\nb",
            "q\"q",
            "tab\t",
            "nul\0",
            "back\\slash",
            "é↑",
        ] {
            let lit = format!("{s:?}");
            assert_eq!(parse_string_literal(&lit).unwrap(), s, "{lit}");
        }
    }
}
