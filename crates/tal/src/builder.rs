//! Ergonomic construction of modules, with label-based control flow.
//!
//! [`ModuleBuilder`] interns strings, type references and symbols;
//! [`FunctionBuilder`] provides forward labels that are patched to concrete
//! instruction indices when the function is finished. Both the Popcorn
//! compiler back end and hand-written tests build modules through this API.

use crate::instr::{Instr, StrId, SymId, TypeRefId};
use crate::module::{Function, GlobalDef, Module, Symbol, SymbolKind};
use crate::types::{FnSig, Ty, TypeDef};
use std::collections::HashMap;

/// Builds a [`Module`] incrementally.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
    string_ids: HashMap<String, StrId>,
    type_ref_ids: HashMap<String, TypeRefId>,
    symbol_ids: HashMap<String, SymId>,
}

impl ModuleBuilder {
    /// Starts a new module with the given name and version tag.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(name, version),
            string_ids: HashMap::new(),
            type_ref_ids: HashMap::new(),
            symbol_ids: HashMap::new(),
        }
    }

    /// Interns a string constant, returning its pool id.
    pub fn string(&mut self, s: impl Into<String>) -> StrId {
        let s = s.into();
        if let Some(id) = self.string_ids.get(&s) {
            return *id;
        }
        let id = StrId(self.module.strings.len() as u32);
        self.module.strings.push(s.clone());
        self.string_ids.insert(s, id);
        id
    }

    /// Interns a named-type reference, returning its pool id.
    pub fn type_ref(&mut self, name: impl Into<String>) -> TypeRefId {
        let name = name.into();
        if let Some(id) = self.type_ref_ids.get(&name) {
            return *id;
        }
        let id = TypeRefId(self.module.type_refs.len() as u32);
        self.module.type_refs.push(name.clone());
        self.type_ref_ids.insert(name, id);
        id
    }

    /// Adds a record type definition to the module.
    pub fn def_type(&mut self, def: TypeDef) {
        self.module.types.push(def);
    }

    fn declare(&mut self, name: String, kind: SymbolKind) -> SymId {
        if let Some(id) = self.symbol_ids.get(&name) {
            return *id;
        }
        let id = SymId(self.module.symbols.len() as u32);
        self.module.symbols.push(Symbol {
            name: name.clone(),
            kind,
        });
        self.symbol_ids.insert(name, id);
        id
    }

    /// Declares (or re-uses) a function symbol.
    pub fn declare_fn(&mut self, name: impl Into<String>, sig: FnSig) -> SymId {
        self.declare(name.into(), SymbolKind::Fn(sig))
    }

    /// Declares (or re-uses) a global-variable symbol.
    pub fn declare_global(&mut self, name: impl Into<String>, ty: Ty) -> SymId {
        self.declare(name.into(), SymbolKind::Global(ty))
    }

    /// Declares (or re-uses) a host-function symbol.
    pub fn declare_host(&mut self, name: impl Into<String>, sig: FnSig) -> SymId {
        self.declare(name.into(), SymbolKind::Host(sig))
    }

    /// Defines a function. The closure receives a [`FunctionBuilder`] whose
    /// locals are pre-populated with the parameters.
    pub fn function<F>(&mut self, name: impl Into<String>, sig: FnSig, body: F)
    where
        F: FnOnce(&mut FunctionBuilder<'_>),
    {
        let name = name.into();
        let locals = sig.params.clone();
        let mut fb = FunctionBuilder {
            builder: self,
            locals,
            code: Vec::new(),
            labels: Vec::new(),
        };
        body(&mut fb);
        let (locals, code, labels) = (fb.locals, fb.code, fb.labels);
        let code = patch_labels(code, &labels);
        self.module.functions.push(Function {
            name,
            sig,
            locals,
            code,
        });
    }

    /// Defines a global with explicit initialiser code.
    pub fn global(&mut self, name: impl Into<String>, ty: Ty, init: Vec<Instr>) {
        self.module.globals.push(GlobalDef {
            name: name.into(),
            ty,
            init,
        });
    }

    /// Builds a standalone code body (label support included) without
    /// registering a function — used for global initialisers.
    pub fn body<F>(&mut self, build: F) -> Vec<Instr>
    where
        F: FnOnce(&mut FunctionBuilder<'_>),
    {
        let mut fb = FunctionBuilder {
            builder: self,
            locals: Vec::new(),
            code: Vec::new(),
            labels: Vec::new(),
        };
        build(&mut fb);
        let (code, labels) = (fb.code, fb.labels);
        patch_labels(code, &labels)
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// A forward-patchable jump target inside a function under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Sentinel offset distinguishing unpatched label operands from real pcs.
const LABEL_BASE: u32 = u32::MAX / 2;

fn patch_labels(code: Vec<Instr>, labels: &[Option<u32>]) -> Vec<Instr> {
    let resolve = |t: u32| -> u32 {
        if t >= LABEL_BASE {
            let idx = (t - LABEL_BASE) as usize;
            labels[idx].expect("label bound before finish")
        } else {
            t
        }
    };
    code.into_iter()
        .map(|i| match i {
            Instr::Jump(t) => Instr::Jump(resolve(t)),
            Instr::JumpIfFalse(t) => Instr::JumpIfFalse(resolve(t)),
            other => other,
        })
        .collect()
}

/// Builds one function body; obtained through [`ModuleBuilder::function`].
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    builder: &'a mut ModuleBuilder,
    locals: Vec<Ty>,
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
}

impl FunctionBuilder<'_> {
    /// Appends an instruction, returning its index.
    pub fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    /// Declares an additional local slot of the given type.
    pub fn local(&mut self, ty: Ty) -> u16 {
        self.locals.push(ty);
        (self.locals.len() - 1) as u16
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the *next* instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len() as u32);
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) {
        self.code.push(Instr::Jump(LABEL_BASE + label.0 as u32));
    }

    /// Emits a pop-and-branch-if-false to `label`.
    pub fn jump_if_false(&mut self, label: Label) {
        self.code
            .push(Instr::JumpIfFalse(LABEL_BASE + label.0 as u32));
    }

    /// Current instruction count (the index the next emit will get).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Interns a string in the containing module.
    pub fn string(&mut self, s: impl Into<String>) -> StrId {
        self.builder.string(s)
    }

    /// Interns a type reference in the containing module.
    pub fn type_ref(&mut self, name: impl Into<String>) -> TypeRefId {
        self.builder.type_ref(name)
    }

    /// Declares a function symbol in the containing module.
    pub fn declare_fn(&mut self, name: impl Into<String>, sig: FnSig) -> SymId {
        self.builder.declare_fn(name, sig)
    }

    /// Declares a global symbol in the containing module.
    pub fn declare_global(&mut self, name: impl Into<String>, ty: Ty) -> SymId {
        self.builder.declare_global(name, ty)
    }

    /// Declares a host-function symbol in the containing module.
    pub fn declare_host(&mut self, name: impl Into<String>, sig: FnSig) -> SymId {
        self.builder.declare_host(name, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_module, NoAmbientTypes};

    #[test]
    fn interning_deduplicates() {
        let mut b = ModuleBuilder::new("t", "v");
        let a = b.string("x");
        let c = b.string("x");
        assert_eq!(a, c);
        let t1 = b.type_ref("p");
        let t2 = b.type_ref("p");
        assert_eq!(t1, t2);
        let s1 = b.declare_fn("f", FnSig::new(vec![], Ty::Unit));
        let s2 = b.declare_fn("f", FnSig::new(vec![], Ty::Unit));
        assert_eq!(s1, s2);
    }

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("count", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
            let top = f.new_label();
            let done = f.new_label();
            f.bind(top);
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushInt(0));
            f.emit(Instr::Gt);
            f.jump_if_false(done);
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushInt(1));
            f.emit(Instr::Sub);
            f.emit(Instr::StoreLocal(0));
            f.jump(top);
            f.bind(done);
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::Ret);
        });
        let m = b.finish();
        verify_module(&m, &NoAmbientTypes).unwrap();
        let f = m.function("count").unwrap();
        assert_eq!(f.code[3], Instr::JumpIfFalse(9));
        assert_eq!(f.code[8], Instr::Jump(0));
    }

    #[test]
    fn extra_locals_follow_parameters() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("f", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
            let tmp = f.local(Ty::Int);
            assert_eq!(tmp, 1);
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::StoreLocal(tmp));
            f.emit(Instr::LoadLocal(tmp));
            f.emit(Instr::Ret);
        });
        verify_module(&b.finish(), &NoAmbientTypes).unwrap();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn binding_a_label_twice_panics() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("f", FnSig::new(vec![], Ty::Unit), |f| {
            let l = f.new_label();
            f.bind(l);
            f.bind(l);
        });
    }
}
