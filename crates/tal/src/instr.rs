//! The instruction set of the typed stack machine.
//!
//! Instructions reference out-of-line pools on their containing
//! [`Module`](crate::Module): string constants ([`StrId`]), named-record type
//! references ([`TypeRefId`]) and symbolic references ([`SymId`]). Symbolic
//! references are what make code *relinkable*: a `Call` names a symbol, and
//! whether that resolves to a fixed function or to a mutable
//! indirection-table slot is decided at link time — the heart of the paper's
//! updateable compilation.

use crate::types::Ty;
use std::fmt;

/// Index into a module's string pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// Index into a module's named-type reference pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeRefId(pub u32);

/// Index into a module's symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

/// A bytecode instruction.
///
/// Stack-effect conventions (top of stack on the right):
///
/// * binary operators: `[.., a, b] -> [.., a OP b]`
/// * `ArrayGet`: `[.., arr, idx] -> [.., elem]`
/// * `ArraySet`: `[.., arr, idx, v] -> [..]`
/// * `GetField`: `[.., rec] -> [.., field]`
/// * `SetField`: `[.., rec, v] -> [..]`
/// * `Substr`: `[.., s, start, len] -> [.., sub]`
/// * calls pop arguments left-to-right-pushed (last argument on top) and
///   push the (possibly unit) result.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // -- constants ---------------------------------------------------------
    /// Push the unit value.
    PushUnit,
    /// Push an integer constant.
    PushInt(i64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push a string constant from the module string pool.
    PushStr(StrId),
    /// Push `null` at the given named record type.
    PushNull(TypeRefId),
    /// Push a first-class function value for the named function symbol.
    PushFn(SymId),

    // -- locals ------------------------------------------------------------
    /// Push the value of local slot `n`.
    LoadLocal(u16),
    /// Pop into local slot `n` (must match the declared local type).
    StoreLocal(u16),

    // -- globals (symbolic; bound by the linker) ----------------------------
    /// Push the value of a global variable.
    LoadGlobal(SymId),
    /// Pop into a global variable.
    StoreGlobal(SymId),

    // -- stack manipulation --------------------------------------------------
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,

    // -- integer arithmetic (wrapping; Div/Rem trap on zero) -----------------
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division. Traps on a zero divisor.
    Div,
    /// Integer remainder. Traps on a zero divisor.
    Rem,
    /// Integer negation.
    Neg,

    // -- integer comparison ---------------------------------------------------
    /// `a == b` on integers.
    Eq,
    /// `a != b` on integers.
    Ne,
    /// `a < b`.
    Lt,
    /// `a <= b`.
    Le,
    /// `a > b`.
    Gt,
    /// `a >= b`.
    Ge,

    // -- booleans -------------------------------------------------------------
    /// Logical and (both operands already evaluated).
    And,
    /// Logical or.
    Or,
    /// Logical negation.
    Not,

    // -- strings ----------------------------------------------------------------
    /// String concatenation.
    Concat,
    /// String length in bytes.
    StrLen,
    /// `[s, start, len] -> [sub]`, indices clamped to the string bounds.
    Substr,
    /// `[s, i] -> [int]`: byte at index `i` (traps when out of bounds).
    CharAt,
    /// String equality.
    StrEq,
    /// `[s, needle] -> [int]`: first byte offset of `needle` or `-1`.
    StrFind,
    /// Integer to decimal string.
    IntToStr,
    /// Decimal string to integer; evaluates to `0` on malformed input
    /// (C `atoi` behaviour — no trap).
    StrToInt,

    // -- control flow ---------------------------------------------------------
    /// Unconditional jump to an instruction index in the same function.
    Jump(u32),
    /// Pop a bool; jump when it is `false`.
    JumpIfFalse(u32),
    /// Call the function bound to a symbol.
    Call(SymId),
    /// Pop a function value (after the arguments) and call it.
    CallIndirect,
    /// Call a host (extern) function through a symbol.
    CallHost(SymId),
    /// Return from the current function; the operand stack must hold exactly
    /// the return value.
    Ret,

    // -- records -----------------------------------------------------------------
    /// Pop one value per field (pushed in declaration order) and allocate a
    /// record of the referenced type.
    NewRecord(TypeRefId),
    /// Read field `i` of a record of the referenced type. Traps on `null`.
    GetField(TypeRefId, u16),
    /// Write field `i` of a record of the referenced type. Traps on `null`.
    SetField(TypeRefId, u16),
    /// Pop a nullable record, push whether it is `null`.
    IsNull(TypeRefId),

    // -- arrays ---------------------------------------------------------------------
    /// Push a new empty array with the given element type.
    NewArray(Ty),
    /// Indexed read. Traps when the index is out of bounds.
    ArrayGet,
    /// Indexed write. Traps when the index is out of bounds.
    ArraySet,
    /// Array length.
    ArrayLen,
    /// Append an element.
    ArrayPush,

    // -- dynamic software updating ----------------------------------------------
    /// A programmer-inserted *update point*: the only places at which a
    /// pending dynamic patch may be applied (paper §"update points").
    UpdatePoint,

    /// No operation (placeholder produced by the patch tooling).
    Nop,
}

impl Instr {
    /// Whether this instruction unconditionally transfers control (so that
    /// straight-line fallthrough past it is impossible).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jump(_) | Instr::Ret)
    }

    /// The symbol referenced by this instruction, if any.
    pub fn sym_ref(&self) -> Option<SymId> {
        match self {
            Instr::PushFn(s)
            | Instr::LoadGlobal(s)
            | Instr::StoreGlobal(s)
            | Instr::Call(s)
            | Instr::CallHost(s) => Some(*s),
            _ => None,
        }
    }

    /// The named-type reference used by this instruction, if any.
    pub fn type_ref(&self) -> Option<TypeRefId> {
        match self {
            Instr::PushNull(t)
            | Instr::NewRecord(t)
            | Instr::GetField(t, _)
            | Instr::SetField(t, _)
            | Instr::IsNull(t) => Some(*t),
            _ => None,
        }
    }

    /// A deterministic virtual encoding size in bytes, used for the paper's
    /// code-size accounting (Table 4). One opcode byte plus fixed-width
    /// operands.
    pub fn encoded_size(&self) -> usize {
        1 + match self {
            Instr::PushInt(_) => 8,
            Instr::PushBool(_) => 1,
            Instr::PushStr(_) | Instr::PushNull(_) | Instr::PushFn(_) => 4,
            Instr::LoadLocal(_) | Instr::StoreLocal(_) => 2,
            Instr::LoadGlobal(_) | Instr::StoreGlobal(_) => 4,
            Instr::Jump(_) | Instr::JumpIfFalse(_) => 4,
            Instr::Call(_) | Instr::CallHost(_) => 4,
            Instr::NewRecord(_) | Instr::IsNull(_) => 4,
            Instr::GetField(_, _) | Instr::SetField(_, _) => 6,
            Instr::NewArray(_) => 4,
            _ => 0,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::PushUnit => write!(f, "push.unit"),
            Instr::PushInt(n) => write!(f, "push.int {n}"),
            Instr::PushBool(b) => write!(f, "push.bool {b}"),
            Instr::PushStr(s) => write!(f, "push.str #{}", s.0),
            Instr::PushNull(t) => write!(f, "push.null ty#{}", t.0),
            Instr::PushFn(s) => write!(f, "push.fn sym#{}", s.0),
            Instr::LoadLocal(n) => write!(f, "local.get {n}"),
            Instr::StoreLocal(n) => write!(f, "local.set {n}"),
            Instr::LoadGlobal(s) => write!(f, "global.get sym#{}", s.0),
            Instr::StoreGlobal(s) => write!(f, "global.set sym#{}", s.0),
            Instr::Dup => write!(f, "dup"),
            Instr::Pop => write!(f, "pop"),
            Instr::Swap => write!(f, "swap"),
            Instr::Add => write!(f, "add"),
            Instr::Sub => write!(f, "sub"),
            Instr::Mul => write!(f, "mul"),
            Instr::Div => write!(f, "div"),
            Instr::Rem => write!(f, "rem"),
            Instr::Neg => write!(f, "neg"),
            Instr::Eq => write!(f, "eq"),
            Instr::Ne => write!(f, "ne"),
            Instr::Lt => write!(f, "lt"),
            Instr::Le => write!(f, "le"),
            Instr::Gt => write!(f, "gt"),
            Instr::Ge => write!(f, "ge"),
            Instr::And => write!(f, "and"),
            Instr::Or => write!(f, "or"),
            Instr::Not => write!(f, "not"),
            Instr::Concat => write!(f, "str.concat"),
            Instr::StrLen => write!(f, "str.len"),
            Instr::Substr => write!(f, "str.sub"),
            Instr::CharAt => write!(f, "str.at"),
            Instr::StrEq => write!(f, "str.eq"),
            Instr::StrFind => write!(f, "str.find"),
            Instr::IntToStr => write!(f, "int.to_str"),
            Instr::StrToInt => write!(f, "str.to_int"),
            Instr::Jump(t) => write!(f, "jump {t}"),
            Instr::JumpIfFalse(t) => write!(f, "jump.ifz {t}"),
            Instr::Call(s) => write!(f, "call sym#{}", s.0),
            Instr::CallIndirect => write!(f, "call.indirect"),
            Instr::CallHost(s) => write!(f, "call.host sym#{}", s.0),
            Instr::Ret => write!(f, "ret"),
            Instr::NewRecord(t) => write!(f, "record.new ty#{}", t.0),
            Instr::GetField(t, i) => write!(f, "record.get ty#{}.{i}", t.0),
            Instr::SetField(t, i) => write!(f, "record.set ty#{}.{i}", t.0),
            Instr::IsNull(t) => write!(f, "is_null ty#{}", t.0),
            Instr::NewArray(ty) => write!(f, "array.new {ty}"),
            Instr::ArrayGet => write!(f, "array.get"),
            Instr::ArraySet => write!(f, "array.set"),
            Instr::ArrayLen => write!(f, "array.len"),
            Instr::ArrayPush => write!(f, "array.push"),
            Instr::UpdatePoint => write!(f, "update.point"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Instr::Ret.is_terminator());
        assert!(Instr::Jump(0).is_terminator());
        assert!(!Instr::JumpIfFalse(0).is_terminator());
        assert!(!Instr::Call(SymId(0)).is_terminator());
    }

    #[test]
    fn sym_and_type_refs() {
        assert_eq!(Instr::Call(SymId(3)).sym_ref(), Some(SymId(3)));
        assert_eq!(Instr::Add.sym_ref(), None);
        assert_eq!(
            Instr::GetField(TypeRefId(1), 0).type_ref(),
            Some(TypeRefId(1))
        );
        assert_eq!(Instr::Call(SymId(0)).type_ref(), None);
    }

    #[test]
    fn encoded_sizes_are_positive_and_operand_dependent() {
        assert_eq!(Instr::Add.encoded_size(), 1);
        assert_eq!(Instr::PushInt(7).encoded_size(), 9);
        assert_eq!(Instr::GetField(TypeRefId(0), 2).encoded_size(), 7);
    }

    #[test]
    fn display_is_nonempty() {
        for i in [
            Instr::PushUnit,
            Instr::Call(SymId(1)),
            Instr::NewArray(Ty::Int),
            Instr::UpdatePoint,
        ] {
            assert!(!i.to_string().is_empty());
        }
    }
}
