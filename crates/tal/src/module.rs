//! Relinkable object-code modules.
//!
//! A [`Module`] is the unit of (dynamic) linking: it carries functions,
//! global-variable definitions, record type definitions, and a symbol table
//! of every external or internal reference its code makes. All references in
//! code are *symbolic* — the module is position-independent in the sense that
//! the linker decides, per symbol, whether to bind it directly (static mode)
//! or through a mutable indirection-table slot (updateable mode). This
//! mirrors the paper's "updateable compilation", where the same source is
//! compiled so that every inter-procedural reference goes through the
//! dynamic linker's tables.

use crate::instr::{Instr, StrId, SymId, TypeRefId};
use crate::types::{FnSig, Ty, TypeDef};
use std::collections::BTreeSet;
use std::fmt;

/// What a symbol refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum SymbolKind {
    /// A guest function with the given signature (defined in this module or
    /// imported from the running program).
    Fn(FnSig),
    /// A global variable of the given type.
    Global(Ty),
    /// A host (extern) function provided by the embedding environment.
    Host(FnSig),
}

/// An entry in a module's symbol table.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    /// Flat, program-wide symbol name (the guest namespace is flat, like C).
    pub name: String,
    /// The symbol's kind and type.
    pub kind: SymbolKind,
}

impl Symbol {
    /// Creates a function symbol.
    pub fn func(name: impl Into<String>, sig: FnSig) -> Symbol {
        Symbol {
            name: name.into(),
            kind: SymbolKind::Fn(sig),
        }
    }

    /// Creates a global-variable symbol.
    pub fn global(name: impl Into<String>, ty: Ty) -> Symbol {
        Symbol {
            name: name.into(),
            kind: SymbolKind::Global(ty),
        }
    }

    /// Creates a host-function symbol.
    pub fn host(name: impl Into<String>, sig: FnSig) -> Symbol {
        Symbol {
            name: name.into(),
            kind: SymbolKind::Host(sig),
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Program-wide unique name.
    pub name: String,
    /// Signature; `sig.params` must be a prefix of `locals`.
    pub sig: FnSig,
    /// Declared local slots. The first `sig.params.len()` slots receive the
    /// arguments; the rest start at their type's default value.
    pub locals: Vec<Ty>,
    /// Straight bytecode; jump targets are instruction indices.
    pub code: Vec<Instr>,
}

impl Function {
    /// Names of all symbols referenced by this function's code, deduplicated.
    pub fn referenced_symbols<'m>(&self, module: &'m Module) -> BTreeSet<&'m str> {
        self.code
            .iter()
            .filter_map(|i| i.sym_ref())
            .filter_map(|s| module.symbols.get(s.0 as usize))
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Names of all named record types this function touches, either through
    /// instructions or through the types of its locals/signature.
    pub fn referenced_types(&self, module: &Module) -> BTreeSet<String> {
        let mut out = Vec::new();
        for t in self.locals.iter().chain(self.sig.params.iter()) {
            t.collect_named(&mut out);
        }
        self.sig.ret.collect_named(&mut out);
        for i in &self.code {
            if let Some(tr) = i.type_ref() {
                if let Some(name) = module.type_refs.get(tr.0 as usize) {
                    out.push(name.clone());
                }
            }
            if let Instr::NewArray(ty) = i {
                ty.collect_named(&mut out);
            }
        }
        out.into_iter().collect()
    }

    /// Whether the function body contains at least one update point.
    pub fn has_update_point(&self) -> bool {
        self.code.iter().any(|i| matches!(i, Instr::UpdatePoint))
    }

    /// Virtual encoded size of the code in bytes (Table 4 accounting).
    pub fn code_size(&self) -> usize {
        self.code.iter().map(Instr::encoded_size).sum()
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Program-wide unique name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Initialiser code: verified to leave exactly one value of type `ty`
    /// on the stack, then `Ret`.
    pub init: Vec<Instr>,
}

/// Byte-size breakdown of a module under a deterministic virtual encoding,
/// used to reproduce the paper's code/metadata size comparison (Table 4).
///
/// `symbol_bytes`, `string_bytes` and `type_bytes` are *linking metadata*:
/// a statically linked executable can strip them after binding, whereas an
/// updateable program must retain them so future patches can be linked —
/// that retained metadata is the space cost of updateability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeReport {
    /// Encoded instruction bytes across all functions and global initialisers.
    pub code_bytes: usize,
    /// Symbol-table bytes (names plus type descriptors).
    pub symbol_bytes: usize,
    /// String-pool bytes.
    pub string_bytes: usize,
    /// Record-type definition and type-reference bytes.
    pub type_bytes: usize,
}

impl SizeReport {
    /// Total size of an *updateable* image: code plus all linking metadata.
    pub fn updateable_total(&self) -> usize {
        self.code_bytes + self.symbol_bytes + self.string_bytes + self.type_bytes
    }

    /// Total size of a *static* image: metadata needed only for one-shot
    /// linking is stripped; string constants remain.
    pub fn static_total(&self) -> usize {
        self.code_bytes + self.string_bytes
    }

    /// Relative overhead of updateability, in percent.
    pub fn overhead_percent(&self) -> f64 {
        let s = self.static_total() as f64;
        if s == 0.0 {
            0.0
        } else {
            (self.updateable_total() as f64 - s) / s * 100.0
        }
    }
}

/// A relinkable object-code module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name (for diagnostics; the symbol namespace is flat).
    pub name: String,
    /// Free-form version tag (e.g. `"flashed-v3"`).
    pub version: String,
    /// String constant pool.
    pub strings: Vec<String>,
    /// Named-type reference pool (names used by record instructions).
    pub type_refs: Vec<String>,
    /// Record type definitions provided by this module.
    pub types: Vec<TypeDef>,
    /// Symbol table: every function, global and host reference made by code.
    pub symbols: Vec<Symbol>,
    /// Function definitions.
    pub functions: Vec<Function>,
    /// Global variable definitions.
    pub globals: Vec<GlobalDef>,
}

impl Module {
    /// Creates an empty module with the given name and version.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            version: version.into(),
            ..Module::default()
        }
    }

    /// Looks up a symbol table entry.
    pub fn symbol(&self, id: SymId) -> Option<&Symbol> {
        self.symbols.get(id.0 as usize)
    }

    /// Looks up a string constant.
    pub fn string(&self, id: StrId) -> Option<&str> {
        self.strings.get(id.0 as usize).map(String::as_str)
    }

    /// Looks up a type-reference name.
    pub fn type_ref(&self, id: TypeRefId) -> Option<&str> {
        self.type_refs.get(id.0 as usize).map(String::as_str)
    }

    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a global definition by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Finds a record type definition by name.
    pub fn type_def(&self, name: &str) -> Option<&TypeDef> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Names of symbols that are *not* defined by this module and must be
    /// resolved by the linker against the running program (or host).
    pub fn imports(&self) -> Vec<&Symbol> {
        self.symbols
            .iter()
            .filter(|s| match &s.kind {
                SymbolKind::Fn(_) => self.function(&s.name).is_none(),
                SymbolKind::Global(_) => self.global(&s.name).is_none(),
                SymbolKind::Host(_) => true,
            })
            .collect()
    }

    /// Computes the virtual-encoding size breakdown (see [`SizeReport`]).
    pub fn size_report(&self) -> SizeReport {
        let ty_size = |t: &Ty| t.to_string().len() + 1;
        let sig_size = |s: &FnSig| s.params.iter().map(&ty_size).sum::<usize>() + ty_size(&s.ret);
        let code_bytes = self
            .functions
            .iter()
            .map(Function::code_size)
            .sum::<usize>()
            + self
                .globals
                .iter()
                .map(|g| g.init.iter().map(Instr::encoded_size).sum::<usize>())
                .sum::<usize>();
        let symbol_bytes = self
            .symbols
            .iter()
            .map(|s| {
                s.name.len()
                    + 1
                    + match &s.kind {
                        SymbolKind::Fn(sig) | SymbolKind::Host(sig) => sig_size(sig),
                        SymbolKind::Global(t) => ty_size(t),
                    }
            })
            .sum();
        let string_bytes = self.strings.iter().map(|s| s.len() + 4).sum();
        let type_bytes = self
            .types
            .iter()
            .map(|t| {
                t.name.len()
                    + 1
                    + t.fields
                        .iter()
                        .map(|f| f.name.len() + 1 + ty_size(&f.ty))
                        .sum::<usize>()
            })
            .sum::<usize>()
            + self.type_refs.iter().map(|n| n.len() + 1).sum::<usize>();
        SizeReport {
            code_bytes,
            symbol_bytes,
            string_bytes,
            type_bytes,
        }
    }
}

impl fmt::Display for Module {
    /// Disassembly listing of the whole module.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} (version {})", self.name, self.version)?;
        for t in &self.types {
            writeln!(f, "  {t}")?;
        }
        for g in &self.globals {
            writeln!(f, "  global {}: {}", g.name, g.ty)?;
        }
        for func in &self.functions {
            writeln!(f, "  fun {}{} {{", func.name, func.sig)?;
            for (i, ins) in func.code.iter().enumerate() {
                writeln!(f, "    {i:4}: {ins}")?;
            }
            writeln!(f, "  }}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn sample() -> Module {
        let mut m = Module::new("m", "v1");
        m.strings.push("hello".into());
        m.type_refs.push("point".into());
        m.types.push(TypeDef::new(
            "point",
            vec![
                crate::types::Field::new("x", Ty::Int),
                crate::types::Field::new("y", Ty::Int),
            ],
        ));
        m.symbols
            .push(Symbol::func("f", FnSig::new(vec![Ty::Int], Ty::Int)));
        m.symbols
            .push(Symbol::host("now", FnSig::new(vec![], Ty::Int)));
        m.symbols.push(Symbol::global("g", Ty::Int));
        m.functions.push(Function {
            name: "f".into(),
            sig: FnSig::new(vec![Ty::Int], Ty::Int),
            locals: vec![Ty::Int],
            code: vec![Instr::LoadLocal(0), Instr::Ret],
        });
        m.globals.push(GlobalDef {
            name: "g".into(),
            ty: Ty::Int,
            init: vec![Instr::PushInt(0), Instr::Ret],
        });
        m
    }

    #[test]
    fn lookup_by_name() {
        let m = sample();
        assert!(m.function("f").is_some());
        assert!(m.function("nope").is_none());
        assert!(m.global("g").is_some());
        assert!(m.type_def("point").is_some());
        assert_eq!(m.string(StrId(0)), Some("hello"));
        assert_eq!(m.type_ref(TypeRefId(0)), Some("point"));
    }

    #[test]
    fn imports_excludes_locally_defined() {
        let m = sample();
        let imports: Vec<&str> = m.imports().iter().map(|s| s.name.as_str()).collect();
        // `f` and `g` are defined locally; only the host fn is an import.
        assert_eq!(imports, vec!["now"]);
    }

    #[test]
    fn size_report_overhead_is_positive() {
        let m = sample();
        let r = m.size_report();
        assert!(r.code_bytes > 0);
        assert!(r.symbol_bytes > 0);
        assert!(r.updateable_total() > r.static_total());
        assert!(r.overhead_percent() > 0.0);
    }

    #[test]
    fn function_reference_metadata() {
        let m = sample();
        let f = m.function("f").unwrap();
        assert!(f.referenced_symbols(&m).is_empty());
        assert!(!f.has_update_point());
        assert!(f.code_size() > 0);
    }

    #[test]
    fn disassembly_mentions_items() {
        let text = sample().to_string();
        assert!(text.contains("fun f"));
        assert!(text.contains("global g"));
        assert!(text.contains("struct point"));
    }
}
