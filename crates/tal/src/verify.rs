//! The bytecode verifier.
//!
//! This is the analogue of TAL type-checking in the paper: before any object
//! code — the initial program *or a dynamic patch* — is linked into a running
//! process, every function is checked by an abstract interpretation over
//! stack types. A verified module cannot violate type safety at run time
//! (it may still trap on `null`, division by zero or out-of-bounds indices,
//! exactly as the paper's safe-C setting allows).
//!
//! Verification is a forward dataflow analysis: each instruction index is
//! assigned the abstract operand-stack typing with which it may be entered;
//! control-flow joins require the typings to agree exactly.

use crate::instr::{Instr, SymId};
use crate::module::{Function, GlobalDef, Module, SymbolKind};
use crate::types::{Ty, TypeDef};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Provides record type definitions that a module may reference without
/// defining — e.g. a dynamic patch referring to types of the running program.
pub trait TypeProvider {
    /// Looks up the definition of a named record type.
    fn lookup_type(&self, name: &str) -> Option<&TypeDef>;
}

/// A [`TypeProvider`] with no definitions, for self-contained modules.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAmbientTypes;

impl TypeProvider for NoAmbientTypes {
    fn lookup_type(&self, _name: &str) -> Option<&TypeDef> {
        None
    }
}

impl TypeProvider for BTreeMap<String, TypeDef> {
    fn lookup_type(&self, name: &str) -> Option<&TypeDef> {
        self.get(name)
    }
}

impl TypeProvider for HashMap<String, TypeDef> {
    fn lookup_type(&self, name: &str) -> Option<&TypeDef> {
        self.get(name)
    }
}

/// A verification failure, pinpointing the function and instruction index.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Function (or `global <name>` initialiser) in which the error occurred,
    /// when applicable.
    pub context: Option<String>,
    /// Instruction index within that function, when applicable.
    pub at: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl VerifyError {
    fn module(message: impl Into<String>) -> VerifyError {
        VerifyError {
            context: None,
            at: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.context, self.at) {
            (Some(c), Some(i)) => write!(f, "verify error in `{c}` at {i}: {}", self.message),
            (Some(c), None) => write!(f, "verify error in `{c}`: {}", self.message),
            _ => write!(f, "verify error: {}", self.message),
        }
    }
}

impl Error for VerifyError {}

/// Verifies an entire module against an ambient type environment.
///
/// Checks, in order:
/// 1. module-level well-formedness (unique names, resolvable type
///    references, symbol/definition signature agreement);
/// 2. every global initialiser (must produce exactly its declared type);
/// 3. every function body (dataflow stack typing).
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(m: &Module, ambient: &dyn TypeProvider) -> Result<(), VerifyError> {
    check_module_shape(m, ambient)?;
    let env = Env::new(m, ambient);
    for g in &m.globals {
        verify_global_init(m, &env, g)?;
    }
    for f in &m.functions {
        verify_function(m, &env, f)?;
    }
    Ok(())
}

/// Verifies a single function body. Exposed so the dynamic-update runtime
/// can re-verify individual patched functions and time the verification
/// phase precisely.
///
/// # Errors
///
/// Returns a [`VerifyError`] describing the first ill-typed instruction.
pub fn verify_function(m: &Module, env: &Env<'_>, f: &Function) -> Result<(), VerifyError> {
    if f.locals.len() < f.sig.params.len() {
        return Err(err_fn(f, None, "fewer locals than parameters"));
    }
    for (i, p) in f.sig.params.iter().enumerate() {
        if &f.locals[i] != p {
            return Err(err_fn(
                f,
                None,
                format!("local {i} does not match parameter type {p}"),
            ));
        }
    }
    Dataflow::new(m, env, &f.name, &f.locals, &f.sig.ret).run(&f.code)
}

/// Verifies a global initialiser: no locals, and the code must return
/// exactly one value of the declared type.
fn verify_global_init(m: &Module, env: &Env<'_>, g: &GlobalDef) -> Result<(), VerifyError> {
    let ctx = format!("global {}", g.name);
    Dataflow::new(m, env, &ctx, &[], &g.ty).run(&g.init)
}

/// Resolved typing environment for one module: its symbol table plus the
/// record type definitions visible to it.
pub struct Env<'a> {
    module: &'a Module,
    ambient: &'a dyn TypeProvider,
}

impl<'a> Env<'a> {
    /// Builds the environment for `module`, falling back to `ambient` for
    /// type names the module does not define itself.
    pub fn new(module: &'a Module, ambient: &'a dyn TypeProvider) -> Env<'a> {
        Env { module, ambient }
    }

    fn type_def(&self, name: &str) -> Option<&TypeDef> {
        self.module
            .type_def(name)
            .or_else(|| self.ambient.lookup_type(name))
    }
}

fn err_fn(f: &Function, at: Option<usize>, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        context: Some(f.name.clone()),
        at,
        message: msg.into(),
    }
}

fn check_module_shape(m: &Module, ambient: &dyn TypeProvider) -> Result<(), VerifyError> {
    let mut seen = std::collections::HashSet::new();
    for f in &m.functions {
        if !seen.insert(&f.name) {
            return Err(VerifyError::module(format!(
                "duplicate function `{}`",
                f.name
            )));
        }
    }
    let mut seen = std::collections::HashSet::new();
    for g in &m.globals {
        if !seen.insert(&g.name) {
            return Err(VerifyError::module(format!(
                "duplicate global `{}`",
                g.name
            )));
        }
    }
    let mut seen = std::collections::HashSet::new();
    for t in &m.types {
        if !seen.insert(&t.name) {
            return Err(VerifyError::module(format!("duplicate type `{}`", t.name)));
        }
        let mut fseen = std::collections::HashSet::new();
        for fld in &t.fields {
            if !fseen.insert(&fld.name) {
                return Err(VerifyError::module(format!(
                    "duplicate field `{}` in type `{}`",
                    fld.name, t.name
                )));
            }
        }
    }

    let env = Env::new(m, ambient);
    // Every named type mentioned anywhere must resolve.
    let mut mentioned: Vec<String> = m.type_refs.clone();
    let push_ty = |t: &Ty, mentioned: &mut Vec<String>| t.collect_named(mentioned);
    for t in &m.types {
        for fld in &t.fields {
            push_ty(&fld.ty, &mut mentioned);
        }
    }
    for s in &m.symbols {
        match &s.kind {
            SymbolKind::Fn(sig) | SymbolKind::Host(sig) => {
                for p in &sig.params {
                    push_ty(p, &mut mentioned);
                }
                push_ty(&sig.ret, &mut mentioned);
            }
            SymbolKind::Global(t) => push_ty(t, &mut mentioned),
        }
    }
    for f in &m.functions {
        for l in &f.locals {
            push_ty(l, &mut mentioned);
        }
        for i in &f.code {
            if let Instr::NewArray(ty) = i {
                push_ty(ty, &mut mentioned);
            }
        }
    }
    for g in &m.globals {
        push_ty(&g.ty, &mut mentioned);
    }
    for name in mentioned {
        if env.type_def(&name).is_none() {
            return Err(VerifyError::module(format!("unresolved type `{name}`")));
        }
    }

    // Symbols naming locally defined items must agree with the definitions.
    for s in &m.symbols {
        match &s.kind {
            SymbolKind::Fn(sig) => {
                if let Some(def) = m.function(&s.name) {
                    if &def.sig != sig {
                        return Err(VerifyError::module(format!(
                            "symbol `{}` signature {sig} disagrees with definition {}",
                            s.name, def.sig
                        )));
                    }
                }
            }
            SymbolKind::Global(ty) => {
                if let Some(def) = m.global(&s.name) {
                    if &def.ty != ty {
                        return Err(VerifyError::module(format!(
                            "symbol `{}` type {ty} disagrees with definition {}",
                            s.name, def.ty
                        )));
                    }
                }
            }
            SymbolKind::Host(_) => {}
        }
    }
    Ok(())
}

/// Forward dataflow over one code body.
struct Dataflow<'a> {
    module: &'a Module,
    env: &'a Env<'a>,
    ctx: &'a str,
    locals: &'a [Ty],
    ret: &'a Ty,
    /// Entry stack typing per instruction index; `None` = not yet reached.
    states: Vec<Option<Vec<Ty>>>,
}

impl<'a> Dataflow<'a> {
    fn new(
        module: &'a Module,
        env: &'a Env<'a>,
        ctx: &'a str,
        locals: &'a [Ty],
        ret: &'a Ty,
    ) -> Dataflow<'a> {
        Dataflow {
            module,
            env,
            ctx,
            locals,
            ret,
            states: Vec::new(),
        }
    }

    fn err(&self, at: usize, msg: impl Into<String>) -> VerifyError {
        VerifyError {
            context: Some(self.ctx.to_string()),
            at: Some(at),
            message: msg.into(),
        }
    }

    fn run(mut self, code: &[Instr]) -> Result<(), VerifyError> {
        if code.is_empty() {
            return Err(self.err(0, "empty code body"));
        }
        self.states = vec![None; code.len()];
        self.states[0] = Some(Vec::new());
        let mut work: VecDeque<usize> = VecDeque::from([0]);
        while let Some(pc) = work.pop_front() {
            let stack = self.states[pc].clone().expect("queued pc has a state");
            let instr = &code[pc];
            let (out, succs) = self.step(pc, instr, stack)?;
            for s in succs {
                if s >= code.len() {
                    return Err(self.err(pc, "control falls off the end of the code"));
                }
                match &self.states[s] {
                    None => {
                        self.states[s] = Some(out.clone());
                        work.push_back(s);
                    }
                    Some(existing) => {
                        if existing != &out {
                            return Err(self.err(
                                s,
                                format!(
                                    "inconsistent stack typing at join: {:?} vs {:?}",
                                    existing, out
                                ),
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn pop(&self, at: usize, stack: &mut Vec<Ty>) -> Result<Ty, VerifyError> {
        stack
            .pop()
            .ok_or_else(|| self.err(at, "operand stack underflow"))
    }

    fn pop_expect(&self, at: usize, stack: &mut Vec<Ty>, want: &Ty) -> Result<(), VerifyError> {
        let got = self.pop(at, stack)?;
        if &got != want {
            return Err(self.err(at, format!("expected {want}, found {got}")));
        }
        Ok(())
    }

    fn type_ref_def(
        &self,
        at: usize,
        tr: crate::instr::TypeRefId,
    ) -> Result<(&str, &TypeDef), VerifyError> {
        let name = self
            .module
            .type_ref(tr)
            .ok_or_else(|| self.err(at, format!("bad type ref #{}", tr.0)))?;
        let def = self
            .env
            .type_def(name)
            .ok_or_else(|| self.err(at, format!("unresolved type `{name}`")))?;
        Ok((name, def))
    }

    fn symbol(&self, at: usize, s: SymId) -> Result<&'a crate::module::Symbol, VerifyError> {
        self.module
            .symbol(s)
            .ok_or_else(|| self.err(at, format!("bad symbol ref #{}", s.0)))
    }

    /// Simulates one instruction; returns the post-stack and successor pcs.
    /// An empty successor list means the instruction ends the path (`Ret`).
    #[allow(clippy::too_many_lines)]
    fn step(
        &self,
        pc: usize,
        instr: &Instr,
        mut stack: Vec<Ty>,
    ) -> Result<(Vec<Ty>, Vec<usize>), VerifyError> {
        use Instr::*;
        let next = vec![pc + 1];
        macro_rules! binop {
            ($in:expr, $out:expr) => {{
                self.pop_expect(pc, &mut stack, &$in)?;
                self.pop_expect(pc, &mut stack, &$in)?;
                stack.push($out);
                Ok((stack, next))
            }};
        }
        match instr {
            PushUnit => {
                stack.push(Ty::Unit);
                Ok((stack, next))
            }
            PushInt(_) => {
                stack.push(Ty::Int);
                Ok((stack, next))
            }
            PushBool(_) => {
                stack.push(Ty::Bool);
                Ok((stack, next))
            }
            PushStr(s) => {
                if self.module.string(*s).is_none() {
                    return Err(self.err(pc, format!("bad string ref #{}", s.0)));
                }
                stack.push(Ty::Str);
                Ok((stack, next))
            }
            PushNull(tr) => {
                let (name, _) = self.type_ref_def(pc, *tr)?;
                stack.push(Ty::Named(name.to_string()));
                Ok((stack, next))
            }
            PushFn(s) => {
                let sym = self.symbol(pc, *s)?;
                match &sym.kind {
                    SymbolKind::Fn(sig) => {
                        stack.push(Ty::Fn(Box::new(sig.clone())));
                        Ok((stack, next))
                    }
                    _ => Err(self.err(pc, format!("`{}` is not a function symbol", sym.name))),
                }
            }
            LoadLocal(n) => {
                let ty = self
                    .locals
                    .get(*n as usize)
                    .ok_or_else(|| self.err(pc, format!("no local {n}")))?;
                stack.push(ty.clone());
                Ok((stack, next))
            }
            StoreLocal(n) => {
                let ty = self
                    .locals
                    .get(*n as usize)
                    .cloned()
                    .ok_or_else(|| self.err(pc, format!("no local {n}")))?;
                self.pop_expect(pc, &mut stack, &ty)?;
                Ok((stack, next))
            }
            LoadGlobal(s) => {
                let sym = self.symbol(pc, *s)?;
                match &sym.kind {
                    SymbolKind::Global(ty) => {
                        stack.push(ty.clone());
                        Ok((stack, next))
                    }
                    _ => Err(self.err(pc, format!("`{}` is not a global symbol", sym.name))),
                }
            }
            StoreGlobal(s) => {
                let sym = self.symbol(pc, *s)?;
                match &sym.kind {
                    SymbolKind::Global(ty) => {
                        let ty = ty.clone();
                        self.pop_expect(pc, &mut stack, &ty)?;
                        Ok((stack, next))
                    }
                    _ => Err(self.err(pc, format!("`{}` is not a global symbol", sym.name))),
                }
            }
            Dup => {
                let t = self.pop(pc, &mut stack)?;
                stack.push(t.clone());
                stack.push(t);
                Ok((stack, next))
            }
            Pop => {
                self.pop(pc, &mut stack)?;
                Ok((stack, next))
            }
            Swap => {
                let a = self.pop(pc, &mut stack)?;
                let b = self.pop(pc, &mut stack)?;
                stack.push(a);
                stack.push(b);
                Ok((stack, next))
            }
            Add | Sub | Mul | Div | Rem => binop!(Ty::Int, Ty::Int),
            Neg => {
                self.pop_expect(pc, &mut stack, &Ty::Int)?;
                stack.push(Ty::Int);
                Ok((stack, next))
            }
            Eq | Ne | Lt | Le | Gt | Ge => binop!(Ty::Int, Ty::Bool),
            And | Or => binop!(Ty::Bool, Ty::Bool),
            Not => {
                self.pop_expect(pc, &mut stack, &Ty::Bool)?;
                stack.push(Ty::Bool);
                Ok((stack, next))
            }
            Concat => binop!(Ty::Str, Ty::Str),
            StrEq => binop!(Ty::Str, Ty::Bool),
            StrLen => {
                self.pop_expect(pc, &mut stack, &Ty::Str)?;
                stack.push(Ty::Int);
                Ok((stack, next))
            }
            Substr => {
                self.pop_expect(pc, &mut stack, &Ty::Int)?;
                self.pop_expect(pc, &mut stack, &Ty::Int)?;
                self.pop_expect(pc, &mut stack, &Ty::Str)?;
                stack.push(Ty::Str);
                Ok((stack, next))
            }
            CharAt => {
                self.pop_expect(pc, &mut stack, &Ty::Int)?;
                self.pop_expect(pc, &mut stack, &Ty::Str)?;
                stack.push(Ty::Int);
                Ok((stack, next))
            }
            StrFind => {
                self.pop_expect(pc, &mut stack, &Ty::Str)?;
                self.pop_expect(pc, &mut stack, &Ty::Str)?;
                stack.push(Ty::Int);
                Ok((stack, next))
            }
            IntToStr => {
                self.pop_expect(pc, &mut stack, &Ty::Int)?;
                stack.push(Ty::Str);
                Ok((stack, next))
            }
            StrToInt => {
                self.pop_expect(pc, &mut stack, &Ty::Str)?;
                stack.push(Ty::Int);
                Ok((stack, next))
            }
            Jump(t) => Ok((stack, vec![*t as usize])),
            JumpIfFalse(t) => {
                self.pop_expect(pc, &mut stack, &Ty::Bool)?;
                Ok((stack, vec![pc + 1, *t as usize]))
            }
            Call(s) | CallHost(s) => {
                let sym = self.symbol(pc, *s)?;
                let sig = match (&sym.kind, instr) {
                    (SymbolKind::Fn(sig), Call(_)) => sig,
                    (SymbolKind::Host(sig), CallHost(_)) => sig,
                    _ => {
                        return Err(self.err(
                            pc,
                            format!("`{}` has the wrong symbol kind for this call", sym.name),
                        ))
                    }
                };
                for p in sig.params.iter().rev() {
                    self.pop_expect(pc, &mut stack, p)?;
                }
                stack.push(sig.ret.clone());
                Ok((stack, next))
            }
            CallIndirect => {
                let f = self.pop(pc, &mut stack)?;
                let Ty::Fn(sig) = f else {
                    return Err(self.err(pc, format!("call.indirect on non-function {f}")));
                };
                for p in sig.params.iter().rev() {
                    self.pop_expect(pc, &mut stack, p)?;
                }
                stack.push(sig.ret.clone());
                Ok((stack, next))
            }
            Ret => {
                self.pop_expect(pc, &mut stack, self.ret)?;
                if !stack.is_empty() {
                    return Err(
                        self.err(pc, format!("{} residual operands at return", stack.len()))
                    );
                }
                Ok((stack, Vec::new()))
            }
            NewRecord(tr) => {
                let (name, def) = self.type_ref_def(pc, *tr)?;
                let name = name.to_string();
                let fields: Vec<Ty> = def.fields.iter().map(|f| f.ty.clone()).collect();
                for ty in fields.iter().rev() {
                    self.pop_expect(pc, &mut stack, ty)?;
                }
                stack.push(Ty::Named(name));
                Ok((stack, next))
            }
            GetField(tr, i) => {
                let (name, def) = self.type_ref_def(pc, *tr)?;
                let fld = def
                    .fields
                    .get(*i as usize)
                    .ok_or_else(|| self.err(pc, format!("`{name}` has no field {i}")))?;
                let (name, fty) = (name.to_string(), fld.ty.clone());
                self.pop_expect(pc, &mut stack, &Ty::Named(name))?;
                stack.push(fty);
                Ok((stack, next))
            }
            SetField(tr, i) => {
                let (name, def) = self.type_ref_def(pc, *tr)?;
                let fld = def
                    .fields
                    .get(*i as usize)
                    .ok_or_else(|| self.err(pc, format!("`{name}` has no field {i}")))?;
                let (name, fty) = (name.to_string(), fld.ty.clone());
                self.pop_expect(pc, &mut stack, &fty)?;
                self.pop_expect(pc, &mut stack, &Ty::Named(name))?;
                Ok((stack, next))
            }
            IsNull(tr) => {
                let (name, _) = self.type_ref_def(pc, *tr)?;
                let name = name.to_string();
                self.pop_expect(pc, &mut stack, &Ty::Named(name))?;
                stack.push(Ty::Bool);
                Ok((stack, next))
            }
            NewArray(ty) => {
                stack.push(Ty::Array(Box::new(ty.clone())));
                Ok((stack, next))
            }
            ArrayGet => {
                self.pop_expect(pc, &mut stack, &Ty::Int)?;
                let arr = self.pop(pc, &mut stack)?;
                let Ty::Array(e) = arr else {
                    return Err(self.err(pc, format!("array.get on non-array {arr}")));
                };
                stack.push(*e);
                Ok((stack, next))
            }
            ArraySet => {
                let v = self.pop(pc, &mut stack)?;
                self.pop_expect(pc, &mut stack, &Ty::Int)?;
                let arr = self.pop(pc, &mut stack)?;
                if arr != Ty::Array(Box::new(v.clone())) {
                    return Err(self.err(pc, format!("array.set type mismatch: {arr} vs {v}")));
                }
                Ok((stack, next))
            }
            ArrayLen => {
                let arr = self.pop(pc, &mut stack)?;
                let Ty::Array(_) = arr else {
                    return Err(self.err(pc, format!("array.len on non-array {arr}")));
                };
                stack.push(Ty::Int);
                Ok((stack, next))
            }
            ArrayPush => {
                let v = self.pop(pc, &mut stack)?;
                let arr = self.pop(pc, &mut stack)?;
                if arr != Ty::Array(Box::new(v.clone())) {
                    return Err(self.err(pc, format!("array.push type mismatch: {arr} vs {v}")));
                }
                Ok((stack, next))
            }
            UpdatePoint | Nop => Ok((stack, next)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::{Field, FnSig};

    fn verify(m: &Module) -> Result<(), VerifyError> {
        verify_module(m, &NoAmbientTypes)
    }

    #[test]
    fn accepts_identity_function() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("id", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::Ret);
        });
        verify(&b.finish()).unwrap();
    }

    #[test]
    fn rejects_stack_underflow() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("bad", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::Add);
            f.emit(Instr::Ret);
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("underflow"), "{e}");
    }

    #[test]
    fn rejects_wrong_return_type() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("bad", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushBool(true));
            f.emit(Instr::Ret);
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("expected int"), "{e}");
    }

    #[test]
    fn rejects_residual_operands_at_return() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("bad", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushInt(1));
            f.emit(Instr::PushInt(2));
            f.emit(Instr::Ret);
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("residual"), "{e}");
    }

    #[test]
    fn rejects_fall_off_end() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("bad", FnSig::new(vec![], Ty::Unit), |f| {
            f.emit(Instr::PushUnit);
            f.emit(Instr::Pop);
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("falls off"), "{e}");
    }

    #[test]
    fn rejects_inconsistent_join() {
        // One branch leaves an int on the stack, the other a bool, at the
        // same join point.
        let mut b = ModuleBuilder::new("t", "v");
        b.function("bad", FnSig::new(vec![Ty::Bool], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0)); // 0
            f.emit(Instr::JumpIfFalse(4)); // 1
            f.emit(Instr::PushInt(1)); // 2
            f.emit(Instr::Jump(5)); // 3
            f.emit(Instr::PushBool(true)); // 4  (join at 5 disagrees)
            f.emit(Instr::Pop); // 5
            f.emit(Instr::PushInt(0)); // 6
            f.emit(Instr::Ret); // 7
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("join"), "{e}");
    }

    #[test]
    fn accepts_loop_with_consistent_typing() {
        // while (n > 0) { n = n - 1; } return n;
        let mut b = ModuleBuilder::new("t", "v");
        b.function("loop", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0)); // 0
            f.emit(Instr::PushInt(0)); // 1
            f.emit(Instr::Gt); // 2
            f.emit(Instr::JumpIfFalse(9)); // 3
            f.emit(Instr::LoadLocal(0)); // 4
            f.emit(Instr::PushInt(1)); // 5
            f.emit(Instr::Sub); // 6
            f.emit(Instr::StoreLocal(0)); // 7
            f.emit(Instr::Jump(0)); // 8
            f.emit(Instr::LoadLocal(0)); // 9
            f.emit(Instr::Ret); // 10
        });
        verify(&b.finish()).unwrap();
    }

    #[test]
    fn checks_record_field_types() {
        let mut b = ModuleBuilder::new("t", "v");
        b.def_type(TypeDef::new("p", vec![Field::new("x", Ty::Int)]));
        let tr = b.type_ref("p");
        b.function("bad", FnSig::new(vec![], Ty::Unit), move |f| {
            f.emit(Instr::PushBool(true)); // wrong field type
            f.emit(Instr::NewRecord(tr));
            f.emit(Instr::Pop);
            f.emit(Instr::PushUnit);
            f.emit(Instr::Ret);
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("expected int"), "{e}");
    }

    #[test]
    fn resolves_types_from_ambient_provider() {
        let mut ambient = BTreeMap::new();
        ambient.insert(
            "q".to_string(),
            TypeDef::new("q", vec![Field::new("v", Ty::Int)]),
        );
        let mut b = ModuleBuilder::new("t", "v");
        let tr = b.type_ref("q");
        b.function("mk", FnSig::new(vec![], Ty::named("q")), move |f| {
            f.emit(Instr::PushInt(3));
            f.emit(Instr::NewRecord(tr));
            f.emit(Instr::Ret);
        });
        let m = b.finish();
        assert!(verify_module(&m, &NoAmbientTypes).is_err());
        verify_module(&m, &ambient).unwrap();
    }

    #[test]
    fn rejects_unresolved_type_reference() {
        let mut b = ModuleBuilder::new("t", "v");
        let tr = b.type_ref("ghost");
        b.function("mk", FnSig::new(vec![], Ty::Unit), move |f| {
            f.emit(Instr::PushNull(tr));
            f.emit(Instr::Pop);
            f.emit(Instr::PushUnit);
            f.emit(Instr::Ret);
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("unresolved type"), "{e}");
    }

    #[test]
    fn rejects_symbol_definition_mismatch() {
        let mut b = ModuleBuilder::new("t", "v");
        // Symbol claims f: (int) -> int but the definition is (): unit.
        b.declare_fn("f", FnSig::new(vec![Ty::Int], Ty::Int));
        b.function("f", FnSig::new(vec![], Ty::Unit), |f| {
            f.emit(Instr::PushUnit);
            f.emit(Instr::Ret);
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("disagrees"), "{e}");
    }

    #[test]
    fn call_checks_argument_types() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("f", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::Ret);
        });
        let callee = b.declare_fn("f", FnSig::new(vec![Ty::Int], Ty::Int));
        b.function("g", FnSig::new(vec![], Ty::Int), move |f| {
            f.emit(Instr::PushBool(false)); // wrong argument type
            f.emit(Instr::Call(callee));
            f.emit(Instr::Ret);
        });
        let e = verify(&b.finish()).unwrap_err();
        assert!(e.message.contains("expected int"), "{e}");
    }

    #[test]
    fn verifies_global_initialisers() {
        let mut b = ModuleBuilder::new("t", "v");
        b.global("ok", Ty::Int, vec![Instr::PushInt(1), Instr::Ret]);
        verify(&b.finish()).unwrap();

        let mut b = ModuleBuilder::new("t", "v");
        b.global("bad", Ty::Int, vec![Instr::PushBool(true), Instr::Ret]);
        let e = verify(&b.finish()).unwrap_err();
        assert_eq!(e.context.as_deref(), Some("global bad"));
    }

    #[test]
    fn indirect_call_through_function_value() {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("inc", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushInt(1));
            f.emit(Instr::Add);
            f.emit(Instr::Ret);
        });
        let inc = b.declare_fn("inc", FnSig::new(vec![Ty::Int], Ty::Int));
        b.function("apply", FnSig::new(vec![Ty::Int], Ty::Int), move |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushFn(inc));
            f.emit(Instr::CallIndirect);
            f.emit(Instr::Ret);
        });
        verify(&b.finish()).unwrap();
    }
}
