//! Peephole optimisation of bytecode.
//!
//! A small, verification-preserving pass pipeline run over each function
//! (and global initialiser):
//!
//! 1. **constant folding** — integer/boolean/string operations on
//!    constants, including folding `push.bool` into conditional jumps;
//! 2. **jump threading** — branches to unconditional jumps retarget to the
//!    final destination;
//! 3. **dead-code elimination** — instructions unreachable from the entry
//!    are removed (with jump-target remapping);
//! 4. **push/pop cancellation** — values pushed and immediately dropped.
//!
//! Passes iterate to a fixed point (bounded). Optimised modules verify
//! exactly like their originals — the verifier remains the gatekeeper for
//! anything entering a process, optimised or not.

use std::collections::HashSet;

use crate::instr::Instr;
use crate::module::Module;

/// Statistics from optimising one module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions before optimisation.
    pub before: usize,
    /// Instructions after optimisation.
    pub after: usize,
    /// Constants folded.
    pub folds: usize,
    /// Jumps threaded.
    pub threads: usize,
    /// Unreachable or cancelled instructions removed.
    pub removed: usize,
}

impl OptStats {
    /// Fraction of instructions eliminated, in percent.
    pub fn shrink_percent(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            (self.before - self.after) as f64 / self.before as f64 * 100.0
        }
    }
}

/// Optimises every function and global initialiser of `m` in place.
pub fn optimize_module(m: &mut Module) -> OptStats {
    let mut stats = OptStats::default();
    let mut strings = m.strings.clone();
    let mut bodies: Vec<&mut Vec<Instr>> = Vec::new();
    for f in &mut m.functions {
        bodies.push(&mut f.code);
    }
    for g in &mut m.globals {
        bodies.push(&mut g.init);
    }
    for code in bodies {
        stats.before += code.len();
        optimize_code(code, &mut strings, &mut stats);
        stats.after += code.len();
    }
    m.strings = strings;
    stats
}

/// Optimises one code body to a fixed point.
fn optimize_code(code: &mut Vec<Instr>, strings: &mut Vec<String>, stats: &mut OptStats) {
    for _round in 0..8 {
        let mut changed = false;
        changed |= fold_constants(code, strings, stats);
        changed |= thread_jumps(code, stats);
        changed |= drop_unreachable(code, stats);
        changed |= cancel_push_pop(code, stats);
        if !changed {
            break;
        }
    }
}

/// Instruction indices that are targets of some jump (windows containing
/// one cannot be rewritten as a unit).
fn jump_targets(code: &[Instr]) -> HashSet<usize> {
    code.iter()
        .filter_map(|i| match i {
            Instr::Jump(t) | Instr::JumpIfFalse(t) => Some(*t as usize),
            _ => None,
        })
        .collect()
}

fn fold_constants(code: &mut [Instr], strings: &mut Vec<String>, stats: &mut OptStats) -> bool {
    let targets = jump_targets(code);
    let mut changed = false;
    // The next non-`Nop` index at or after `j`, if any.
    let skip_nops = |code: &[Instr], mut j: usize| -> Option<usize> {
        while j < code.len() {
            if !matches!(code[j], Instr::Nop) {
                return Some(j);
            }
            j += 1;
        }
        None
    };
    // No instruction in `(i, end]` may be a branch target, or a jump could
    // land inside the rewritten window.
    let clear = |targets: &HashSet<usize>, i: usize, end: usize| {
        (i + 1..=end).all(|k| !targets.contains(&k))
    };
    let mut i = 0;
    while i < code.len() {
        if matches!(code[i], Instr::Nop) {
            i += 1;
            continue;
        }
        // Three-instruction windows (Nop-transparent): [const, const, op].
        let j1 = skip_nops(code, i + 1);
        let j2 = j1.and_then(|j| skip_nops(code, j + 1));
        if let (Some(j1), Some(j2)) = (j1, j2) {
            if clear(&targets, i, j2) {
                let folded: Option<Instr> = match (&code[i], &code[j1], &code[j2]) {
                    (Instr::PushInt(a), Instr::PushInt(b), op) => match op {
                        Instr::Add => Some(Instr::PushInt(a.wrapping_add(*b))),
                        Instr::Sub => Some(Instr::PushInt(a.wrapping_sub(*b))),
                        Instr::Mul => Some(Instr::PushInt(a.wrapping_mul(*b))),
                        Instr::Div if *b != 0 => Some(Instr::PushInt(a.wrapping_div(*b))),
                        Instr::Rem if *b != 0 => Some(Instr::PushInt(a.wrapping_rem(*b))),
                        Instr::Eq => Some(Instr::PushBool(a == b)),
                        Instr::Ne => Some(Instr::PushBool(a != b)),
                        Instr::Lt => Some(Instr::PushBool(a < b)),
                        Instr::Le => Some(Instr::PushBool(a <= b)),
                        Instr::Gt => Some(Instr::PushBool(a > b)),
                        Instr::Ge => Some(Instr::PushBool(a >= b)),
                        _ => None,
                    },
                    (Instr::PushBool(a), Instr::PushBool(b), Instr::And) => {
                        Some(Instr::PushBool(*a && *b))
                    }
                    (Instr::PushBool(a), Instr::PushBool(b), Instr::Or) => {
                        Some(Instr::PushBool(*a || *b))
                    }
                    (Instr::PushStr(a), Instr::PushStr(b), Instr::Concat) => {
                        let joined = format!("{}{}", strings[a.0 as usize], strings[b.0 as usize]);
                        let id = strings
                            .iter()
                            .position(|s| s == &joined)
                            .unwrap_or_else(|| {
                                strings.push(joined);
                                strings.len() - 1
                            });
                        Some(Instr::PushStr(crate::instr::StrId(id as u32)))
                    }
                    (Instr::PushStr(a), Instr::PushStr(b), Instr::StrEq) => Some(Instr::PushBool(
                        strings[a.0 as usize] == strings[b.0 as usize],
                    )),
                    _ => None,
                };
                if let Some(instr) = folded {
                    code[i] = instr;
                    code[j1] = Instr::Nop;
                    code[j2] = Instr::Nop;
                    stats.folds += 1;
                    changed = true;
                    // Re-examine `i`: the folded constant may feed the
                    // next window (full chains fold in one pass).
                    continue;
                }
            }
        }
        // Two-instruction windows (Nop-transparent).
        if let Some(j1) = skip_nops(code, i + 1) {
            if clear(&targets, i, j1) {
                let folded: Option<Vec<Instr>> = match (&code[i], &code[j1]) {
                    (Instr::PushInt(a), Instr::Neg) => Some(vec![Instr::PushInt(a.wrapping_neg())]),
                    (Instr::PushBool(b), Instr::Not) => Some(vec![Instr::PushBool(!b)]),
                    (Instr::PushInt(a), Instr::IntToStr) => {
                        let s = a.to_string();
                        let id = strings.iter().position(|x| x == &s).unwrap_or_else(|| {
                            strings.push(s);
                            strings.len() - 1
                        });
                        Some(vec![Instr::PushStr(crate::instr::StrId(id as u32))])
                    }
                    (Instr::PushStr(s), Instr::StrLen) => {
                        Some(vec![Instr::PushInt(strings[s.0 as usize].len() as i64)])
                    }
                    // A constant conditional branch becomes a plain jump (or
                    // falls through).
                    (Instr::PushBool(false), Instr::JumpIfFalse(t)) => Some(vec![Instr::Jump(*t)]),
                    (Instr::PushBool(true), Instr::JumpIfFalse(_)) => Some(vec![]),
                    _ => None,
                };
                if let Some(with) = folded {
                    code[i] = with.first().cloned().unwrap_or(Instr::Nop);
                    code[j1] = with.get(1).cloned().unwrap_or(Instr::Nop);
                    stats.folds += 1;
                    changed = true;
                    continue;
                }
            }
        }
        i += 1;
    }
    changed
}

fn thread_jumps(code: &mut [Instr], stats: &mut OptStats) -> bool {
    let mut changed = false;
    // Final destination of a jump to `t`, following Jump/Nop chains.
    let resolve = |start: u32, code: &[Instr]| -> u32 {
        let mut t = start;
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(t) {
                return t; // cycle: an intentional infinite loop
            }
            match code.get(t as usize) {
                Some(Instr::Jump(u)) => t = *u,
                Some(Instr::Nop) => t += 1,
                _ => return t,
            }
        }
    };
    for i in 0..code.len() {
        let new = match code[i] {
            Instr::Jump(t) => {
                let u = resolve(t, code);
                (u != t).then_some(Instr::Jump(u))
            }
            Instr::JumpIfFalse(t) => {
                let u = resolve(t, code);
                (u != t).then_some(Instr::JumpIfFalse(u))
            }
            _ => None,
        };
        if let Some(n) = new {
            code[i] = n;
            stats.threads += 1;
            changed = true;
        }
    }
    changed
}

/// Removes instructions unreachable from index 0, compacting the body and
/// remapping every jump target.
fn drop_unreachable(code: &mut Vec<Instr>, stats: &mut OptStats) -> bool {
    let mut reachable = vec![false; code.len()];
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        if pc >= code.len() || reachable[pc] {
            continue;
        }
        reachable[pc] = true;
        match &code[pc] {
            Instr::Jump(t) => work.push(*t as usize),
            Instr::JumpIfFalse(t) => {
                work.push(*t as usize);
                work.push(pc + 1);
            }
            Instr::Ret => {}
            _ => work.push(pc + 1),
        }
    }
    if reachable.iter().all(|r| *r) {
        return false;
    }
    // Build the old-index -> new-index map over kept instructions.
    let mut remap = vec![u32::MAX; code.len()];
    let mut next = 0u32;
    for (i, r) in reachable.iter().enumerate() {
        if *r {
            remap[i] = next;
            next += 1;
        }
    }
    let mut out = Vec::with_capacity(next as usize);
    for (i, instr) in code.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        out.push(match instr {
            Instr::Jump(t) => Instr::Jump(remap[*t as usize]),
            Instr::JumpIfFalse(t) => Instr::JumpIfFalse(remap[*t as usize]),
            other => other.clone(),
        });
    }
    stats.removed += code.len() - out.len();
    *code = out;
    true
}

/// Cancels `push*; pop` pairs and strips `nop`s (both with remapping,
/// implemented by rewriting to `Nop` first and compacting).
fn cancel_push_pop(code: &mut Vec<Instr>, stats: &mut OptStats) -> bool {
    let targets = jump_targets(code);
    let mut changed = false;
    for i in 0..code.len().saturating_sub(1) {
        if targets.contains(&(i + 1)) {
            continue;
        }
        let pushes = matches!(
            code[i],
            Instr::PushUnit
                | Instr::PushInt(_)
                | Instr::PushBool(_)
                | Instr::PushStr(_)
                | Instr::PushNull(_)
                | Instr::PushFn(_)
                | Instr::LoadLocal(_)
                | Instr::Dup
        );
        if pushes && matches!(code[i + 1], Instr::Pop) {
            code[i] = Instr::Nop;
            code[i + 1] = Instr::Nop;
            changed = true;
        }
    }
    // Compact nops (they are never needed: nothing jumps *into* a Nop we
    // created without remapping below).
    if code.iter().any(|i| matches!(i, Instr::Nop)) {
        let mut remap = vec![u32::MAX; code.len()];
        let mut next = 0u32;
        let targets = jump_targets(code);
        for (i, instr) in code.iter().enumerate() {
            // Keep a Nop if something jumps to it (remap would need the
            // following instruction; keeping it is simpler and rare).
            if matches!(instr, Instr::Nop) && !targets.contains(&i) {
                continue;
            }
            remap[i] = next;
            next += 1;
        }
        if (next as usize) < code.len() {
            let mut out = Vec::with_capacity(next as usize);
            for (i, instr) in code.iter().enumerate() {
                if remap[i] == u32::MAX {
                    continue;
                }
                out.push(match instr {
                    Instr::Jump(t) => Instr::Jump(remap[*t as usize]),
                    Instr::JumpIfFalse(t) => Instr::JumpIfFalse(remap[*t as usize]),
                    other => other.clone(),
                });
            }
            stats.removed += code.len() - out.len();
            *code = out;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::{FnSig, Ty};
    use crate::verify::{verify_module, NoAmbientTypes};

    fn optimize_fn(
        build: impl FnOnce(&mut crate::builder::FunctionBuilder<'_>),
    ) -> (Module, OptStats) {
        let mut b = ModuleBuilder::new("t", "v");
        b.function("f", FnSig::new(vec![Ty::Int], Ty::Int), build);
        let mut m = b.finish();
        verify_module(&m, &NoAmbientTypes).expect("pre-opt verifies");
        let stats = optimize_module(&mut m);
        verify_module(&m, &NoAmbientTypes).expect("post-opt verifies");
        (m, stats)
    }

    #[test]
    fn folds_integer_constants() {
        let (m, stats) = optimize_fn(|f| {
            f.emit(Instr::PushInt(2));
            f.emit(Instr::PushInt(3));
            f.emit(Instr::Mul);
            f.emit(Instr::PushInt(4));
            f.emit(Instr::Add);
            f.emit(Instr::Ret);
        });
        let code = &m.function("f").unwrap().code;
        assert_eq!(code, &vec![Instr::PushInt(10), Instr::Ret], "{stats:?}");
        assert!(stats.folds >= 2);
    }

    #[test]
    fn folds_string_operations_and_interns() {
        let mut b = ModuleBuilder::new("t", "v");
        let a = b.string("ab");
        let c = b.string("cd");
        b.function("f", FnSig::new(vec![], Ty::Int), move |f| {
            f.emit(Instr::PushStr(a));
            f.emit(Instr::PushStr(c));
            f.emit(Instr::Concat);
            f.emit(Instr::StrLen);
            f.emit(Instr::Ret);
        });
        let mut m = b.finish();
        optimize_module(&mut m);
        assert_eq!(
            m.function("f").unwrap().code,
            vec![Instr::PushInt(4), Instr::Ret]
        );
    }

    #[test]
    fn threads_jump_chains() {
        let (m, stats) = optimize_fn(|f| {
            f.emit(Instr::LoadLocal(0)); // 0
            f.emit(Instr::PushInt(0)); // 1
            f.emit(Instr::Gt); // 2
            f.emit(Instr::JumpIfFalse(6)); // 3 -> chains to 8
            f.emit(Instr::PushInt(1)); // 4
            f.emit(Instr::Ret); // 5
            f.emit(Instr::Jump(7)); // 6
            f.emit(Instr::Jump(8)); // 7
            f.emit(Instr::PushInt(2)); // 8
            f.emit(Instr::Ret); // 9
        });
        assert!(stats.threads >= 1, "{stats:?}");
        // The chain jumps become unreachable after threading and are
        // dropped.
        let code = &m.function("f").unwrap().code;
        assert!(
            !code.iter().any(|i| matches!(i, Instr::Jump(_))),
            "{code:?}"
        );
    }

    #[test]
    fn removes_unreachable_code() {
        let (m, stats) = optimize_fn(|f| {
            f.emit(Instr::LoadLocal(0)); // 0
            f.emit(Instr::Ret); // 1
            f.emit(Instr::PushInt(42)); // 2 dead
            f.emit(Instr::Ret); // 3 dead
        });
        assert_eq!(m.function("f").unwrap().code.len(), 2, "{stats:?}");
        assert_eq!(stats.removed, 2);
    }

    #[test]
    fn cancels_push_pop_pairs() {
        let (m, _) = optimize_fn(|f| {
            f.emit(Instr::PushInt(9));
            f.emit(Instr::Pop);
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::Ret);
        });
        assert_eq!(
            m.function("f").unwrap().code,
            vec![Instr::LoadLocal(0), Instr::Ret]
        );
    }

    #[test]
    fn constant_branches_become_unconditional() {
        let (m, _) = optimize_fn(|f| {
            f.emit(Instr::PushBool(true)); // 0
            f.emit(Instr::JumpIfFalse(4)); // 1: never taken
            f.emit(Instr::LoadLocal(0)); // 2
            f.emit(Instr::Ret); // 3
            f.emit(Instr::PushInt(0)); // 4 dead after fold
            f.emit(Instr::Ret); // 5
        });
        assert_eq!(
            m.function("f").unwrap().code,
            vec![Instr::LoadLocal(0), Instr::Ret]
        );
    }

    #[test]
    fn preserves_intentional_infinite_loops() {
        // `while (true) {}`-style self jump must survive (jump threading
        // detects the cycle).
        let mut b = ModuleBuilder::new("t", "v");
        b.function("spin", FnSig::new(vec![], Ty::Unit), |f| {
            f.emit(Instr::Jump(0));
        });
        let mut m = b.finish();
        optimize_module(&mut m);
        assert_eq!(m.function("spin").unwrap().code, vec![Instr::Jump(0)]);
    }

    #[test]
    fn shrink_percent_reports() {
        let s = OptStats {
            before: 100,
            after: 80,
            ..OptStats::default()
        };
        assert!((s.shrink_percent() - 20.0).abs() < 1e-9);
        assert_eq!(OptStats::default().shrink_percent(), 0.0);
    }
}
