//! # tal — typed, relinkable bytecode with a verifier
//!
//! This crate is the reproduction's stand-in for *Typed Assembly Language*
//! (TAL), the verifiable native code format of "Dynamic Software Updating"
//! (PLDI 2001). It provides:
//!
//! * a small type language ([`Ty`], [`TypeDef`], [`FnSig`]) with nominal,
//!   versionable record types;
//! * a stack-machine instruction set ([`Instr`]) in which every
//!   inter-procedural reference is *symbolic*, so the linker can bind it
//!   either directly (static executables) or through a mutable
//!   indirection-table slot (updateable programs);
//! * relinkable [`Module`]s carrying code, types, globals and a symbol
//!   table, plus size accounting for the paper's code-size experiment;
//! * a dataflow [verifier](verify) that type-checks object code before it is
//!   linked — the property that makes *dynamic patches* safe to apply to a
//!   running program.
//!
//! Rust substitution note: real TAL is verified x86; Rust's unstable ABI
//! makes verified native patches impractical, so this typed bytecode keeps
//! the essential, measurable property (machine-checked patches, symbolic
//! linking) on a portable substrate.
//!
//! ## Example
//!
//! ```
//! use tal::{ModuleBuilder, FnSig, Ty, Instr, verify_module, NoAmbientTypes};
//!
//! let mut b = ModuleBuilder::new("demo", "v1");
//! b.function("double", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
//!     f.emit(Instr::LoadLocal(0));
//!     f.emit(Instr::PushInt(2));
//!     f.emit(Instr::Mul);
//!     f.emit(Instr::Ret);
//! });
//! let module = b.finish();
//! verify_module(&module, &NoAmbientTypes)?;
//! # Ok::<(), tal::VerifyError>(())
//! ```

pub mod builder;
pub mod instr;
pub mod module;
pub mod opt;
pub mod text;
pub mod types;
pub mod verify;

pub use builder::{FunctionBuilder, Label, ModuleBuilder};
pub use instr::{Instr, StrId, SymId, TypeRefId};
pub use module::{Function, GlobalDef, Module, SizeReport, Symbol, SymbolKind};
pub use types::{Field, FnSig, Ty, TypeDef};
pub use verify::{verify_function, verify_module, NoAmbientTypes, TypeProvider, VerifyError};
