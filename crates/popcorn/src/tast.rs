//! The typed AST produced by the [type checker](crate::typeck).
//!
//! Every expression carries its semantic type ([`tal::Ty`]); overloads
//! (`+`, `==`, `len`) are resolved; local variables are numbered to flat
//! slot indices; struct fields are resolved to indices. Code generation is
//! a mechanical walk over this tree.

use tal::{FnSig, Ty, TypeDef};

/// A fully checked compilation unit.
#[derive(Debug, Clone)]
pub struct TProgram {
    /// Struct definitions *local to this unit* (ambient ones are imports).
    pub structs: Vec<TypeDef>,
    /// Global definitions local to this unit.
    pub globals: Vec<TGlobal>,
    /// Function definitions.
    pub functions: Vec<TFun>,
    /// Host functions declared via `extern` (name, signature).
    pub hosts: Vec<(String, FnSig)>,
}

/// A checked global definition.
#[derive(Debug, Clone)]
pub struct TGlobal {
    /// Global name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Checked initialiser.
    pub init: TExpr,
}

/// A checked function definition.
#[derive(Debug, Clone)]
pub struct TFun {
    /// Function name.
    pub name: String,
    /// Signature.
    pub sig: FnSig,
    /// All local slot types (parameters first).
    pub locals: Vec<Ty>,
    /// Checked body.
    pub body: Vec<TStmt>,
}

/// A checked statement.
#[derive(Debug, Clone)]
pub struct TStmt {
    /// Source line (diagnostics).
    pub line: u32,
    /// Payload.
    pub kind: TStmtKind,
}

/// Checked statement forms.
#[derive(Debug, Clone)]
pub enum TStmtKind {
    /// Store into a local slot (covers both `var` and assignment).
    StoreLocal(u16, TExpr),
    /// Store into a global.
    StoreGlobal(String, TExpr),
    /// Store into a record field: object, struct name, field index, value.
    StoreField(TExpr, String, u16, TExpr),
    /// Store into an array element: array, index, value.
    StoreIndex(TExpr, TExpr, TExpr),
    /// Conditional.
    If(TExpr, Vec<TStmt>, Vec<TStmt>),
    /// Loop.
    While(TExpr, Vec<TStmt>),
    /// Return a value (unit returns carry a unit literal).
    Return(TExpr),
    /// Dynamic update point.
    Update,
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// Expression evaluated for effect; its value is discarded.
    Expr(TExpr),
}

/// A checked expression with its type.
#[derive(Debug, Clone)]
pub struct TExpr {
    /// Semantic type.
    pub ty: Ty,
    /// Payload.
    pub kind: TExprKind,
}

impl TExpr {
    /// The unit literal.
    pub fn unit() -> TExpr {
        TExpr {
            ty: Ty::Unit,
            kind: TExprKind::Unit,
        }
    }
}

/// Resolved integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntBin {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Resolved builtin operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `len(s)` on a string.
    LenStr,
    /// `len(a)` on an array.
    LenArray,
    /// `substr(s, start, len)`.
    Substr,
    /// `find(s, needle)`.
    Find,
    /// `char_at(s, i)`.
    CharAt,
    /// `itoa(n)`.
    Itoa,
    /// `atoi(s)`.
    Atoi,
    /// `push(a, v)`.
    Push,
}

/// Checked expression forms.
#[derive(Debug, Clone)]
pub enum TExprKind {
    /// Unit literal (synthesised).
    Unit,
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null` at a known named type.
    Null(String),
    /// Local slot read.
    Local(u16),
    /// Global read.
    Global(String),
    /// Integer negation.
    Neg(Box<TExpr>),
    /// Boolean negation.
    Not(Box<TExpr>),
    /// Integer binary operation.
    IntBin(IntBin, Box<TExpr>, Box<TExpr>),
    /// String concatenation.
    Concat(Box<TExpr>, Box<TExpr>),
    /// String (in)equality; `true` negates.
    StrEq(Box<TExpr>, Box<TExpr>, bool),
    /// Short-circuit `&&`/`||`; `true` means `&&`.
    ShortCircuit(bool, Box<TExpr>, Box<TExpr>),
    /// Direct call to a guest function.
    CallFn(String, Vec<TExpr>),
    /// Call to a host function.
    CallHost(String, Vec<TExpr>),
    /// Indirect call through a function value.
    CallIndirect(Box<TExpr>, Vec<TExpr>),
    /// Builtin operation.
    Builtin(Builtin, Vec<TExpr>),
    /// Field read: object, struct name, field index.
    Field(Box<TExpr>, String, u16),
    /// Array element read.
    Index(Box<TExpr>, Box<TExpr>),
    /// Record construction; fields in declaration order.
    Record(String, Vec<TExpr>),
    /// Array literal with element type.
    ArrayLit(Ty, Vec<TExpr>),
    /// Empty array of element type.
    NewArray(Ty),
    /// Function value `&name`.
    FnRef(String),
    /// Null test; `true` negates (`!= null`).
    IsNull(Box<TExpr>, String, bool),
}
