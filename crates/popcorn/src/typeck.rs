//! The Popcorn type checker.
//!
//! Checks a parsed [`Program`] against an ambient [`Interface`] and lowers
//! it to the typed AST ([`TProgram`]). Checking is *bidirectional-lite*:
//! expressions are inferred bottom-up, except in positions with a known
//! expected type (initialisers, assignments, arguments, returns, record
//! fields), where `null` literals and empty-ish constructs become typeable.

use std::collections::{BTreeMap, HashMap};

use tal::{Field, FnSig, Ty, TypeDef};

use crate::ast::*;
use crate::error::CompileError;
use crate::iface::Interface;
use crate::tast::*;

/// Names reserved for builtin operations.
pub const BUILTINS: &[&str] = &["len", "substr", "find", "char_at", "itoa", "atoi", "push"];

/// Checks `prog` against `iface`, producing a typed program.
///
/// # Errors
///
/// Returns the first [`CompileError`] found (duplicate definitions,
/// unresolved names, type mismatches, missing returns, misplaced
/// `break`/`continue`, ...).
pub fn check(prog: &Program, iface: &Interface) -> Result<TProgram, CompileError> {
    let mut cx = Cx::build(prog, iface)?;
    let mut out = TProgram {
        structs: cx.local_structs.values().cloned().collect(),
        globals: Vec::new(),
        functions: Vec::new(),
        hosts: prog
            .externs()
            .map(|e| {
                Ok((
                    e.name.clone(),
                    FnSig::new(
                        e.params
                            .iter()
                            .map(|t| cx.lower_ty(t, e.line))
                            .collect::<Result<_, _>>()?,
                        cx.lower_ty(&e.ret, e.line)?,
                    ),
                ))
            })
            .collect::<Result<Vec<_>, CompileError>>()?,
    };
    // Keep `structs` in source order rather than map order.
    out.structs = prog
        .structs()
        .map(|s| cx.local_structs[&s.name].clone())
        .collect();

    for g in prog.globals() {
        let ty = cx.lower_ty(&g.ty, g.line)?;
        let mut fcx = FunCx::new(&cx, Ty::Unit);
        let init = fcx.check_expr(&g.init, Some(&ty))?;
        out.globals.push(TGlobal {
            name: g.name.clone(),
            ty,
            init,
        });
    }

    for f in prog.functions() {
        out.functions.push(check_fun(&cx, f)?);
    }
    // `cx` borrows nothing mutable from here on; silence the lint.
    let _ = &mut cx;
    Ok(out)
}

fn check_fun(cx: &Cx, f: &FunDef) -> Result<TFun, CompileError> {
    let sig = cx.sig_of(f)?;
    let mut fcx = FunCx::new(cx, sig.ret.clone());
    fcx.push_scope();
    for ((name, _), ty) in f.params.iter().zip(&sig.params) {
        fcx.declare(name, ty.clone(), f.line)?;
    }
    let body = fcx.check_block(&f.body)?;
    fcx.pop_scope();
    if sig.ret != Ty::Unit && !always_returns(&body) {
        return Err(CompileError::ty(
            f.line,
            format!("function `{}` does not return on all paths", f.name),
        ));
    }
    Ok(TFun {
        name: f.name.clone(),
        sig,
        locals: fcx.locals,
        body,
    })
}

/// Conservative all-paths-return analysis.
fn always_returns(body: &[TStmt]) -> bool {
    body.iter().any(|s| match &s.kind {
        TStmtKind::Return(_) => true,
        TStmtKind::If(_, t, e) => always_returns(t) && always_returns(e),
        _ => false,
    })
}

/// Compilation-unit-level context: all resolvable items.
struct Cx<'a> {
    iface: &'a Interface,
    local_structs: BTreeMap<String, TypeDef>,
    local_globals: BTreeMap<String, Ty>,
    local_funs: BTreeMap<String, FnSig>,
    hosts: BTreeMap<String, FnSig>,
}

impl<'a> Cx<'a> {
    fn build(prog: &Program, iface: &'a Interface) -> Result<Cx<'a>, CompileError> {
        let mut cx = Cx {
            iface,
            local_structs: BTreeMap::new(),
            local_globals: BTreeMap::new(),
            local_funs: BTreeMap::new(),
            hosts: iface.hosts.clone(),
        };
        // Pass 1: struct names (so struct fields may reference each other).
        for s in prog.structs() {
            if cx.local_structs.contains_key(&s.name) {
                return Err(CompileError::ty(
                    s.line,
                    format!("duplicate struct `{}`", s.name),
                ));
            }
            cx.local_structs
                .insert(s.name.clone(), TypeDef::new(s.name.clone(), vec![]));
        }
        // Pass 2: struct bodies.
        for s in prog.structs() {
            let fields = s
                .fields
                .iter()
                .map(|(n, t)| Ok(Field::new(n.clone(), cx.lower_ty(t, s.line)?)))
                .collect::<Result<Vec<_>, CompileError>>()?;
            let mut seen = std::collections::HashSet::new();
            for f in &fields {
                if !seen.insert(&f.name) {
                    return Err(CompileError::ty(
                        s.line,
                        format!("duplicate field `{}` in struct `{}`", f.name, s.name),
                    ));
                }
            }
            cx.local_structs.get_mut(&s.name).expect("pass 1").fields = fields;
        }
        for g in prog.globals() {
            if cx.local_globals.contains_key(&g.name) || cx.iface.globals.contains_key(&g.name) {
                return Err(CompileError::ty(
                    g.line,
                    format!("duplicate global `{}`", g.name),
                ));
            }
            let ty = cx.lower_ty(&g.ty, g.line)?;
            cx.local_globals.insert(g.name.clone(), ty);
        }
        for e in prog.externs() {
            let sig = FnSig::new(
                e.params
                    .iter()
                    .map(|t| cx.lower_ty(t, e.line))
                    .collect::<Result<_, _>>()?,
                cx.lower_ty(&e.ret, e.line)?,
            );
            if let Some(existing) = cx.hosts.get(&e.name) {
                if existing != &sig {
                    return Err(CompileError::ty(
                        e.line,
                        format!("extern `{}` redeclared with a different signature", e.name),
                    ));
                }
            }
            cx.hosts.insert(e.name.clone(), sig);
        }
        for f in prog.functions() {
            if BUILTINS.contains(&f.name.as_str()) {
                return Err(CompileError::ty(
                    f.line,
                    format!("`{}` is a reserved builtin name", f.name),
                ));
            }
            if cx.local_funs.contains_key(&f.name) {
                return Err(CompileError::ty(
                    f.line,
                    format!("duplicate function `{}`", f.name),
                ));
            }
            let sig = cx.sig_of(f)?;
            cx.local_funs.insert(f.name.clone(), sig);
        }
        Ok(cx)
    }

    fn sig_of(&self, f: &FunDef) -> Result<FnSig, CompileError> {
        Ok(FnSig::new(
            f.params
                .iter()
                .map(|(_, t)| self.lower_ty(t, f.line))
                .collect::<Result<_, _>>()?,
            self.lower_ty(&f.ret, f.line)?,
        ))
    }

    fn lower_ty(&self, t: &TypeAst, line: u32) -> Result<Ty, CompileError> {
        Ok(match t {
            TypeAst::Int => Ty::Int,
            TypeAst::Bool => Ty::Bool,
            TypeAst::Str => Ty::Str,
            TypeAst::Unit => Ty::Unit,
            TypeAst::Array(e) => Ty::array(self.lower_ty(e, line)?),
            TypeAst::Fn(ps, r) => Ty::func(
                ps.iter()
                    .map(|p| self.lower_ty(p, line))
                    .collect::<Result<_, _>>()?,
                self.lower_ty(r, line)?,
            ),
            TypeAst::Named(n) => {
                if self.local_structs.contains_key(n) || self.iface.structs.contains_key(n) {
                    Ty::named(n.clone())
                } else {
                    return Err(CompileError::ty(line, format!("unknown type `{n}`")));
                }
            }
        })
    }

    /// Looks up a struct definition, local definitions shadowing ambient
    /// ones (a patch may redefine a struct — the new version of the type).
    fn struct_def(&self, name: &str) -> Option<&TypeDef> {
        self.local_structs
            .get(name)
            .or_else(|| self.iface.structs.get(name))
    }

    fn global_ty(&self, name: &str) -> Option<&Ty> {
        self.local_globals
            .get(name)
            .or_else(|| self.iface.globals.get(name))
    }

    fn fun_sig(&self, name: &str) -> Option<&FnSig> {
        self.local_funs
            .get(name)
            .or_else(|| self.iface.functions.get(name))
    }
}

/// Per-function context: scoped locals and loop depth.
struct FunCx<'a, 'b> {
    cx: &'a Cx<'b>,
    ret: Ty,
    locals: Vec<Ty>,
    scopes: Vec<HashMap<String, u16>>,
    loop_depth: usize,
}

impl<'a, 'b> FunCx<'a, 'b> {
    fn new(cx: &'a Cx<'b>, ret: Ty) -> FunCx<'a, 'b> {
        FunCx {
            cx,
            ret,
            locals: Vec::new(),
            scopes: Vec::new(),
            loop_depth: 0,
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, ty: Ty, line: u32) -> Result<u16, CompileError> {
        if self.locals.len() >= u16::MAX as usize {
            return Err(CompileError::ty(line, "too many locals"));
        }
        let slot = self.locals.len() as u16;
        self.locals.push(ty);
        let scope = self.scopes.last_mut().expect("inside a scope");
        if scope.insert(name.to_string(), slot).is_some() {
            return Err(CompileError::ty(
                line,
                format!("`{name}` already defined in this scope"),
            ));
        }
        Ok(slot)
    }

    fn lookup_local(&self, name: &str) -> Option<u16> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    // -------------------------------------------------------- statements

    fn check_block(&mut self, stmts: &[Stmt]) -> Result<Vec<TStmt>, CompileError> {
        self.push_scope();
        let out = stmts.iter().map(|s| self.check_stmt(s)).collect();
        self.pop_scope();
        out
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<TStmt, CompileError> {
        let line = s.line;
        let kind = match &s.kind {
            StmtKind::Var { name, ty, init } => {
                let ty = self.cx.lower_ty(ty, line)?;
                let init = self.check_expr(init, Some(&ty))?;
                let slot = self.declare(name, ty, line)?;
                TStmtKind::StoreLocal(slot, init)
            }
            StmtKind::Assign { target, value } => self.check_assign(target, value, line)?,
            StmtKind::If { cond, then, els } => {
                let cond = self.expect_ty(cond, &Ty::Bool)?;
                TStmtKind::If(cond, self.check_block(then)?, self.check_block(els)?)
            }
            StmtKind::While { cond, body } => {
                let cond = self.expect_ty(cond, &Ty::Bool)?;
                self.loop_depth += 1;
                let body = self.check_block(body)?;
                self.loop_depth -= 1;
                TStmtKind::While(cond, body)
            }
            StmtKind::Return(value) => {
                let ret = self.ret.clone();
                match value {
                    Some(e) => TStmtKind::Return(self.check_expr(e, Some(&ret))?),
                    None if ret == Ty::Unit => TStmtKind::Return(TExpr::unit()),
                    None => {
                        return Err(CompileError::ty(
                            line,
                            format!("`return;` in a function returning {ret}"),
                        ))
                    }
                }
            }
            StmtKind::Update => TStmtKind::Update,
            StmtKind::Break => {
                if self.loop_depth == 0 {
                    return Err(CompileError::ty(line, "`break` outside a loop"));
                }
                TStmtKind::Break
            }
            StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(CompileError::ty(line, "`continue` outside a loop"));
                }
                TStmtKind::Continue
            }
            StmtKind::Expr(e) => TStmtKind::Expr(self.check_expr(e, None)?),
        };
        Ok(TStmt { line, kind })
    }

    fn check_assign(
        &mut self,
        target: &Expr,
        value: &Expr,
        line: u32,
    ) -> Result<TStmtKind, CompileError> {
        match &target.kind {
            ExprKind::Var(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    let ty = self.locals[slot as usize].clone();
                    let v = self.check_expr(value, Some(&ty))?;
                    Ok(TStmtKind::StoreLocal(slot, v))
                } else if let Some(ty) = self.cx.global_ty(name).cloned() {
                    let v = self.check_expr(value, Some(&ty))?;
                    Ok(TStmtKind::StoreGlobal(name.clone(), v))
                } else {
                    Err(CompileError::ty(line, format!("unknown variable `{name}`")))
                }
            }
            ExprKind::Field(obj, field) => {
                let obj = self.check_expr(obj, None)?;
                let (tyname, idx, fty) = self.resolve_field(&obj.ty, field, line)?;
                let v = self.check_expr(value, Some(&fty))?;
                Ok(TStmtKind::StoreField(obj, tyname, idx, v))
            }
            ExprKind::Index(arr, idx) => {
                let arr = self.check_expr(arr, None)?;
                let Ty::Array(elem) = arr.ty.clone() else {
                    return Err(CompileError::ty(line, format!("cannot index {}", arr.ty)));
                };
                let idx = self.expect_ty(idx, &Ty::Int)?;
                let v = self.check_expr(value, Some(&elem))?;
                Ok(TStmtKind::StoreIndex(arr, idx, v))
            }
            _ => Err(CompileError::ty(line, "invalid assignment target")),
        }
    }

    fn resolve_field(
        &self,
        obj_ty: &Ty,
        field: &str,
        line: u32,
    ) -> Result<(String, u16, Ty), CompileError> {
        let Ty::Named(name) = obj_ty else {
            return Err(CompileError::ty(line, format!("{obj_ty} has no fields")));
        };
        let def = self
            .cx
            .struct_def(name)
            .ok_or_else(|| CompileError::ty(line, format!("unknown type `{name}`")))?;
        let idx = def
            .field_index(field)
            .ok_or_else(|| CompileError::ty(line, format!("`{name}` has no field `{field}`")))?;
        Ok((name.clone(), idx as u16, def.fields[idx].ty.clone()))
    }

    // ------------------------------------------------------- expressions

    fn expect_ty(&mut self, e: &Expr, want: &Ty) -> Result<TExpr, CompileError> {
        self.check_expr(e, Some(want))
    }

    /// Checks `e`; `expected`, when present, guides `null` and array
    /// literals and is enforced on the result.
    fn check_expr(&mut self, e: &Expr, expected: Option<&Ty>) -> Result<TExpr, CompileError> {
        let te = self.infer(e, expected)?;
        if let Some(want) = expected {
            if &te.ty != want {
                return Err(CompileError::ty(
                    e.line,
                    format!("expected {want}, found {}", te.ty),
                ));
            }
        }
        Ok(te)
    }

    #[allow(clippy::too_many_lines)]
    fn infer(&mut self, e: &Expr, expected: Option<&Ty>) -> Result<TExpr, CompileError> {
        let line = e.line;
        Ok(match &e.kind {
            ExprKind::Int(n) => TExpr {
                ty: Ty::Int,
                kind: TExprKind::Int(*n),
            },
            ExprKind::Str(s) => TExpr {
                ty: Ty::Str,
                kind: TExprKind::Str(s.clone()),
            },
            ExprKind::Bool(b) => TExpr {
                ty: Ty::Bool,
                kind: TExprKind::Bool(*b),
            },
            ExprKind::Null => match expected {
                Some(Ty::Named(n)) => TExpr {
                    ty: Ty::named(n.clone()),
                    kind: TExprKind::Null(n.clone()),
                },
                Some(other) => {
                    return Err(CompileError::ty(line, format!("`null` is not a {other}")))
                }
                None => {
                    return Err(CompileError::ty(
                        line,
                        "cannot infer the type of `null` here",
                    ))
                }
            },
            ExprKind::Var(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    TExpr {
                        ty: self.locals[slot as usize].clone(),
                        kind: TExprKind::Local(slot),
                    }
                } else if let Some(ty) = self.cx.global_ty(name) {
                    TExpr {
                        ty: ty.clone(),
                        kind: TExprKind::Global(name.clone()),
                    }
                } else {
                    return Err(CompileError::ty(line, format!("unknown variable `{name}`")));
                }
            }
            ExprKind::Unary(UnOp::Neg, inner) => {
                let inner = self.expect_ty(inner, &Ty::Int)?;
                TExpr {
                    ty: Ty::Int,
                    kind: TExprKind::Neg(Box::new(inner)),
                }
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                let inner = self.expect_ty(inner, &Ty::Bool)?;
                TExpr {
                    ty: Ty::Bool,
                    kind: TExprKind::Not(Box::new(inner)),
                }
            }
            ExprKind::Binary(op, lhs, rhs) => self.infer_binary(*op, lhs, rhs, line)?,
            ExprKind::Call(callee, args) => self.infer_call(callee, args, line)?,
            ExprKind::Field(obj, field) => {
                let obj = self.check_expr(obj, None)?;
                let (tyname, idx, fty) = self.resolve_field(&obj.ty, field, line)?;
                TExpr {
                    ty: fty,
                    kind: TExprKind::Field(Box::new(obj), tyname, idx),
                }
            }
            ExprKind::Index(arr, idx) => {
                let arr = self.check_expr(arr, None)?;
                let Ty::Array(elem) = arr.ty.clone() else {
                    return Err(CompileError::ty(line, format!("cannot index {}", arr.ty)));
                };
                let idx = self.expect_ty(idx, &Ty::Int)?;
                TExpr {
                    ty: *elem,
                    kind: TExprKind::Index(Box::new(arr), Box::new(idx)),
                }
            }
            ExprKind::Record(name, fields) => {
                let def = self
                    .cx
                    .struct_def(name)
                    .ok_or_else(|| CompileError::ty(line, format!("unknown type `{name}`")))?
                    .clone();
                let mut provided: BTreeMap<&str, &Expr> = BTreeMap::new();
                for (fname, fe) in fields {
                    if provided.insert(fname, fe).is_some() {
                        return Err(CompileError::ty(
                            line,
                            format!("field `{fname}` given twice"),
                        ));
                    }
                }
                for (fname, _) in fields {
                    if def.field_index(fname).is_none() {
                        return Err(CompileError::ty(
                            line,
                            format!("`{name}` has no field `{fname}`"),
                        ));
                    }
                }
                let mut ordered = Vec::with_capacity(def.fields.len());
                for f in &def.fields {
                    let fe = provided.get(f.name.as_str()).ok_or_else(|| {
                        CompileError::ty(line, format!("missing field `{}` of `{name}`", f.name))
                    })?;
                    ordered.push(self.check_expr(fe, Some(&f.ty))?);
                }
                TExpr {
                    ty: Ty::named(name.clone()),
                    kind: TExprKind::Record(name.clone(), ordered),
                }
            }
            ExprKind::ArrayLit(elems) => {
                let elem_ty = match expected {
                    Some(Ty::Array(e)) => Some((**e).clone()),
                    _ => None,
                };
                let first = self.check_expr(&elems[0], elem_ty.as_ref())?;
                let elem_ty = elem_ty.unwrap_or_else(|| first.ty.clone());
                let mut out = vec![first];
                for el in &elems[1..] {
                    out.push(self.check_expr(el, Some(&elem_ty))?);
                }
                TExpr {
                    ty: Ty::array(elem_ty.clone()),
                    kind: TExprKind::ArrayLit(elem_ty, out),
                }
            }
            ExprKind::NewArray(t) => {
                let elem = self.cx.lower_ty(t, line)?;
                TExpr {
                    ty: Ty::array(elem.clone()),
                    kind: TExprKind::NewArray(elem),
                }
            }
            ExprKind::FnRef(name) => {
                let sig = self
                    .cx
                    .fun_sig(name)
                    .ok_or_else(|| CompileError::ty(line, format!("unknown function `{name}`")))?
                    .clone();
                TExpr {
                    ty: Ty::Fn(Box::new(sig)),
                    kind: TExprKind::FnRef(name.clone()),
                }
            }
        })
    }

    fn infer_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<TExpr, CompileError> {
        use BinOp::*;
        match op {
            And | Or => {
                let l = self.expect_ty(lhs, &Ty::Bool)?;
                let r = self.expect_ty(rhs, &Ty::Bool)?;
                Ok(TExpr {
                    ty: Ty::Bool,
                    kind: TExprKind::ShortCircuit(op == And, Box::new(l), Box::new(r)),
                })
            }
            Sub | Mul | Div | Rem => {
                let l = self.expect_ty(lhs, &Ty::Int)?;
                let r = self.expect_ty(rhs, &Ty::Int)?;
                let ib = match op {
                    Sub => IntBin::Sub,
                    Mul => IntBin::Mul,
                    Div => IntBin::Div,
                    _ => IntBin::Rem,
                };
                Ok(TExpr {
                    ty: Ty::Int,
                    kind: TExprKind::IntBin(ib, Box::new(l), Box::new(r)),
                })
            }
            Lt | Le | Gt | Ge => {
                let l = self.expect_ty(lhs, &Ty::Int)?;
                let r = self.expect_ty(rhs, &Ty::Int)?;
                let ib = match op {
                    Lt => IntBin::Lt,
                    Le => IntBin::Le,
                    Gt => IntBin::Gt,
                    _ => IntBin::Ge,
                };
                Ok(TExpr {
                    ty: Ty::Bool,
                    kind: TExprKind::IntBin(ib, Box::new(l), Box::new(r)),
                })
            }
            Add => {
                let l = self.check_expr(lhs, None)?;
                match l.ty {
                    Ty::Int => {
                        let r = self.expect_ty(rhs, &Ty::Int)?;
                        Ok(TExpr {
                            ty: Ty::Int,
                            kind: TExprKind::IntBin(IntBin::Add, Box::new(l), Box::new(r)),
                        })
                    }
                    Ty::Str => {
                        let r = self.expect_ty(rhs, &Ty::Str)?;
                        Ok(TExpr {
                            ty: Ty::Str,
                            kind: TExprKind::Concat(Box::new(l), Box::new(r)),
                        })
                    }
                    other => Err(CompileError::ty(
                        line,
                        format!("`+` is not defined on {other}"),
                    )),
                }
            }
            Eq | Ne => {
                let negate = op == Ne;
                // `x == null` / `null == x` are null tests.
                let (null_side, other) = match (&lhs.kind, &rhs.kind) {
                    (ExprKind::Null, _) => (true, rhs),
                    (_, ExprKind::Null) => (true, lhs),
                    _ => (false, lhs),
                };
                if null_side {
                    let o = self.check_expr(other, None)?;
                    let Ty::Named(n) = o.ty.clone() else {
                        return Err(CompileError::ty(
                            line,
                            format!("cannot compare {} with null", o.ty),
                        ));
                    };
                    return Ok(TExpr {
                        ty: Ty::Bool,
                        kind: TExprKind::IsNull(Box::new(o), n, negate),
                    });
                }
                let l = self.check_expr(lhs, None)?;
                match l.ty {
                    Ty::Int => {
                        let r = self.expect_ty(rhs, &Ty::Int)?;
                        let ib = if negate { IntBin::Ne } else { IntBin::Eq };
                        Ok(TExpr {
                            ty: Ty::Bool,
                            kind: TExprKind::IntBin(ib, Box::new(l), Box::new(r)),
                        })
                    }
                    Ty::Str => {
                        let r = self.expect_ty(rhs, &Ty::Str)?;
                        Ok(TExpr {
                            ty: Ty::Bool,
                            kind: TExprKind::StrEq(Box::new(l), Box::new(r), negate),
                        })
                    }
                    other => Err(CompileError::ty(
                        line,
                        format!("`{op}` is not defined on {other}"),
                    )),
                }
            }
        }
    }

    fn infer_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        line: u32,
    ) -> Result<TExpr, CompileError> {
        // A plain name resolves, in order: local/global of fn type
        // (indirect), builtin, guest function, host function.
        if let ExprKind::Var(name) = &callee.kind {
            let is_value = self.lookup_local(name).is_some() || self.cx.global_ty(name).is_some();
            if !is_value {
                if BUILTINS.contains(&name.as_str()) {
                    return self.infer_builtin(name, args, line);
                }
                if let Some(sig) = self.cx.fun_sig(name).cloned() {
                    let targs = self.check_args(&sig, args, name, line)?;
                    return Ok(TExpr {
                        ty: sig.ret,
                        kind: TExprKind::CallFn(name.clone(), targs),
                    });
                }
                if let Some(sig) = self.cx.hosts.get(name).cloned() {
                    let targs = self.check_args(&sig, args, name, line)?;
                    return Ok(TExpr {
                        ty: sig.ret,
                        kind: TExprKind::CallHost(name.clone(), targs),
                    });
                }
                return Err(CompileError::ty(line, format!("unknown function `{name}`")));
            }
        }
        // Otherwise: an indirect call through a function value.
        let f = self.check_expr(callee, None)?;
        let Ty::Fn(sig) = f.ty.clone() else {
            return Err(CompileError::ty(line, format!("{} is not callable", f.ty)));
        };
        let targs = self.check_args(&sig, args, "<indirect>", line)?;
        Ok(TExpr {
            ty: sig.ret.clone(),
            kind: TExprKind::CallIndirect(Box::new(f), targs),
        })
    }

    fn check_args(
        &mut self,
        sig: &FnSig,
        args: &[Expr],
        name: &str,
        line: u32,
    ) -> Result<Vec<TExpr>, CompileError> {
        if sig.params.len() != args.len() {
            return Err(CompileError::ty(
                line,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        args.iter()
            .zip(&sig.params)
            .map(|(a, p)| self.check_expr(a, Some(p)))
            .collect()
    }

    fn infer_builtin(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<TExpr, CompileError> {
        let argc = |n: usize| -> Result<(), CompileError> {
            if args.len() != n {
                Err(CompileError::ty(
                    line,
                    format!("`{name}` expects {n} arguments, got {}", args.len()),
                ))
            } else {
                Ok(())
            }
        };
        match name {
            "len" => {
                argc(1)?;
                let a = self.check_expr(&args[0], None)?;
                let b = match &a.ty {
                    Ty::Str => Builtin::LenStr,
                    Ty::Array(_) => Builtin::LenArray,
                    other => return Err(CompileError::ty(line, format!("`len` on {other}"))),
                };
                Ok(TExpr {
                    ty: Ty::Int,
                    kind: TExprKind::Builtin(b, vec![a]),
                })
            }
            "substr" => {
                argc(3)?;
                let s = self.expect_ty(&args[0], &Ty::Str)?;
                let i = self.expect_ty(&args[1], &Ty::Int)?;
                let n = self.expect_ty(&args[2], &Ty::Int)?;
                Ok(TExpr {
                    ty: Ty::Str,
                    kind: TExprKind::Builtin(Builtin::Substr, vec![s, i, n]),
                })
            }
            "find" => {
                argc(2)?;
                let s = self.expect_ty(&args[0], &Ty::Str)?;
                let sub = self.expect_ty(&args[1], &Ty::Str)?;
                Ok(TExpr {
                    ty: Ty::Int,
                    kind: TExprKind::Builtin(Builtin::Find, vec![s, sub]),
                })
            }
            "char_at" => {
                argc(2)?;
                let s = self.expect_ty(&args[0], &Ty::Str)?;
                let i = self.expect_ty(&args[1], &Ty::Int)?;
                Ok(TExpr {
                    ty: Ty::Int,
                    kind: TExprKind::Builtin(Builtin::CharAt, vec![s, i]),
                })
            }
            "itoa" => {
                argc(1)?;
                let n = self.expect_ty(&args[0], &Ty::Int)?;
                Ok(TExpr {
                    ty: Ty::Str,
                    kind: TExprKind::Builtin(Builtin::Itoa, vec![n]),
                })
            }
            "atoi" => {
                argc(1)?;
                let s = self.expect_ty(&args[0], &Ty::Str)?;
                Ok(TExpr {
                    ty: Ty::Int,
                    kind: TExprKind::Builtin(Builtin::Atoi, vec![s]),
                })
            }
            "push" => {
                argc(2)?;
                let a = self.check_expr(&args[0], None)?;
                let Ty::Array(elem) = a.ty.clone() else {
                    return Err(CompileError::ty(line, format!("`push` on {}", a.ty)));
                };
                let v = self.check_expr(&args[1], Some(&elem))?;
                Ok(TExpr {
                    ty: Ty::Unit,
                    kind: TExprKind::Builtin(Builtin::Push, vec![a, v]),
                })
            }
            _ => unreachable!("BUILTINS covers all names"),
        }
    }
}
