//! # popcorn — the guest language of the DSU reproduction
//!
//! Popcorn is the type-safe C dialect in which updateable programs (and
//! their dynamic patches) are written in "Dynamic Software Updating"
//! (PLDI 2001). This crate provides the full pipeline:
//!
//! * [lexer] and [parser] producing an [`ast::Program`];
//! * a [type checker](typeck) that lowers to a typed AST, checking against
//!   an ambient [`Interface`] — empty for whole programs, the running
//!   process's interface for *patch* compilation;
//! * a [code generator](codegen) emitting relinkable [`tal::Module`]s.
//!
//! The language has ints, bools, strings, growable arrays, nominal structs
//! (nullable, as in C), first-class function pointers, and the `update;`
//! statement that marks dynamic-update points.
//!
//! ## Example
//!
//! ```
//! let module = popcorn::compile(
//!     r#"
//!     fun double(x: int): int { return x * 2; }
//!     "#,
//!     "demo", "v1", &popcorn::Interface::new(),
//! )?;
//! tal::verify_module(&module, &tal::NoAmbientTypes)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod error;
pub mod iface;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod tast;
pub mod token;
pub mod typeck;

pub use error::{CompileError, Stage};
pub use iface::Interface;
pub use parser::parse;
pub use typeck::check;

/// Compiles Popcorn source to a relinkable `tal` module.
///
/// `iface` supplies ambient definitions (for patches: the running
/// process's interface); pass [`Interface::new()`] for a self-contained
/// program. The module's symbolic references cover everything resolved
/// through the interface.
///
/// # Errors
///
/// Returns the first lexical, syntactic or type [`CompileError`].
pub fn compile(
    src: &str,
    module_name: &str,
    version: &str,
    iface: &Interface,
) -> Result<tal::Module, CompileError> {
    let prog = parser::parse(src)?;
    let typed = typeck::check(&prog, iface)?;
    Ok(codegen::generate(&typed, module_name, version))
}

/// Like [`compile`], additionally running the `tal` peephole optimiser
/// (constant folding, jump threading, dead-code elimination) over the
/// produced module. Semantics are preserved; the module still goes through
/// full verification wherever it is loaded.
///
/// # Errors
///
/// Returns the first lexical, syntactic or type [`CompileError`].
pub fn compile_opt(
    src: &str,
    module_name: &str,
    version: &str,
    iface: &Interface,
) -> Result<(tal::Module, tal::opt::OptStats), CompileError> {
    let mut m = compile(src, module_name, version, iface)?;
    let stats = tal::opt::optimize_module(&mut m);
    Ok((m, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tal::{FnSig, NoAmbientTypes, Ty, TypeDef};
    use vm::{LinkMode, Process, Value};

    /// Compiles, verifies and loads a program, returning the process.
    fn load(src: &str) -> Process {
        let m = compile(src, "test", "v1", &Interface::new()).expect("compiles");
        tal::verify_module(&m, &NoAmbientTypes).expect("verifies");
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&m).expect("links");
        p
    }

    fn run_int(src: &str, entry: &str, args: Vec<Value>) -> i64 {
        load(src).call(entry, args).expect("runs").as_int()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(
            run_int("fun f(): int { return 2 + 3 * 4 - 6 / 2; }", "f", vec![]),
            11
        );
        assert_eq!(
            run_int("fun f(): int { return (2 + 3) * 4 % 7; }", "f", vec![]),
            6
        );
        assert_eq!(run_int("fun f(): int { return -5 + 1; }", "f", vec![]), -4);
    }

    #[test]
    fn recursion_factorial() {
        let src = r#"
            fun fact(n: int): int {
                if (n <= 1) { return 1; }
                return fact(n - 1) * n;
            }
        "#;
        assert_eq!(run_int(src, "fact", vec![Value::Int(10)]), 3628800);
    }

    #[test]
    fn while_loop_with_break_continue() {
        let src = r#"
            fun f(n: int): int {
                var acc: int = 0;
                var i: int = 0;
                while (true) {
                    i = i + 1;
                    if (i > n) { break; }
                    if (i % 2 == 0) { continue; }
                    acc = acc + i;
                }
                return acc;
            }
        "#;
        // sum of odd numbers <= 10: 1+3+5+7+9 = 25
        assert_eq!(run_int(src, "f", vec![Value::Int(10)]), 25);
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        let src = r#"
            global hits: int = 0;
            fun effect(): bool { hits = hits + 1; return true; }
            fun f(x: bool): int {
                if (x || effect()) { }
                if (!x && effect()) { }
                return hits;
            }
        "#;
        // x = true: `||` short-circuits (0 hits), `&&` lhs false short-circuits.
        assert_eq!(run_int(src, "f", vec![Value::Bool(true)]), 0);
        // x = false: both rhs evaluate.
        assert_eq!(run_int(src, "f", vec![Value::Bool(false)]), 2);
    }

    #[test]
    fn structs_fields_and_null() {
        let src = r#"
            struct point { x: int, y: int }
            fun f(): int {
                var p: point = point { x: 3, y: 4 };
                p.x = p.x + 10;
                var q: point = null;
                if (q == null) { p.y = p.y + 100; }
                if (p != null) { p.y = p.y + 1000; }
                return p.x + p.y;
            }
        "#;
        assert_eq!(run_int(src, "f", vec![]), 13 + 4 + 100 + 1000);
    }

    #[test]
    fn arrays_and_builtins() {
        let src = r#"
            fun f(): int {
                var a: [int] = [10, 20, 30];
                push(a, 40);
                a[0] = a[0] + 1;
                var sum: int = 0;
                var i: int = 0;
                while (i < len(a)) {
                    sum = sum + a[i];
                    i = i + 1;
                }
                return sum;
            }
        "#;
        assert_eq!(run_int(src, "f", vec![]), 11 + 20 + 30 + 40);
    }

    #[test]
    fn string_builtins() {
        let src = r#"
            fun f(req: string): string {
                var sp: int = find(req, " ");
                var path: string = substr(req, sp + 1, len(req) - sp - 1);
                return "path=" + path + " n=" + itoa(atoi(path) + len(path));
            }
        "#;
        let mut p = load(src);
        let out = p.call("f", vec![Value::str("GET 42")]).unwrap();
        assert_eq!(out, Value::str("path=42 n=44"));
    }

    #[test]
    fn function_pointers_dispatch() {
        let src = r#"
            fun inc(x: int): int { return x + 1; }
            fun dec(x: int): int { return x - 1; }
            fun pick(up: bool): fn(int): int {
                if (up) { return &inc; }
                return &dec;
            }
            fun f(up: bool, x: int): int {
                var g: fn(int): int = pick(up);
                return g(x);
            }
        "#;
        let mut p = load(src);
        assert_eq!(
            p.call("f", vec![Value::Bool(true), Value::Int(5)]).unwrap(),
            Value::Int(6)
        );
        assert_eq!(
            p.call("f", vec![Value::Bool(false), Value::Int(5)])
                .unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn globals_with_record_initialisers() {
        let src = r#"
            struct cfg { name: string, port: int }
            global config: cfg = cfg { name: "flashed", port: 8080 };
            fun port(): int { return config.port; }
        "#;
        assert_eq!(run_int(src, "port", vec![]), 8080);
    }

    #[test]
    fn externs_compile_to_host_calls() {
        let src = r#"
            extern fun now_ms(): int;
            fun f(): int { return now_ms() + 1; }
        "#;
        let m = compile(src, "t", "v1", &Interface::new()).unwrap();
        tal::verify_module(&m, &NoAmbientTypes).unwrap();
        let mut p = Process::new(LinkMode::Static);
        p.register_host(
            "now_ms",
            FnSig::new(vec![], Ty::Int),
            Box::new(|_| Ok(Value::Int(41))),
        );
        p.load_module(&m).unwrap();
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(42));
    }

    #[test]
    fn update_points_compile() {
        let src = "fun f(): unit { update; }";
        let m = compile(src, "t", "v1", &Interface::new()).unwrap();
        assert!(m.function("f").unwrap().has_update_point());
    }

    #[test]
    fn patch_compilation_against_an_interface() {
        // A "patch" that replaces `handler` and references an existing
        // global and struct it does not define.
        let iface = Interface::new()
            .with_struct(TypeDef::new("counter", vec![tal::Field::new("n", Ty::Int)]))
            .with_global("state", Ty::named("counter"))
            .with_function("helper", FnSig::new(vec![Ty::Int], Ty::Int));
        let src = r#"
            fun handler(x: int): int {
                state.n = state.n + 1;
                return helper(x) + state.n;
            }
        "#;
        let m = compile(src, "patch", "v2", &iface).unwrap();
        // The struct is ambient: the module must NOT define it...
        assert!(m.type_def("counter").is_none());
        // ...but must verify against a provider that knows it.
        let mut ambient = std::collections::BTreeMap::new();
        ambient.insert(
            "counter".to_string(),
            TypeDef::new("counter", vec![tal::Field::new("n", Ty::Int)]),
        );
        tal::verify_module(&m, &ambient).unwrap();
        // `helper` and `state` are imports.
        let imports: Vec<&str> = m.imports().iter().map(|s| s.name.as_str()).collect();
        assert!(imports.contains(&"helper"));
        assert!(imports.contains(&"state"));
    }

    #[test]
    fn local_struct_shadows_interface_struct() {
        // A patch that *changes* a type redefines it locally.
        let iface = Interface::new()
            .with_struct(TypeDef::new("entry", vec![tal::Field::new("k", Ty::Str)]));
        let src = r#"
            struct entry { k: string, hits: int }
            fun mk(k: string): entry { return entry { k: k, hits: 0 }; }
        "#;
        let m = compile(src, "patch", "v2", &iface).unwrap();
        let def = m.type_def("entry").unwrap();
        assert_eq!(def.fields.len(), 2);
    }

    // ----------------------------------------------------------- rejects

    fn expect_error(src: &str, needle: &str) {
        let e = compile(src, "t", "v1", &Interface::new()).unwrap_err();
        assert!(
            e.message.contains(needle),
            "expected error containing {needle:?}, got: {e}"
        );
    }

    #[test]
    fn rejects_type_errors() {
        expect_error("fun f(): int { return true; }", "expected int");
        expect_error("fun f(): int { return 1 + \"x\"; }", "expected int");
        expect_error(
            "fun f(): unit { var x: int = 1; x = \"s\"; }",
            "expected int",
        );
        expect_error("fun f(): unit { undefined(); }", "unknown function");
        expect_error("fun f(): unit { var x: nosuch = null; }", "unknown type");
        expect_error("fun f(): unit { var x: int = null; }", "not a");
        expect_error("fun f(): unit { break; }", "outside a loop");
        expect_error(
            "fun f(): int { var b: bool = true; if (b) { return 1; } }",
            "all paths",
        );
        expect_error(
            "fun f(): unit { var x: int = 1; var x: int = 2; }",
            "already defined",
        );
        expect_error("fun len(x: int): int { return x; }", "reserved builtin");
        expect_error(
            "struct s { a: int } struct s { b: int }",
            "duplicate struct",
        );
        expect_error(
            "fun f(x: int): int { return x; } fun g(): int { return f(); }",
            "expects 1 arguments",
        );
        expect_error(
            "struct s { a: int } fun f(): s { return s { }; }",
            "missing field",
        );
        expect_error(
            "struct s { a: int } fun f(): s { return s { a: 1, b: 2 }; }",
            "no field `b`",
        );
    }

    #[test]
    fn everything_produced_verifies() {
        // A grab-bag program exercising most constructs; the verifier is
        // the oracle that codegen produces well-typed bytecode.
        let src = r#"
            struct node { label: string, weight: int }
            global total: int = 2 + 3;
            global tags: [string] = ["a", "b"];
            extern fun log(s: string): unit;
            fun classify(n: node): string {
                if (n == null) { return "none"; }
                if (n.weight > 10 && len(n.label) > 0) { return "heavy:" + n.label; }
                else if (n.weight < 0 || n.weight % 2 == 1) { return "odd"; }
                return "light";
            }
            fun main(): int {
                var nodes: [node] = new [node];
                push(nodes, node { label: "x", weight: 11 });
                push(nodes, null);
                var i: int = 0;
                var acc: int = 0;
                while (i < len(nodes)) {
                    log(classify(nodes[i]));
                    update;
                    acc = acc + i;
                    i = i + 1;
                }
                return acc + total;
            }
        "#;
        let m = compile(src, "t", "v1", &Interface::new()).unwrap();
        tal::verify_module(&m, &NoAmbientTypes).unwrap();
        let mut p = Process::new(LinkMode::Updateable);
        p.register_host(
            "log",
            FnSig::new(vec![Ty::Str], Ty::Unit),
            Box::new(|_| Ok(Value::Unit)),
        );
        p.load_module(&m).unwrap();
        assert_eq!(p.call("main", vec![]).unwrap(), Value::Int(1 + 5));
    }
}
