//! Lexical tokens of the Popcorn language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped contents).
    Str(String),
    /// Identifier.
    Ident(String),

    // keywords
    /// `fun`
    Fun,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `struct`
    Struct,
    /// `global`
    Global,
    /// `extern`
    Extern,
    /// `update`
    Update,
    /// `new`
    New,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `int`
    TyInt,
    /// `bool`
    TyBool,
    /// `string`
    TyString,
    /// `unit`
    TyUnit,
    /// `fn`
    TyFn,

    // punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,

    /// End of input.
    Eof,
}

impl Token {
    /// Keyword for an identifier spelling, if it is one.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "fun" => Token::Fun,
            "var" => Token::Var,
            "if" => Token::If,
            "else" => Token::Else,
            "while" => Token::While,
            "return" => Token::Return,
            "true" => Token::True,
            "false" => Token::False,
            "null" => Token::Null,
            "struct" => Token::Struct,
            "global" => Token::Global,
            "extern" => Token::Extern,
            "update" => Token::Update,
            "new" => Token::New,
            "break" => Token::Break,
            "continue" => Token::Continue,
            "int" => Token::TyInt,
            "bool" => Token::TyBool,
            "string" => Token::TyString,
            "unit" => Token::TyUnit,
            "fn" => Token::TyFn,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Fun => write!(f, "fun"),
            Token::Var => write!(f, "var"),
            Token::If => write!(f, "if"),
            Token::Else => write!(f, "else"),
            Token::While => write!(f, "while"),
            Token::Return => write!(f, "return"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Null => write!(f, "null"),
            Token::Struct => write!(f, "struct"),
            Token::Global => write!(f, "global"),
            Token::Extern => write!(f, "extern"),
            Token::Update => write!(f, "update"),
            Token::New => write!(f, "new"),
            Token::Break => write!(f, "break"),
            Token::Continue => write!(f, "continue"),
            Token::TyInt => write!(f, "int"),
            Token::TyBool => write!(f, "bool"),
            Token::TyString => write!(f, "string"),
            Token::TyUnit => write!(f, "unit"),
            Token::TyFn => write!(f, "fn"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Amp => write!(f, "&"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with the 1-based source line it started on.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// 1-based source line.
    pub line: u32,
}
