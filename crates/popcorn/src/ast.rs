//! The Popcorn abstract syntax tree.
//!
//! Produced by the [parser](crate::parser); consumed by the
//! [type checker](crate::typeck), which lowers it to a typed AST. The plain
//! AST is also what the patch generator diffs between program versions, so
//! nodes implement `PartialEq` and a canonical `Display` (pretty-printer).

use std::fmt;

/// A syntactic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeAst {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `string`
    Str,
    /// `unit`
    Unit,
    /// `[T]`
    Array(Box<TypeAst>),
    /// `fn(T1, T2): R`
    Fn(Vec<TypeAst>, Box<TypeAst>),
    /// A struct name.
    Named(String),
}

impl fmt::Display for TypeAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeAst::Int => write!(f, "int"),
            TypeAst::Bool => write!(f, "bool"),
            TypeAst::Str => write!(f, "string"),
            TypeAst::Unit => write!(f, "unit"),
            TypeAst::Array(e) => write!(f, "[{e}]"),
            TypeAst::Fn(ps, r) => {
                write!(f, "fn(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "): {r}")
            }
            TypeAst::Named(n) => write!(f, "{n}"),
        }
    }
}

/// A whole compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Struct definitions, in source order.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Struct(s) => Some(s),
            _ => None,
        })
    }

    /// Global definitions, in source order.
    pub fn globals(&self) -> impl Iterator<Item = &GlobalDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(g) => Some(g),
            _ => None,
        })
    }

    /// Extern declarations, in source order.
    pub fn externs(&self) -> impl Iterator<Item = &ExternDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Extern(e) => Some(e),
            _ => None,
        })
    }

    /// Function definitions, in source order.
    pub fn functions(&self) -> impl Iterator<Item = &FunDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Fun(fd) => Some(fd),
            _ => None,
        })
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `struct Name { f: T, ... }`
    Struct(StructDef),
    /// `global name: T = expr;`
    Global(GlobalDef),
    /// `extern fun name(params): T;`
    Extern(ExternDef),
    /// `fun name(params): T { ... }`
    Fun(FunDef),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, TypeAst)>,
    /// Source line.
    pub line: u32,
}

/// A global-variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Global name.
    pub name: String,
    /// Declared type.
    pub ty: TypeAst,
    /// Initialiser expression.
    pub init: Expr,
    /// Source line.
    pub line: u32,
}

/// An extern (host) function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDef {
    /// Host function name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<TypeAst>,
    /// Return type.
    pub ret: TypeAst,
    /// Source line.
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// Function name.
    pub name: String,
    /// Parameters: name and type.
    pub params: Vec<(String, TypeAst)>,
    /// Return type.
    pub ret: TypeAst,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A statement, with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Source line.
    pub line: u32,
    /// Statement payload.
    pub kind: StmtKind,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `var name: T = expr;`
    Var {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TypeAst,
        /// Initialiser.
        init: Expr,
    },
    /// `lvalue = expr;`
    Assign {
        /// Assignment target (variable, field or index expression).
        target: Expr,
        /// Value.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (empty when absent).
        els: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `update;` — a dynamic-update point.
    Update,
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An expression evaluated for effect.
    Expr(Expr),
}

/// An expression, with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Source line.
    pub line: u32,
    /// Expression payload.
    pub kind: ExprKind,
}

/// Binary operators (syntactic; the type checker resolves overloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (integer addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==` (integers, strings, or null tests)
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null` (type determined by context).
    Null,
    /// Variable or global reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `callee(args)`; `callee` may be a name (direct call, builtin or
    /// extern) or any expression of function type (indirect call).
    Call(Box<Expr>, Vec<Expr>),
    /// `expr.field`
    Field(Box<Expr>, String),
    /// `expr[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `Name { field: expr, ... }`
    Record(String, Vec<(String, Expr)>),
    /// `[e1, e2, ...]` (non-empty)
    ArrayLit(Vec<Expr>),
    /// `new [T]` — an empty array of element type `T`.
    NewArray(TypeAst),
    /// `&name` — a first-class function value.
    FnRef(String),
}
