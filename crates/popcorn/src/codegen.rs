//! Code generation: typed AST → `tal` module.
//!
//! The translation is a routine stack-machine walk. Every reference to a
//! function, global or host becomes a *symbolic* reference in the produced
//! module; whether those bind directly or through indirection-table slots
//! is decided later by the VM's linker (the paper's static vs updateable
//! compilation is a link-mode choice here, so one compile serves both).

use tal::{FnSig, FunctionBuilder, Instr, Label, Module, ModuleBuilder, Ty};

use crate::tast::*;

/// Generates a `tal` module from a checked program.
pub fn generate(prog: &TProgram, module_name: &str, version: &str) -> Module {
    let mut b = ModuleBuilder::new(module_name, version);
    for def in &prog.structs {
        b.def_type(def.clone());
    }
    for g in &prog.globals {
        let init = b.body(|fb| {
            let mut gen = Gen {
                fb,
                loops: Vec::new(),
            };
            gen.expr(&g.init);
            gen.fb.emit(Instr::Ret);
        });
        b.global(g.name.clone(), g.ty.clone(), init);
    }
    for f in &prog.functions {
        b.function(f.name.clone(), f.sig.clone(), |fb| {
            for ty in &f.locals[f.sig.params.len()..] {
                fb.local(ty.clone());
            }
            let mut gen = Gen {
                fb,
                loops: Vec::new(),
            };
            for s in &f.body {
                gen.stmt(s);
            }
            // Implicit return for unit functions (dead code otherwise).
            gen.fb.emit(Instr::PushUnit);
            gen.fb.emit(Instr::Ret);
        });
    }
    b.finish()
}

/// Walks typed statements/expressions, emitting into a function builder.
struct Gen<'a, 'b> {
    fb: &'a mut FunctionBuilder<'b>,
    /// (continue-target, break-target) per enclosing loop.
    loops: Vec<(Label, Label)>,
}

impl Gen<'_, '_> {
    fn stmt(&mut self, s: &TStmt) {
        match &s.kind {
            TStmtKind::StoreLocal(slot, v) => {
                self.expr(v);
                self.fb.emit(Instr::StoreLocal(*slot));
            }
            TStmtKind::StoreGlobal(name, v) => {
                self.expr(v);
                let sym = self.fb.declare_global(name.clone(), v.ty.clone());
                self.fb.emit(Instr::StoreGlobal(sym));
            }
            TStmtKind::StoreField(obj, tyname, idx, v) => {
                self.expr(obj);
                self.expr(v);
                let tr = self.fb.type_ref(tyname.clone());
                self.fb.emit(Instr::SetField(tr, *idx));
            }
            TStmtKind::StoreIndex(arr, idx, v) => {
                self.expr(arr);
                self.expr(idx);
                self.expr(v);
                self.fb.emit(Instr::ArraySet);
            }
            TStmtKind::If(cond, then, els) => {
                let lelse = self.fb.new_label();
                let lend = self.fb.new_label();
                self.expr(cond);
                self.fb.jump_if_false(lelse);
                for s in then {
                    self.stmt(s);
                }
                self.fb.jump(lend);
                self.fb.bind(lelse);
                for s in els {
                    self.stmt(s);
                }
                self.fb.bind(lend);
            }
            TStmtKind::While(cond, body) => {
                let ltop = self.fb.new_label();
                let lend = self.fb.new_label();
                self.fb.bind(ltop);
                self.expr(cond);
                self.fb.jump_if_false(lend);
                self.loops.push((ltop, lend));
                for s in body {
                    self.stmt(s);
                }
                self.loops.pop();
                self.fb.jump(ltop);
                self.fb.bind(lend);
            }
            TStmtKind::Return(v) => {
                self.expr(v);
                self.fb.emit(Instr::Ret);
            }
            TStmtKind::Update => {
                self.fb.emit(Instr::UpdatePoint);
            }
            TStmtKind::Break => {
                let (_, lend) = *self.loops.last().expect("checked: inside loop");
                self.fb.jump(lend);
            }
            TStmtKind::Continue => {
                let (ltop, _) = *self.loops.last().expect("checked: inside loop");
                self.fb.jump(ltop);
            }
            TStmtKind::Expr(e) => {
                self.expr(e);
                self.fb.emit(Instr::Pop);
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &TExpr) {
        match &e.kind {
            TExprKind::Unit => {
                self.fb.emit(Instr::PushUnit);
            }
            TExprKind::Int(n) => {
                self.fb.emit(Instr::PushInt(*n));
            }
            TExprKind::Str(s) => {
                let id = self.fb.string(s.clone());
                self.fb.emit(Instr::PushStr(id));
            }
            TExprKind::Bool(b) => {
                self.fb.emit(Instr::PushBool(*b));
            }
            TExprKind::Null(n) => {
                let tr = self.fb.type_ref(n.clone());
                self.fb.emit(Instr::PushNull(tr));
            }
            TExprKind::Local(slot) => {
                self.fb.emit(Instr::LoadLocal(*slot));
            }
            TExprKind::Global(name) => {
                let sym = self.fb.declare_global(name.clone(), e.ty.clone());
                self.fb.emit(Instr::LoadGlobal(sym));
            }
            TExprKind::Neg(x) => {
                self.expr(x);
                self.fb.emit(Instr::Neg);
            }
            TExprKind::Not(x) => {
                self.expr(x);
                self.fb.emit(Instr::Not);
            }
            TExprKind::IntBin(op, l, r) => {
                // Canonicalize a constant *left* operand to the right
                // (swapping commutative ops, flipping comparisons) so the
                // VM's decoder sees its `... PushInt k; binop` shape and can
                // fuse the pair into a superinstruction. A literal is pure,
                // so evaluation order cannot be observed.
                let (op, l, r) = match (op, &l.kind, &r.kind) {
                    (op, TExprKind::Int(_), k) if !matches!(k, TExprKind::Int(_)) => match op {
                        IntBin::Add | IntBin::Mul | IntBin::Eq | IntBin::Ne => (*op, r, l),
                        IntBin::Lt => (IntBin::Gt, r, l),
                        IntBin::Le => (IntBin::Ge, r, l),
                        IntBin::Gt => (IntBin::Lt, r, l),
                        IntBin::Ge => (IntBin::Le, r, l),
                        IntBin::Sub | IntBin::Div | IntBin::Rem => (*op, l, r),
                    },
                    (op, _, _) => (*op, l, r),
                };
                self.expr(l);
                self.expr(r);
                self.fb.emit(match op {
                    IntBin::Add => Instr::Add,
                    IntBin::Sub => Instr::Sub,
                    IntBin::Mul => Instr::Mul,
                    IntBin::Div => Instr::Div,
                    IntBin::Rem => Instr::Rem,
                    IntBin::Eq => Instr::Eq,
                    IntBin::Ne => Instr::Ne,
                    IntBin::Lt => Instr::Lt,
                    IntBin::Le => Instr::Le,
                    IntBin::Gt => Instr::Gt,
                    IntBin::Ge => Instr::Ge,
                });
            }
            TExprKind::Concat(l, r) => {
                self.expr(l);
                self.expr(r);
                self.fb.emit(Instr::Concat);
            }
            TExprKind::StrEq(l, r, neg) => {
                self.expr(l);
                self.expr(r);
                self.fb.emit(Instr::StrEq);
                if *neg {
                    self.fb.emit(Instr::Not);
                }
            }
            TExprKind::ShortCircuit(is_and, l, r) => {
                self.expr(l);
                if *is_and {
                    // a && b: false branch short-circuits.
                    let lfalse = self.fb.new_label();
                    let lend = self.fb.new_label();
                    self.fb.jump_if_false(lfalse);
                    self.expr(r);
                    self.fb.jump(lend);
                    self.fb.bind(lfalse);
                    self.fb.emit(Instr::PushBool(false));
                    self.fb.bind(lend);
                } else {
                    // a || b: true branch short-circuits.
                    let leval = self.fb.new_label();
                    let lend = self.fb.new_label();
                    self.fb.jump_if_false(leval);
                    self.fb.emit(Instr::PushBool(true));
                    self.fb.jump(lend);
                    self.fb.bind(leval);
                    self.expr(r);
                    self.fb.bind(lend);
                }
            }
            TExprKind::CallFn(name, args) => {
                for a in args {
                    self.expr(a);
                }
                let sig = FnSig::new(args.iter().map(|a| a.ty.clone()).collect(), e.ty.clone());
                let sym = self.fb.declare_fn(name.clone(), sig);
                self.fb.emit(Instr::Call(sym));
            }
            TExprKind::CallHost(name, args) => {
                for a in args {
                    self.expr(a);
                }
                let sig = FnSig::new(args.iter().map(|a| a.ty.clone()).collect(), e.ty.clone());
                let sym = self.fb.declare_host(name.clone(), sig);
                self.fb.emit(Instr::CallHost(sym));
            }
            TExprKind::CallIndirect(f, args) => {
                for a in args {
                    self.expr(a);
                }
                self.expr(f);
                self.fb.emit(Instr::CallIndirect);
            }
            TExprKind::Builtin(b, args) => {
                for a in args {
                    self.expr(a);
                }
                match b {
                    Builtin::LenStr => self.fb.emit(Instr::StrLen),
                    Builtin::LenArray => self.fb.emit(Instr::ArrayLen),
                    Builtin::Substr => self.fb.emit(Instr::Substr),
                    Builtin::Find => self.fb.emit(Instr::StrFind),
                    Builtin::CharAt => self.fb.emit(Instr::CharAt),
                    Builtin::Itoa => self.fb.emit(Instr::IntToStr),
                    Builtin::Atoi => self.fb.emit(Instr::StrToInt),
                    Builtin::Push => {
                        self.fb.emit(Instr::ArrayPush);
                        // `push` is an expression of type unit.
                        self.fb.emit(Instr::PushUnit)
                    }
                };
            }
            TExprKind::Field(obj, tyname, idx) => {
                self.expr(obj);
                let tr = self.fb.type_ref(tyname.clone());
                self.fb.emit(Instr::GetField(tr, *idx));
            }
            TExprKind::Index(arr, idx) => {
                self.expr(arr);
                self.expr(idx);
                self.fb.emit(Instr::ArrayGet);
            }
            TExprKind::Record(name, fields) => {
                for f in fields {
                    self.expr(f);
                }
                let tr = self.fb.type_ref(name.clone());
                self.fb.emit(Instr::NewRecord(tr));
            }
            TExprKind::ArrayLit(elem, elems) => {
                self.fb.emit(Instr::NewArray(elem.clone()));
                for el in elems {
                    self.fb.emit(Instr::Dup);
                    self.expr(el);
                    self.fb.emit(Instr::ArrayPush);
                }
            }
            TExprKind::NewArray(elem) => {
                self.fb.emit(Instr::NewArray(elem.clone()));
            }
            TExprKind::FnRef(name) => {
                let Ty::Fn(sig) = &e.ty else {
                    unreachable!("checked")
                };
                let sym = self.fb.declare_fn(name.clone(), (**sig).clone());
                self.fb.emit(Instr::PushFn(sym));
            }
            TExprKind::IsNull(x, tyname, neg) => {
                self.expr(x);
                let tr = self.fb.type_ref(tyname.clone());
                self.fb.emit(Instr::IsNull(tr));
                if *neg {
                    self.fb.emit(Instr::Not);
                }
            }
        }
    }
}
