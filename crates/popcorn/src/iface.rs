//! Ambient interfaces for separate (and patch) compilation.
//!
//! A Popcorn compilation unit may reference structs, globals, functions and
//! host functions it does not define — for the initial program these come
//! from `extern` declarations, for a *dynamic patch* they are the interface
//! of the running process. The [`Interface`] carries those ambient
//! definitions into type checking; references resolved through it become
//! imports in the produced `tal` module, to be bound by the dynamic linker.

use std::collections::BTreeMap;

use tal::{FnSig, Ty, TypeDef};

/// The ambient symbols a compilation unit may reference without defining.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Interface {
    /// Record types, by name.
    pub structs: BTreeMap<String, TypeDef>,
    /// Global variables, by name.
    pub globals: BTreeMap<String, Ty>,
    /// Guest functions, by name.
    pub functions: BTreeMap<String, FnSig>,
    /// Host (extern) functions, by name.
    pub hosts: BTreeMap<String, FnSig>,
}

impl Interface {
    /// An empty interface (self-contained program).
    pub fn new() -> Interface {
        Interface::default()
    }

    /// Adds a struct definition.
    pub fn with_struct(mut self, def: TypeDef) -> Interface {
        self.structs.insert(def.name.clone(), def);
        self
    }

    /// Adds a global.
    pub fn with_global(mut self, name: impl Into<String>, ty: Ty) -> Interface {
        self.globals.insert(name.into(), ty);
        self
    }

    /// Adds a guest function.
    pub fn with_function(mut self, name: impl Into<String>, sig: FnSig) -> Interface {
        self.functions.insert(name.into(), sig);
        self
    }

    /// Adds a host function.
    pub fn with_host(mut self, name: impl Into<String>, sig: FnSig) -> Interface {
        self.hosts.insert(name.into(), sig);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tal::Field;

    #[test]
    fn builder_accumulates() {
        let i = Interface::new()
            .with_struct(TypeDef::new("t", vec![Field::new("v", Ty::Int)]))
            .with_global("g", Ty::Int)
            .with_function("f", FnSig::new(vec![Ty::Int], Ty::Int))
            .with_host("h", FnSig::new(vec![], Ty::Unit));
        assert!(i.structs.contains_key("t"));
        assert!(i.globals.contains_key("g"));
        assert!(i.functions.contains_key("f"));
        assert!(i.hosts.contains_key("h"));
    }
}
