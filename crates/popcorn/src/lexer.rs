//! The Popcorn lexer.
//!
//! Hand-written single-pass scanner. Comments are `//` to end of line and
//! `/* ... */` (non-nesting). String literals support `\n`, `\t`, `\r`,
//! `\"`, `\\` and `\0` escapes.

use crate::error::CompileError;
use crate::token::{Spanned, Token};

/// Tokenises `src`, returning the token stream (terminated by
/// [`Token::Eof`]).
///
/// # Errors
///
/// Returns a [`CompileError`] on unterminated strings or comments, invalid
/// escapes, stray characters, or integer literals out of `i64` range.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Spanned>,
}

impl Lexer<'_> {
    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::lex(self.line, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, tok: Token, line: u32) {
        self.out.push(Spanned { tok, line });
    }

    fn run(mut self) -> Result<Vec<Spanned>, CompileError> {
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                b'0'..=b'9' => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
                    let n: i64 = text
                        .parse()
                        .map_err(|_| self.err(format!("integer literal `{text}` out of range")))?;
                    self.push(Token::Int(n), line);
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let start = self.pos;
                    while matches!(
                        self.peek(),
                        Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                    ) {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ident");
                    match Token::keyword(text) {
                        Some(kw) => self.push(kw, line),
                        None => self.push(Token::Ident(text.to_string()), line),
                    }
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None | Some(b'\n') => return Err(self.err("unterminated string")),
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'r') => s.push('\r'),
                                Some(b'0') => s.push('\0'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                other => {
                                    return Err(self.err(format!(
                                        "invalid escape `\\{}`",
                                        other.map(char::from).unwrap_or('?')
                                    )))
                                }
                            },
                            Some(c) => s.push(char::from(c)),
                        }
                    }
                    self.push(Token::Str(s), line);
                }
                _ => {
                    self.bump();
                    let tok = match b {
                        b'(' => Token::LParen,
                        b')' => Token::RParen,
                        b'{' => Token::LBrace,
                        b'}' => Token::RBrace,
                        b'[' => Token::LBracket,
                        b']' => Token::RBracket,
                        b',' => Token::Comma,
                        b';' => Token::Semi,
                        b':' => Token::Colon,
                        b'.' => Token::Dot,
                        b'+' => Token::Plus,
                        b'-' => Token::Minus,
                        b'*' => Token::Star,
                        b'/' => Token::Slash,
                        b'%' => Token::Percent,
                        b'=' if self.peek() == Some(b'=') => {
                            self.bump();
                            Token::EqEq
                        }
                        b'=' => Token::Assign,
                        b'!' if self.peek() == Some(b'=') => {
                            self.bump();
                            Token::NotEq
                        }
                        b'!' => Token::Bang,
                        b'<' if self.peek() == Some(b'=') => {
                            self.bump();
                            Token::Le
                        }
                        b'<' => Token::Lt,
                        b'>' if self.peek() == Some(b'=') => {
                            self.bump();
                            Token::Ge
                        }
                        b'>' => Token::Gt,
                        b'&' if self.peek() == Some(b'&') => {
                            self.bump();
                            Token::AndAnd
                        }
                        b'&' => Token::Amp,
                        b'|' if self.peek() == Some(b'|') => {
                            self.bump();
                            Token::OrOr
                        }
                        other => {
                            return Err(
                                self.err(format!("unexpected character `{}`", char::from(other)))
                            )
                        }
                    };
                    self.push(tok, line);
                }
            }
        }
        let line = self.line;
        self.push(Token::Eof, line);
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_function_header() {
        assert_eq!(
            toks("fun f(x: int): int {"),
            vec![
                Token::Fun,
                Token::Ident("f".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::Colon,
                Token::TyInt,
                Token::RParen,
                Token::Colon,
                Token::TyInt,
                Token::LBrace,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_greedily() {
        assert_eq!(
            toks("== = != ! <= < >= > && & || -"),
            vec![
                Token::EqEq,
                Token::Assign,
                Token::NotEq,
                Token::Bang,
                Token::Le,
                Token::Lt,
                Token::Ge,
                Token::Gt,
                Token::AndAnd,
                Token::Amp,
                Token::OrOr,
                Token::Minus,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\nb\t\"q\"\\""#),
            vec![Token::Str("a\nb\t\"q\"\\".into()), Token::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // x\n 2 /* y\n z */ 3"),
            vec![Token::Int(1), Token::Int(2), Token::Int(3), Token::Eof]
        );
    }

    #[test]
    fn tracks_lines() {
        let ts = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = ts.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = lex("ok\n\"unterminated").unwrap_err();
        assert_eq!(e.line, Some(2));
        assert!(lex("/* open").is_err());
        assert!(lex("#").is_err());
        assert!(lex("99999999999999999999").is_err());
    }
}
