//! Recursive-descent parser for Popcorn.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// Parses a complete Popcorn source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic [`CompileError`].
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::parse(self.line(), msg)
    }

    fn expect(&mut self, want: &Token) -> Result<(), CompileError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{want}`, found `{}`", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------- items

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut items = Vec::new();
        while self.peek() != &Token::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        match self.peek() {
            Token::Struct => self.struct_def().map(Item::Struct),
            Token::Global => self.global_def().map(Item::Global),
            Token::Extern => self.extern_def().map(Item::Extern),
            Token::Fun => self.fun_def().map(Item::Fun),
            other => Err(self.err(format!(
                "expected `struct`, `global`, `extern` or `fun`, found `{other}`"
            ))),
        }
    }

    fn struct_def(&mut self) -> Result<StructDef, CompileError> {
        let line = self.line();
        self.expect(&Token::Struct)?;
        let name = self.ident()?;
        self.expect(&Token::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Token::RBrace {
            let fname = self.ident()?;
            self.expect(&Token::Colon)?;
            let ty = self.type_ast()?;
            fields.push((fname, ty));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RBrace)?;
        Ok(StructDef { name, fields, line })
    }

    fn global_def(&mut self) -> Result<GlobalDef, CompileError> {
        let line = self.line();
        self.expect(&Token::Global)?;
        let name = self.ident()?;
        self.expect(&Token::Colon)?;
        let ty = self.type_ast()?;
        self.expect(&Token::Assign)?;
        let init = self.expr()?;
        self.expect(&Token::Semi)?;
        Ok(GlobalDef {
            name,
            ty,
            init,
            line,
        })
    }

    fn extern_def(&mut self) -> Result<ExternDef, CompileError> {
        let line = self.line();
        self.expect(&Token::Extern)?;
        self.expect(&Token::Fun)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        while self.peek() != &Token::RParen {
            // Parameter names are optional in extern declarations.
            if matches!(self.peek(), Token::Ident(_)) && self.peek2() == &Token::Colon {
                self.bump();
                self.bump();
            }
            params.push(self.type_ast()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::Colon)?;
        let ret = self.type_ast()?;
        self.expect(&Token::Semi)?;
        Ok(ExternDef {
            name,
            params,
            ret,
            line,
        })
    }

    fn fun_def(&mut self) -> Result<FunDef, CompileError> {
        let line = self.line();
        self.expect(&Token::Fun)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        while self.peek() != &Token::RParen {
            let pname = self.ident()?;
            self.expect(&Token::Colon)?;
            let ty = self.type_ast()?;
            params.push((pname, ty));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::Colon)?;
        let ret = self.type_ast()?;
        let body = self.block()?;
        Ok(FunDef {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    // ------------------------------------------------------------- types

    fn type_ast(&mut self) -> Result<TypeAst, CompileError> {
        match self.peek().clone() {
            Token::TyInt => {
                self.bump();
                Ok(TypeAst::Int)
            }
            Token::TyBool => {
                self.bump();
                Ok(TypeAst::Bool)
            }
            Token::TyString => {
                self.bump();
                Ok(TypeAst::Str)
            }
            Token::TyUnit => {
                self.bump();
                Ok(TypeAst::Unit)
            }
            Token::LBracket => {
                self.bump();
                let e = self.type_ast()?;
                self.expect(&Token::RBracket)?;
                Ok(TypeAst::Array(Box::new(e)))
            }
            Token::TyFn => {
                self.bump();
                self.expect(&Token::LParen)?;
                let mut params = Vec::new();
                while self.peek() != &Token::RParen {
                    params.push(self.type_ast()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                self.expect(&Token::Colon)?;
                let ret = self.type_ast()?;
                Ok(TypeAst::Fn(params, Box::new(ret)))
            }
            Token::Ident(name) => {
                self.bump();
                Ok(TypeAst::Named(name))
            }
            other => Err(self.err(format!("expected type, found `{other}`"))),
        }
    }

    // -------------------------------------------------------- statements

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Token::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let kind = match self.peek() {
            Token::Var => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.type_ast()?;
                self.expect(&Token::Assign)?;
                let init = self.expr()?;
                self.expect(&Token::Semi)?;
                StmtKind::Var { name, ty, init }
            }
            Token::If => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.expr()?;
                self.expect(&Token::RParen)?;
                let then = self.block()?;
                let els = if self.eat(&Token::Else) {
                    if self.peek() == &Token::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                StmtKind::If { cond, then, els }
            }
            Token::While => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.expr()?;
                self.expect(&Token::RParen)?;
                let body = self.block()?;
                StmtKind::While { cond, body }
            }
            Token::Return => {
                self.bump();
                let value = if self.peek() == &Token::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Token::Semi)?;
                StmtKind::Return(value)
            }
            Token::Update => {
                self.bump();
                self.expect(&Token::Semi)?;
                StmtKind::Update
            }
            Token::Break => {
                self.bump();
                self.expect(&Token::Semi)?;
                StmtKind::Break
            }
            Token::Continue => {
                self.bump();
                self.expect(&Token::Semi)?;
                StmtKind::Continue
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&Token::Assign) {
                    let value = self.expr()?;
                    self.expect(&Token::Semi)?;
                    StmtKind::Assign { target: e, value }
                } else {
                    self.expect(&Token::Semi)?;
                    StmtKind::Expr(e)
                }
            }
        };
        Ok(Stmt { line, kind })
    }

    // ------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn binary_chain<F>(&mut self, mut next: F, ops: &[(Token, BinOp)]) -> Result<Expr, CompileError>
    where
        F: FnMut(&mut Self) -> Result<Expr, CompileError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    let line = self.line();
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr {
                        line,
                        kind: ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)),
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_chain(Self::and_expr, &[(Token::OrOr, BinOp::Or)])
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_chain(Self::equality, &[(Token::AndAnd, BinOp::And)])
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        self.binary_chain(
            Self::relational,
            &[(Token::EqEq, BinOp::Eq), (Token::NotEq, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        self.binary_chain(
            Self::additive,
            &[
                (Token::Lt, BinOp::Lt),
                (Token::Le, BinOp::Le),
                (Token::Gt, BinOp::Gt),
                (Token::Ge, BinOp::Ge),
            ],
        )
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        self.binary_chain(
            Self::multiplicative,
            &[(Token::Plus, BinOp::Add), (Token::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        self.binary_chain(
            Self::unary,
            &[
                (Token::Star, BinOp::Mul),
                (Token::Slash, BinOp::Div),
                (Token::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            Token::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                })
            }
            Token::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                })
            }
            Token::Amp => {
                self.bump();
                let name = self.ident()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::FnRef(name),
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Token::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    while self.peek() != &Token::RParen {
                        args.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                    e = Expr {
                        line,
                        kind: ExprKind::Call(Box::new(e), args),
                    };
                }
                Token::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr {
                        line,
                        kind: ExprKind::Field(Box::new(e), field),
                    };
                }
                Token::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    e = Expr {
                        line,
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let kind = match self.peek().clone() {
            Token::Int(n) => {
                self.bump();
                ExprKind::Int(n)
            }
            Token::Str(s) => {
                self.bump();
                ExprKind::Str(s)
            }
            Token::True => {
                self.bump();
                ExprKind::Bool(true)
            }
            Token::False => {
                self.bump();
                ExprKind::Bool(false)
            }
            Token::Null => {
                self.bump();
                ExprKind::Null
            }
            Token::Ident(name) => {
                self.bump();
                if self.peek() == &Token::LBrace {
                    // Record literal: `Name { field: expr, ... }`.
                    self.bump();
                    let mut fields = Vec::new();
                    while self.peek() != &Token::RBrace {
                        let fname = self.ident()?;
                        self.expect(&Token::Colon)?;
                        let v = self.expr()?;
                        fields.push((fname, v));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RBrace)?;
                    ExprKind::Record(name, fields)
                } else {
                    ExprKind::Var(name)
                }
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                return Ok(e);
            }
            Token::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                while self.peek() != &Token::RBracket {
                    elems.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RBracket)?;
                if elems.is_empty() {
                    return Err(self.err("empty array literal has no element type; use `new [T]`"));
                }
                ExprKind::ArrayLit(elems)
            }
            Token::New => {
                self.bump();
                self.expect(&Token::LBracket)?;
                let ty = self.type_ast()?;
                self.expect(&Token::RBracket)?;
                ExprKind::NewArray(ty)
            }
            other => return Err(self.err(format!("expected expression, found `{other}`"))),
        };
        Ok(Expr { line, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_program() {
        let p = parse(
            r#"
            struct point { x: int, y: int }
            extern fun now(): int;
            global origin: point = point { x: 0, y: 0 };
            fun dist2(p: point): int {
                return p.x * p.x + p.y * p.y;
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.structs().count(), 1);
        assert_eq!(p.externs().count(), 1);
        assert_eq!(p.globals().count(), 1);
        assert_eq!(p.functions().count(), 1);
    }

    #[test]
    fn precedence_shapes() {
        let p = parse("fun f(): int { return 1 + 2 * 3; }").unwrap();
        let f = p.functions().next().unwrap();
        let StmtKind::Return(Some(e)) = &f.body[0].kind else {
            panic!()
        };
        // (1 + (2 * 3))
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_control_flow_and_updates() {
        let p = parse(
            r#"
            fun f(n: int): int {
                var acc: int = 0;
                while (n > 0) {
                    if (n % 2 == 0) { acc = acc + n; } else { acc = acc - 1; }
                    n = n - 1;
                    update;
                }
                return acc;
            }
            "#,
        )
        .unwrap();
        let f = p.functions().next().unwrap();
        assert_eq!(f.body.len(), 3);
        assert!(matches!(f.body[1].kind, StmtKind::While { .. }));
    }

    #[test]
    fn parses_arrays_records_indexing_calls() {
        let p = parse(
            r#"
            fun f(): int {
                var a: [int] = [1, 2, 3];
                var b: [int] = new [int];
                push(b, a[0]);
                var g: fn(int): int = &f2;
                return g(len(a));
            }
            fun f2(x: int): int { return x; }
            "#,
        )
        .unwrap();
        assert_eq!(p.functions().count(), 2);
    }

    #[test]
    fn else_if_chains() {
        let p = parse(
            "fun f(x: int): int { if (x == 0) { return 0; } else if (x == 1) { return 1; } else { return 2; } }",
        )
        .unwrap();
        let f = p.functions().next().unwrap();
        let StmtKind::If { els, .. } = &f.body[0].kind else {
            panic!()
        };
        assert!(matches!(els[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn rejects_empty_array_literal() {
        let e = parse("fun f(): unit { var a: [int] = []; }").unwrap_err();
        assert!(e.message.contains("new [T]"), "{e}");
    }

    #[test]
    fn reports_unexpected_tokens_with_lines() {
        let e = parse("fun f(): int {\n  return ;;\n}").unwrap_err();
        assert_eq!(e.line, Some(2));
    }

    #[test]
    fn extern_params_allow_optional_names() {
        let p = parse("extern fun send(fd: int, data: string): int;").unwrap();
        let e = p.externs().next().unwrap();
        assert_eq!(e.params, vec![TypeAst::Int, TypeAst::Str]);
    }
}
