//! Pretty-printer: AST → canonical Popcorn source.
//!
//! The patch generator composes patch *source* out of items taken from two
//! program versions plus synthesised state transformers; this module renders
//! AST items back to compilable text. The canonical form also gives a
//! line-number-insensitive equality for diffing: two items are considered
//! unchanged when their renderings agree.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for item in &p.items {
        match item {
            Item::Struct(s) => out.push_str(&struct_def(s)),
            Item::Global(g) => out.push_str(&global_def(g)),
            Item::Extern(e) => out.push_str(&extern_def(e)),
            Item::Fun(f) => out.push_str(&fun_def(f)),
        }
        out.push('\n');
    }
    out
}

/// Renders a struct definition.
pub fn struct_def(s: &StructDef) -> String {
    let fields: Vec<String> = s.fields.iter().map(|(n, t)| format!("{n}: {t}")).collect();
    format!("struct {} {{ {} }}\n", s.name, fields.join(", "))
}

/// Renders a global definition.
pub fn global_def(g: &GlobalDef) -> String {
    format!("global {}: {} = {};\n", g.name, g.ty, expr(&g.init))
}

/// Renders an extern declaration.
pub fn extern_def(e: &ExternDef) -> String {
    let params: Vec<String> = e.params.iter().map(ToString::to_string).collect();
    format!("extern fun {}({}): {};\n", e.name, params.join(", "), e.ret)
}

/// Renders a function definition.
pub fn fun_def(f: &FunDef) -> String {
    let params: Vec<String> = f.params.iter().map(|(n, t)| format!("{n}: {t}")).collect();
    let mut out = format!("fun {}({}): {} {{\n", f.name, params.join(", "), f.ret);
    for s in &f.body {
        stmt(&mut out, s, 1);
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match &s.kind {
        StmtKind::Var { name, ty, init } => {
            let _ = writeln!(out, "var {name}: {ty} = {};", expr(init));
        }
        StmtKind::Assign { target, value } => {
            let _ = writeln!(out, "{} = {};", expr(target), expr(value));
        }
        StmtKind::If { cond, then, els } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            for t in then {
                stmt(out, t, depth + 1);
            }
            indent(out, depth);
            if els.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for e in els {
                    stmt(out, e, depth + 1);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            for b in body {
                stmt(out, b, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr(e));
        }
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Update => out.push_str("update;\n"),
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", expr(e));
        }
    }
}

/// Renders an expression (fully parenthesised where nesting matters).
pub fn expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(n) => n.to_string(),
        ExprKind::Str(s) => format!("{s:?}"),
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Null => "null".to_string(),
        ExprKind::Var(n) => n.clone(),
        ExprKind::Unary(UnOp::Neg, x) => format!("(-{})", expr(x)),
        ExprKind::Unary(UnOp::Not, x) => format!("(!{})", expr(x)),
        ExprKind::Binary(op, l, r) => format!("({} {op} {})", expr(l), expr(r)),
        ExprKind::Call(f, args) => {
            let args: Vec<String> = args.iter().map(expr).collect();
            match &f.kind {
                ExprKind::Var(name) => format!("{name}({})", args.join(", ")),
                _ => format!("({})({})", expr(f), args.join(", ")),
            }
        }
        ExprKind::Field(o, f) => format!("{}.{f}", postfix_base(o)),
        ExprKind::Index(a, i) => format!("{}[{}]", postfix_base(a), expr(i)),
        ExprKind::Record(name, fields) => {
            let fields: Vec<String> = fields
                .iter()
                .map(|(n, v)| format!("{n}: {}", expr(v)))
                .collect();
            format!("{name} {{ {} }}", fields.join(", "))
        }
        ExprKind::ArrayLit(elems) => {
            let elems: Vec<String> = elems.iter().map(expr).collect();
            format!("[{}]", elems.join(", "))
        }
        ExprKind::NewArray(t) => format!("new [{t}]"),
        ExprKind::FnRef(n) => format!("&{n}"),
    }
}

/// Renders an expression used as the base of a postfix form (`.field`,
/// `[index]`). `&name` is the one rendering the parser cannot continue
/// with a postfix operator, so it gets parenthesised; every other form is
/// either already parenthesised or postfix-continuable.
fn postfix_base(e: &Expr) -> String {
    match &e.kind {
        ExprKind::FnRef(_) => format!("({})", expr(e)),
        _ => expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Round-trip property on a representative program: parse → print →
    /// parse → print must be a fixed point.
    #[test]
    fn print_parse_fixed_point() {
        let src = r#"
            struct node { label: string, next: node }
            extern fun log(string): unit;
            global count: int = 1 + 2 * 3;
            global names: [string] = ["a", "b"];
            fun walk(n: node, depth: int): int {
                var seen: int = 0;
                while (n != null && depth > 0) {
                    if (len(n.label) == 0 || n.label == "skip") {
                        n = n.next;
                        continue;
                    } else {
                        seen = seen + 1;
                    }
                    update;
                    depth = depth - 1;
                    n = n.next;
                }
                return seen;
            }
            fun use_ptr(): int {
                var f: fn(node, int): int = &walk;
                var a: [int] = new [int];
                push(a, f(null, -1));
                return a[0];
            }
        "#;
        let p1 = parse(src).unwrap();
        let text1 = program(&p1);
        let p2 = parse(&text1).expect("pretty output parses");
        let text2 = program(&p2);
        assert_eq!(text1, text2, "pretty-printing is a fixed point");
    }

    #[test]
    fn escapes_strings() {
        let p = parse(r#"global s: string = "a\nb\"c";"#).unwrap();
        let text = program(&p);
        let p2 = parse(&text).unwrap();
        assert_eq!(program(&p2), text);
    }

    #[test]
    fn canonical_form_ignores_formatting_differences() {
        let a = parse("fun f(x: int): int { return x+1; }").unwrap();
        let b = parse("fun  f( x:int ):int {\n  return (x + 1);\n}").unwrap();
        // Parenthesisation differs syntactically but not semantically; the
        // canonical renderings agree because `expr` reparenthesises.
        assert_eq!(program(&a), program(&b));
    }
}
