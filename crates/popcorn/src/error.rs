//! Compilation errors.

use std::error::Error;
use std::fmt;

/// The compiler stage that produced an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking.
    Type,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Lex => write!(f, "lex"),
            Stage::Parse => write!(f, "parse"),
            Stage::Type => write!(f, "type"),
        }
    }
}

/// A Popcorn compilation error with source location.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Producing stage.
    pub stage: Stage,
    /// 1-based source line, when known.
    pub line: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates a lexer error.
    pub fn lex(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            stage: Stage::Lex,
            line: Some(line),
            message: message.into(),
        }
    }

    /// Creates a parser error.
    pub fn parse(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            stage: Stage::Parse,
            line: Some(line),
            message: message.into(),
        }
    }

    /// Creates a type error.
    pub fn ty(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            stage: Stage::Type,
            line: Some(line),
            message: message.into(),
        }
    }

    /// Creates a type error with no useful line.
    pub fn ty_global(message: impl Into<String>) -> CompileError {
        CompileError {
            stage: Stage::Type,
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "{} error at line {l}: {}", self.stage, self.message),
            None => write!(f, "{} error: {}", self.stage, self.message),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_line() {
        let e = CompileError::parse(7, "expected `;`");
        assert_eq!(e.to_string(), "parse error at line 7: expected `;`");
        let e = CompileError::ty_global("duplicate function `f`");
        assert_eq!(e.to_string(), "type error: duplicate function `f`");
    }
}
