//! Type-checker acceptance/rejection suite.
//!
//! Each case is a distinct rule of the language; acceptance cases also
//! verify the produced bytecode, so the suite doubles as a codegen
//! well-typedness check.

use popcorn::{compile, Interface};
use tal::{FnSig, NoAmbientTypes, Ty, TypeDef};

fn accepts(src: &str) {
    let m = compile(src, "t", "v1", &Interface::new())
        .unwrap_or_else(|e| panic!("should compile: {e}\n---\n{src}"));
    tal::verify_module(&m, &NoAmbientTypes)
        .unwrap_or_else(|e| panic!("should verify: {e}\n---\n{src}"));
}

fn rejects(src: &str, needle: &str) {
    match compile(src, "t", "v1", &Interface::new()) {
        Ok(_) => panic!("should not compile:\n{src}"),
        Err(e) => assert!(
            e.message.contains(needle),
            "expected error containing {needle:?}, got `{e}`\n---\n{src}"
        ),
    }
}

// ------------------------------ expressions ------------------------------

#[test]
fn arithmetic_types() {
    accepts("fun f(a: int, b: int): int { return a * b % (a - -b); }");
    rejects(
        "fun f(b: bool): int { return b + 1; }",
        "is not defined on bool",
    );
    rejects("fun f(): int { return \"a\" - \"b\"; }", "expected int");
    rejects("fun f(): int { return -true; }", "expected int");
}

#[test]
fn string_concat_overload() {
    accepts(r#"fun f(s: string): string { return s + "x" + itoa(1); }"#);
    rejects(
        r#"fun f(s: string): string { return s + 1; }"#,
        "expected string",
    );
}

#[test]
fn comparisons() {
    accepts("fun f(a: int): bool { return a < 1 && a <= 2 || a > 3 && a >= 4; }");
    accepts(r#"fun f(s: string): bool { return s == "x" && s != "y"; }"#);
    rejects(
        "fun f(a: bool, b: bool): bool { return a == b; }",
        "not defined on bool",
    );
    rejects(
        r#"fun f(s: string): bool { return s < "a"; }"#,
        "expected int",
    );
    rejects(
        "fun f(a: [int]): bool { return a == a; }",
        "not defined on [int]",
    );
}

#[test]
fn null_comparisons_need_named_types() {
    accepts("struct s { v: int } fun f(x: s): bool { return x == null || null != x; }");
    rejects(
        "fun f(a: int): bool { return a == null; }",
        "cannot compare int with null",
    );
    rejects("fun f(): bool { return null == null; }", "cannot infer");
}

#[test]
fn null_requires_expected_named_type() {
    accepts("struct s { v: int } fun f(): s { return null; }");
    rejects("fun f(): int { return null; }", "`null` is not a int");
    rejects("fun f(): unit { null; }", "cannot infer the type of `null`");
    rejects("fun f(): [int] { return null; }", "is not a [int]");
}

#[test]
fn logical_operators_are_bool_only() {
    rejects("fun f(a: int): bool { return a && true; }", "expected bool");
    rejects("fun f(): bool { return !1; }", "expected bool");
}

// ------------------------------- records -------------------------------

#[test]
fn record_construction_rules() {
    let base = "struct p { x: int, y: string }";
    accepts(&format!(
        "{base} fun f(): p {{ return p {{ x: 1, y: \"a\" }}; }}"
    ));
    accepts(&format!(
        "{base} fun f(): p {{ return p {{ y: \"a\", x: 1 }}; }}"
    )); // any order
    rejects(
        &format!("{base} fun f(): p {{ return p {{ x: 1 }}; }}"),
        "missing field `y`",
    );
    rejects(
        &format!("{base} fun f(): p {{ return p {{ x: 1, y: \"a\", x: 2 }}; }}"),
        "given twice",
    );
    rejects(
        &format!("{base} fun f(): p {{ return p {{ x: \"no\", y: \"a\" }}; }}"),
        "expected int",
    );
    rejects("fun f(): unit { ghost { a: 1 }; }", "unknown type");
}

#[test]
fn field_access_rules() {
    let base = "struct p { x: int }";
    accepts(&format!("{base} fun f(v: p): int {{ return v.x; }}"));
    accepts(&format!("{base} fun f(v: p): unit {{ v.x = 3; }}"));
    rejects(
        &format!("{base} fun f(v: p): int {{ return v.z; }}"),
        "no field `z`",
    );
    rejects("fun f(v: int): int { return v.x; }", "has no fields");
}

#[test]
fn recursive_struct_types() {
    accepts(
        r#"
        struct node { v: int, next: node }
        fun sum(n: node): int {
            var acc: int = 0;
            while (n != null) { acc = acc + n.v; n = n.next; }
            return acc;
        }
        "#,
    );
}

#[test]
fn mutually_recursive_structs() {
    accepts(
        r#"
        struct a { b: b }
        struct b { a: a, v: int }
        fun f(x: a): int { if (x == null) { return 0; } return x.b.v; }
        "#,
    );
}

// ------------------------------- arrays -------------------------------

#[test]
fn array_rules() {
    accepts("fun f(): [int] { return [1, 2, 3]; }");
    accepts("fun f(): [[string]] { return [new [string], [\"a\"]]; }");
    accepts("fun f(a: [int]): int { a[0] = a[1]; return len(a); }");
    rejects("fun f(): [int] { return [1, true]; }", "expected int");
    rejects("fun f(a: [int]): bool { return a[0]; }", "expected bool");
    rejects("fun f(a: int): int { return a[0]; }", "cannot index int");
    rejects("fun f(a: [int]): unit { push(a, \"s\"); }", "expected int");
    rejects("fun f(a: int): unit { push(a, 1); }", "`push` on int");
}

#[test]
fn array_literal_infers_from_context_for_null_elements() {
    accepts("struct s { v: int } fun f(): [s] { return [null, s { v: 1 }]; }");
    // Without context, the first element anchors inference and null alone
    // cannot.
    rejects(
        "fun f(): unit { var x: int = len([null]); }",
        "cannot infer",
    );
}

// ----------------------------- functions -----------------------------

#[test]
fn call_rules() {
    accepts("fun g(x: int): int { return x; } fun f(): int { return g(1); }");
    rejects(
        "fun g(x: int): int { return x; } fun f(): int { return g(true); }",
        "expected int",
    );
    rejects(
        "fun g(x: int): int { return x; } fun f(): int { return g(1, 2); }",
        "expects 1 arguments",
    );
    rejects("fun f(): int { return f; }", "unknown variable `f`"); // need &f
}

#[test]
fn function_pointer_rules() {
    accepts(
        r#"
        fun inc(x: int): int { return x + 1; }
        fun f(): int {
            var g: fn(int): int = &inc;
            return g(1);
        }
        "#,
    );
    rejects(
        r#"
        fun inc(x: int): int { return x + 1; }
        fun f(): bool { var g: fn(int): bool = &inc; return g(1); }
        "#,
        "expected fn(int): bool",
    );
    rejects(
        "fun f(): unit { var g: fn(): unit = &ghost; }",
        "unknown function",
    );
    rejects("fun f(x: int): unit { x(); }", "int is not callable");
}

#[test]
fn return_coverage_analysis() {
    accepts("fun f(c: bool): int { if (c) { return 1; } else { return 2; } }");
    accepts("fun f(c: bool): int { if (c) { return 1; } return 2; }");
    accepts("fun f(): unit { }"); // unit functions may fall through
    rejects(
        "fun f(c: bool): int { if (c) { return 1; } }",
        "does not return on all paths",
    );
    rejects(
        "fun f(c: bool): int { while (c) { return 1; } }",
        "does not return on all paths",
    );
    rejects(
        "fun f(): int { return; }",
        "`return;` in a function returning int",
    );
}

#[test]
fn scoping_rules() {
    accepts(
        r#"
        fun f(): int {
            var x: int = 1;
            if (true) { var y: int = 2; x = x + y; }
            if (true) { var y: int = 3; x = x + y; }
            return x;
        }
        "#,
    );
    // Inner scopes may shadow outer ones.
    accepts("fun f(): int { var x: int = 1; if (true) { var x: int = 2; } return x; }");
    rejects(
        "fun f(): int { if (true) { var y: int = 2; } return y; }",
        "unknown variable `y`",
    );
    rejects(
        "fun f(x: int, x: int): int { return x; }",
        "already defined",
    );
}

#[test]
fn assignment_target_rules() {
    rejects("fun f(): unit { 1 = 2; }", "invalid assignment target");
    rejects(
        "fun g(): int { return 1; } fun f(): unit { g() = 2; }",
        "invalid assignment",
    );
    rejects("fun f(): unit { ghost = 2; }", "unknown variable");
}

#[test]
fn break_continue_placement() {
    accepts("fun f(): unit { while (true) { if (true) { break; } continue; } }");
    rejects("fun f(): unit { continue; }", "outside a loop");
    rejects("fun f(): unit { if (true) { break; } }", "outside a loop");
}

// ----------------------------- top level -----------------------------

#[test]
fn global_rules() {
    accepts("global g: int = 1 + 2; fun f(): int { return g; }");
    accepts("global a: int = 2; global b: int = a * 3; fun f(): int { return b; }");
    rejects(
        "global g: int = true; fun f(): int { return g; }",
        "expected int",
    );
    rejects("global g: int = 1; global g: int = 2;", "duplicate global");
}

#[test]
fn extern_rules() {
    accepts("extern fun h(): int; fun f(): int { return h(); }");
    accepts("extern fun h(): int; extern fun h(): int; fun f(): int { return h(); }");
    rejects(
        "extern fun h(): int; extern fun h(): bool; fun f(): int { return h(); }",
        "redeclared with a different signature",
    );
}

#[test]
fn interface_shadowing_and_conflicts() {
    let iface = Interface::new()
        .with_struct(TypeDef::new("s", vec![tal::Field::new("v", Ty::Int)]))
        .with_global("g", Ty::Int)
        .with_function("f", FnSig::new(vec![], Ty::Int));
    // Patch-style: redefining an interface function locally is allowed.
    let m = compile("fun f(): int { return g; }", "p", "v2", &iface).unwrap();
    assert!(m.function("f").is_some());
    // Redefining an interface *global* is not.
    let e = compile("global g: int = 1;", "p", "v2", &iface).unwrap_err();
    assert!(e.message.contains("duplicate global"), "{e}");
}

#[test]
fn update_statement_allowed_anywhere_statements_are() {
    accepts("fun f(): unit { update; while (true) { update; break; } }");
}

#[test]
fn builtin_names_are_reserved() {
    for name in ["len", "substr", "find", "char_at", "itoa", "atoi", "push"] {
        rejects(&format!("fun {name}(): unit {{ }}"), "reserved builtin");
    }
}

#[test]
fn builtin_arity_checks() {
    rejects(
        "fun f(s: string): int { return len(); }",
        "expects 1 arguments",
    );
    rejects(
        "fun f(s: string): string { return substr(s, 1); }",
        "expects 3 arguments",
    );
    rejects(
        "fun f(s: string): int { return char_at(s); }",
        "expects 2 arguments",
    );
    rejects("fun f(): int { return atoi(1); }", "expected string");
    rejects("fun f(): int { return len(3); }", "`len` on int");
}
