//! Parser suite: grammar coverage, precedence/associativity shapes, and
//! error reporting.

use popcorn::ast::*;
use popcorn::parse;

fn first_fun(src: &str) -> FunDef {
    parse(src).unwrap().functions().next().unwrap().clone()
}

fn ret_expr(src: &str) -> Expr {
    let f = first_fun(src);
    match &f.body[0].kind {
        StmtKind::Return(Some(e)) => e.clone(),
        other => panic!("expected return, got {other:?}"),
    }
}

fn rejects(src: &str, needle: &str) {
    let e = parse(src).expect_err("should not parse");
    assert!(
        e.message.contains(needle),
        "expected {needle:?} in `{e}`\n---\n{src}"
    );
}

// ------------------------------ precedence ------------------------------

#[test]
fn arithmetic_precedence_and_left_associativity() {
    // a - b - c == (a - b) - c
    let e = ret_expr("fun f(a: int, b: int, c: int): int { return a - b - c; }");
    let ExprKind::Binary(BinOp::Sub, lhs, _) = &e.kind else {
        panic!("{e:?}")
    };
    assert!(matches!(lhs.kind, ExprKind::Binary(BinOp::Sub, _, _)));

    // a + b * c == a + (b * c)
    let e = ret_expr("fun f(a: int, b: int, c: int): int { return a + b * c; }");
    let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
        panic!("{e:?}")
    };
    assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
}

#[test]
fn comparison_binds_tighter_than_logic() {
    // a < b && c > d == (a < b) && (c > d)
    let e = ret_expr("fun f(a: int, b: int, c: int, d: int): bool { return a < b && c > d; }");
    let ExprKind::Binary(BinOp::And, l, r) = &e.kind else {
        panic!("{e:?}")
    };
    assert!(matches!(l.kind, ExprKind::Binary(BinOp::Lt, _, _)));
    assert!(matches!(r.kind, ExprKind::Binary(BinOp::Gt, _, _)));
}

#[test]
fn or_binds_looser_than_and() {
    // a || b && c == a || (b && c)
    let e = ret_expr("fun f(a: bool, b: bool, c: bool): bool { return a || b && c; }");
    let ExprKind::Binary(BinOp::Or, _, rhs) = &e.kind else {
        panic!("{e:?}")
    };
    assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::And, _, _)));
}

#[test]
fn unary_binds_tighter_than_binary() {
    let e = ret_expr("fun f(a: int, b: int): int { return -a * b; }");
    let ExprKind::Binary(BinOp::Mul, lhs, _) = &e.kind else {
        panic!("{e:?}")
    };
    assert!(matches!(lhs.kind, ExprKind::Unary(UnOp::Neg, _)));
}

#[test]
fn postfix_chains() {
    let e = ret_expr("fun f(a: [x]): int { return a[0].b.c[1]; }");
    // ((((a[0]).b).c)[1])
    let ExprKind::Index(base, _) = &e.kind else {
        panic!("{e:?}")
    };
    let ExprKind::Field(base, c) = &base.kind else {
        panic!()
    };
    assert_eq!(c, "c");
    let ExprKind::Field(base, b) = &base.kind else {
        panic!()
    };
    assert_eq!(b, "b");
    assert!(matches!(base.kind, ExprKind::Index(_, _)));
}

#[test]
fn call_chains_and_indirect_calls() {
    let e = ret_expr("fun f(g: fn(int): fn(int): int): int { return g(1)(2); }");
    let ExprKind::Call(callee, args) = &e.kind else {
        panic!("{e:?}")
    };
    assert_eq!(args.len(), 1);
    assert!(matches!(callee.kind, ExprKind::Call(_, _)));
}

// ------------------------------- literals -------------------------------

#[test]
fn record_and_array_literals() {
    let e = ret_expr(r#"fun f(): p { return p { a: 1, b: [1, 2], c: q { d: "x" } }; }"#);
    let ExprKind::Record(name, fields) = &e.kind else {
        panic!("{e:?}")
    };
    assert_eq!(name, "p");
    assert_eq!(fields.len(), 3);
    assert!(matches!(fields[1].1.kind, ExprKind::ArrayLit(_)));
    assert!(matches!(fields[2].1.kind, ExprKind::Record(_, _)));
}

#[test]
fn trailing_commas_allowed_in_structs_and_records() {
    assert!(parse("struct s { a: int, b: bool, }").is_ok());
    assert!(parse("fun f(): s { return s { a: 1, }; }").is_ok());
}

#[test]
fn new_array_types() {
    let e = ret_expr("fun f(): [[int]] { return new [[int]]; }");
    assert!(matches!(e.kind, ExprKind::NewArray(TypeAst::Array(_))));
    let e = ret_expr("fun f(): [fn(int): bool] { return new [fn(int): bool]; }");
    assert!(matches!(e.kind, ExprKind::NewArray(TypeAst::Fn(_, _))));
}

// ------------------------------ statements ------------------------------

#[test]
fn assignment_vs_expression_statement() {
    let f = first_fun("fun f(a: [int]): unit { a[0] = 1; g(a); }");
    assert!(matches!(f.body[0].kind, StmtKind::Assign { .. }));
    assert!(matches!(f.body[1].kind, StmtKind::Expr(_)));
}

#[test]
fn nested_blocks_and_dangling_else() {
    // `else` binds to the nearest `if` (enforced by braces in this
    // grammar, so there is no true dangling-else ambiguity).
    let f = first_fun("fun f(a: bool, b: bool): unit { if (a) { if (b) { } else { } } }");
    let StmtKind::If { then, els, .. } = &f.body[0].kind else {
        panic!()
    };
    assert!(els.is_empty());
    let StmtKind::If { els: inner_els, .. } = &then[0].kind else {
        panic!()
    };
    assert_eq!(inner_els.len(), 0);
}

#[test]
fn update_points_parse_as_statements() {
    let f = first_fun("fun f(): unit { update; while (true) { update; break; } }");
    assert!(matches!(f.body[0].kind, StmtKind::Update));
}

// ------------------------------- errors -------------------------------

#[test]
fn error_cases_and_locations() {
    rejects("fun f(): int { return 1 }", "expected `;`");
    rejects("fun f(: int): int { return 1; }", "expected identifier");
    rejects("fun f() int { return 1; }", "expected `:`");
    rejects("struct s a: int }", "expected `{`");
    rejects("global g int = 1;", "expected `:`");
    rejects("fun f(): int { if true { } }", "expected `(`");
    rejects("blob x;", "expected `struct`, `global`, `extern` or `fun`");
    rejects("fun f(): int { return +; }", "expected expression");

    let e = parse("fun f(): int {\n\n  return @;\n}").unwrap_err();
    assert_eq!(e.line, Some(3), "{e}");
}

#[test]
fn eof_inside_constructs() {
    rejects("fun f(): int { return 1;", "expected");
    rejects("struct s { a: int", "expected");
    rejects("fun f(", "expected");
}

#[test]
fn keywords_cannot_be_identifiers() {
    rejects("fun while(): int { return 1; }", "expected identifier");
    rejects(
        "fun f(return: int): int { return 1; }",
        "expected identifier",
    );
}

#[test]
fn extern_declarations() {
    let p =
        parse("extern fun a(): unit; extern fun b(int, string): int; extern fun c(x: int): bool;")
            .unwrap();
    let ex: Vec<&ExternDef> = p.externs().collect();
    assert_eq!(ex.len(), 3);
    assert_eq!(ex[1].params.len(), 2);
    assert_eq!(ex[2].params, vec![TypeAst::Int]);
}

#[test]
fn comments_anywhere() {
    let src = r#"
        // leading
        struct /* inline */ s { a: int } // trailing
        /* block
           spanning lines */
        fun f(): s { return /* here too */ s { a: 1 }; }
    "#;
    assert!(parse(src).is_ok());
}
