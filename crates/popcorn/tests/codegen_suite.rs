//! Code-generation golden suite: pins the instruction sequences emitted
//! for each language construct, so codegen changes are deliberate.

use popcorn::{compile, Interface};
use tal::Instr;

fn code_of(src: &str, fun: &str) -> Vec<Instr> {
    let m = compile(src, "t", "v1", &Interface::new()).expect("compiles");
    tal::verify_module(&m, &tal::NoAmbientTypes).expect("verifies");
    m.function(fun).expect("function exists").code.clone()
}

#[test]
fn return_expression() {
    assert_eq!(
        code_of("fun f(x: int): int { return x + 1; }", "f"),
        vec![
            Instr::LoadLocal(0),
            Instr::PushInt(1),
            Instr::Add,
            Instr::Ret,
            // implicit-unit epilogue (dead)
            Instr::PushUnit,
            Instr::Ret,
        ]
    );
}

#[test]
fn unit_function_implicit_return() {
    assert_eq!(
        code_of("fun f(): unit { }", "f"),
        vec![Instr::PushUnit, Instr::Ret]
    );
}

#[test]
fn expression_statement_pops() {
    let code = code_of("fun g(): int { return 1; } fun f(): unit { g(); }", "f");
    assert!(
        code.windows(2)
            .any(|w| matches!(w, [Instr::Call(_), Instr::Pop])),
        "{code:?}"
    );
}

#[test]
fn if_else_shape() {
    let code = code_of(
        "fun f(c: bool): int { if (c) { return 1; } else { return 2; } }",
        "f",
    );
    assert_eq!(
        code,
        vec![
            Instr::LoadLocal(0),
            Instr::JumpIfFalse(5),
            Instr::PushInt(1),
            Instr::Ret,
            Instr::Jump(7), // dead (both branches return), still emitted
            Instr::PushInt(2),
            Instr::Ret,
            Instr::PushUnit,
            Instr::Ret,
        ]
    );
}

#[test]
fn while_shape() {
    let code = code_of("fun f(n: int): unit { while (n > 0) { n = n - 1; } }", "f");
    assert_eq!(
        code,
        vec![
            Instr::LoadLocal(0),   // 0: cond
            Instr::PushInt(0),     // 1
            Instr::Gt,             // 2
            Instr::JumpIfFalse(9), // 3
            Instr::LoadLocal(0),   // 4: body
            Instr::PushInt(1),     // 5
            Instr::Sub,            // 6
            Instr::StoreLocal(0),  // 7
            Instr::Jump(0),        // 8: back edge
            Instr::PushUnit,       // 9
            Instr::Ret,
        ]
    );
}

#[test]
fn short_circuit_and_shape() {
    let code = code_of("fun f(a: bool, b: bool): bool { return a && b; }", "f");
    assert_eq!(
        code,
        vec![
            Instr::LoadLocal(0),
            Instr::JumpIfFalse(4),
            Instr::LoadLocal(1),
            Instr::Jump(5),
            Instr::PushBool(false),
            Instr::Ret,
            Instr::PushUnit,
            Instr::Ret,
        ]
    );
}

#[test]
fn short_circuit_or_shape() {
    let code = code_of("fun f(a: bool, b: bool): bool { return a || b; }", "f");
    assert_eq!(
        code,
        vec![
            Instr::LoadLocal(0),
            Instr::JumpIfFalse(4),
            Instr::PushBool(true),
            Instr::Jump(5),
            Instr::LoadLocal(1),
            Instr::Ret,
            Instr::PushUnit,
            Instr::Ret,
        ]
    );
}

#[test]
fn record_literal_pushes_fields_in_declaration_order() {
    // Source order b-then-a must be reordered to declaration order a, b.
    let code = code_of(
        r#"
        struct p { a: int, b: string }
        fun f(): p { return p { b: "x", a: 1 }; }
        "#,
        "f",
    );
    assert!(
        matches!(
            &code[..3],
            [Instr::PushInt(1), Instr::PushStr(_), Instr::NewRecord(_)]
        ),
        "{code:?}"
    );
}

#[test]
fn array_literal_builds_incrementally() {
    let code = code_of("fun f(): [int] { return [7, 8]; }", "f");
    assert_eq!(
        &code[..7],
        &[
            Instr::NewArray(tal::Ty::Int),
            Instr::Dup,
            Instr::PushInt(7),
            Instr::ArrayPush,
            Instr::Dup,
            Instr::PushInt(8),
            Instr::ArrayPush,
        ]
    );
}

#[test]
fn null_comparison_lowers_to_is_null() {
    let code = code_of(
        "struct s { v: int } fun f(x: s): bool { return x != null; }",
        "f",
    );
    assert!(
        matches!(
            &code[..3],
            [Instr::LoadLocal(0), Instr::IsNull(_), Instr::Not]
        ),
        "{code:?}"
    );
}

#[test]
fn update_statement_is_one_instruction() {
    let code = code_of("fun f(): unit { update; }", "f");
    assert_eq!(code[0], Instr::UpdatePoint);
}

#[test]
fn break_and_continue_target_loop_boundaries() {
    let code = code_of(
        "fun f(n: int): unit { while (true) { if (n == 0) { break; } n = n - 1; continue; } }",
        "f",
    );
    // `break` jumps past the loop; `continue` jumps to the condition.
    let breaks: Vec<u32> = code
        .iter()
        .enumerate()
        .filter_map(|(i, ins)| match ins {
            Instr::Jump(t) if *t as usize > i => Some(*t),
            _ => None,
        })
        .collect();
    assert!(!breaks.is_empty(), "{code:?}");
    assert!(
        code.iter().any(|i| matches!(i, Instr::Jump(0))),
        "continue re-enters at the condition: {code:?}"
    );
}

#[test]
fn global_initialiser_code() {
    let m = compile("global g: int = 2 + 3;", "t", "v1", &Interface::new()).unwrap();
    assert_eq!(
        m.global("g").unwrap().init,
        vec![Instr::PushInt(2), Instr::PushInt(3), Instr::Add, Instr::Ret]
    );
}

#[test]
fn calls_use_symbolic_references() {
    let m = compile(
        "extern fun h(): int; fun g(): int { return 1; } fun f(): int { return g() + h(); }",
        "t",
        "v1",
        &Interface::new(),
    )
    .unwrap();
    let f = m.function("f").unwrap();
    let names: Vec<&str> = f
        .code
        .iter()
        .filter_map(|i| i.sym_ref())
        .filter_map(|s| m.symbol(s))
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(names, vec!["g", "h"]);
}
