//! Lazy (first-read) state transformation — the Javelus-style alternative
//! to the paper's eager design, kept behind [`TransformTiming::Lazy`].

use dsu_core::{
    apply_patch, compile_patch, interface_of, Manifest, PatchGen, TransformTiming, Transformer,
    UpdatePolicy,
};
use vm::{LinkMode, Process, Value};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).unwrap();
    p
}

fn lazy_policy() -> UpdatePolicy {
    UpdatePolicy {
        transform: TransformTiming::Lazy,
        ..UpdatePolicy::default()
    }
}

const V1: &str = r#"
    struct rec { id: int }
    global data: [rec] = new [rec];
    global probe_count: int = 0;
    fun fill(n: int): int {
        var i: int = 0;
        while (i < n) { push(data, rec { id: i * 2 }); i = i + 1; }
        return len(data);
    }
    fun total(): int {
        var s: int = 0;
        var i: int = 0;
        while (i < len(data)) { s = s + data[i].id; i = i + 1; }
        return s;
    }
"#;

const V2: &str = r#"
    struct rec { id: int, seen: int }
    global data: [rec] = new [rec];
    global probe_count: int = 0;
    fun fill(n: int): int {
        var i: int = 0;
        while (i < n) { push(data, rec { id: i * 2, seen: 0 }); i = i + 1; }
        return len(data);
    }
    fun total(): int {
        var s: int = 0;
        var i: int = 0;
        while (i < len(data)) { s = s + data[i].id; i = i + 1; }
        return s;
    }
"#;

#[test]
fn lazy_update_defers_transformation_to_first_read() {
    let gen = PatchGen::new().generate(V1, V2, "v1", "v2").unwrap();
    let mut p = boot(V1);
    p.call("fill", vec![Value::Int(100)]).unwrap();
    let before = p.call("total", vec![]).unwrap();

    let report = apply_patch(&mut p, &gen.patch, lazy_policy()).unwrap();
    assert_eq!(report.globals_transformed, 1, "armed, counted");
    // Not yet transformed: the host-visible raw value still holds
    // old-layout records and the pending flag is set.
    assert!(p.has_pending_transform("data"));

    // First guest read triggers the migration; state is preserved.
    assert_eq!(p.call("total", vec![]).unwrap(), before);
    assert!(!p.has_pending_transform("data"));
    // And it runs exactly once.
    assert_eq!(p.call("total", vec![]).unwrap(), before);
}

#[test]
fn lazy_pause_excludes_transform_cost() {
    let gen = PatchGen::new().generate(V1, V2, "v1", "v2").unwrap();

    let mut eager = boot(V1);
    eager.call("fill", vec![Value::Int(50_000)]).unwrap();
    let r_eager = apply_patch(&mut eager, &gen.patch, UpdatePolicy::default()).unwrap();

    let mut lazy = boot(V1);
    lazy.call("fill", vec![Value::Int(50_000)]).unwrap();
    let r_lazy = apply_patch(&mut lazy, &gen.patch, lazy_policy()).unwrap();

    assert!(
        r_lazy.timings.transform * 10 < r_eager.timings.transform,
        "lazy pause {:?} must be far below eager {:?}",
        r_lazy.timings.transform,
        r_eager.timings.transform
    );
    // Both end at the same state once read.
    assert_eq!(
        eager.call("total", vec![]).unwrap(),
        lazy.call("total", vec![]).unwrap()
    );
}

#[test]
fn guest_store_before_read_supersedes_pending_transform() {
    let gen = PatchGen::new().generate(V1, V2, "v1", "v2").unwrap();
    let mut p = boot(V1);
    p.call("fill", vec![Value::Int(10)]).unwrap();
    apply_patch(&mut p, &gen.patch, lazy_policy()).unwrap();

    // New code rebuilds the global wholesale before anything reads it:
    // fill() stores a fresh (new-layout) array... but fill() reads `data`
    // via push? No: fill() only reads `data` through push(data, ..),
    // which is a read — so this exercises read-triggering through the
    // new fill too.
    assert!(p.has_pending_transform("data"));
    p.call("fill", vec![Value::Int(1)]).unwrap();
    assert!(!p.has_pending_transform("data"));
    // 10 migrated records + 1 new one.
    let Value::Array(a) = p.global_value("data").unwrap() else {
        panic!()
    };
    assert_eq!(a.borrow().len(), 11);
}

#[test]
fn transformer_reading_its_own_global_sees_old_value_once() {
    // A manual transformer whose body reads the global it transforms:
    // the pending flag must clear first, or this would recurse forever.
    let mut p = boot("global g: int = 5; fun read(): int { return g; }");
    let patch = compile_patch(
        r#"
        fun xg(old: int): int { return old + g; }
        "#,
        "v1",
        "v2",
        &interface_of(&p),
        Manifest {
            adds: vec!["xg".into()],
            transformers: vec![Transformer {
                global: "g".into(),
                function: "xg".into(),
            }],
            ..Manifest::default()
        },
    )
    .unwrap();
    apply_patch(&mut p, &patch, lazy_policy()).unwrap();
    // old(5) + g-as-seen-by-transformer(5) = 10.
    assert_eq!(p.call("read", vec![]).unwrap(), Value::Int(10));
    assert_eq!(p.call("read", vec![]).unwrap(), Value::Int(10), "runs once");
}

#[test]
fn lazy_transform_survives_rollback_semantics() {
    // Snapshot-restore clears armed transforms along with the bindings.
    let gen = PatchGen::new().generate(V1, V2, "v1", "v2").unwrap();
    let mut p = boot(V1);
    p.call("fill", vec![Value::Int(5)]).unwrap();
    let snap = p.snapshot();
    apply_patch(&mut p, &gen.patch, lazy_policy()).unwrap();
    assert!(p.has_pending_transform("data"));
    p.restore(snap);
    assert!(!p.has_pending_transform("data"));
    assert_eq!(p.call("total", vec![]).unwrap(), Value::Int(2 + 4 + 6 + 8));
}

#[test]
fn failing_lazy_transformer_traps_at_first_read_not_apply() {
    let mut p = boot("global g: int = 0; fun read(): int { return 10 / g; }");
    // Transformer divides by zero.
    let patch = compile_patch(
        "fun xg(old: int): int { return 1 / old; }",
        "v1",
        "v2",
        &interface_of(&p),
        Manifest {
            adds: vec!["xg".into()],
            transformers: vec![Transformer {
                global: "g".into(),
                function: "xg".into(),
            }],
            ..Manifest::default()
        },
    )
    .unwrap();
    // Apply succeeds (nothing ran yet)...
    apply_patch(&mut p, &patch, lazy_policy()).unwrap();
    // ...the trap surfaces at the first read. This is the lazy design's
    // key weakness relative to the paper's eager+rollback: failures are
    // no longer confined to the update.
    let e = p.call("read", vec![]).unwrap_err();
    assert_eq!(e, vm::Trap::DivByZero);
}
