//! Updater failure paths: strict aborts, non-strict drains, and the
//! pause log that instruments both.

use dsu_core::{compile_patch, interface_of, Manifest, PatchGen, RunError, Updater};
use vm::{LinkMode, Process, Value};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).unwrap();
    p
}

// The update point sits in `spin`, but the patched function is `tick`:
// the active `spin` frame keeps running old code, while each iteration's
// `tick` call dispatches to whichever version is bound.
const SPIN: &str = r#"
    global n: int = 0;
    fun tick(): unit { n = n + 1; }
    fun spin(k: int): int {
        var i: int = 0;
        while (i < k) { tick(); update; i = i + 1; }
        return n;
    }
"#;

/// A patch whose manifest claims to replace a function the module does
/// not define — linking rejects it.
fn bad_patch(p: &Process) -> dsu_core::Patch {
    compile_patch(
        "fun other(): int { return 2; }",
        "v1",
        "v2",
        &interface_of(p),
        Manifest {
            replaces: vec!["spin".into()],
            adds: vec!["other".into()],
            ..Manifest::default()
        },
    )
    .unwrap()
}

#[test]
fn strict_failure_mid_run_leaves_process_consistent() {
    let mut p = boot(SPIN);
    let mut up = Updater::new();
    assert!(up.strict);
    let bad = bad_patch(&p);
    up.enqueue(&mut p, bad);

    let e = up.run(&mut p, "spin", vec![Value::Int(2)]).unwrap_err();
    assert!(matches!(e, RunError::Update(_)), "{e}");

    // The suspended run was discarded cleanly: no dangling guest stack,
    // no armed update request, nothing left queued.
    assert!(!p.is_suspended());
    assert!(!p.update_requested());
    assert_eq!(up.pending_count(), 0);
    // Strict failures abort; they are not recorded as tolerated failures.
    assert!(up.failures().is_empty());
    assert!(up.log().is_empty());

    // State mutated before the abort persists (the first iteration ran),
    // and the process is fully runnable on the old version.
    assert_eq!(p.global_value("n"), Some(Value::Int(1)));
    assert_eq!(
        up.run(&mut p, "spin", vec![Value::Int(2)]).unwrap(),
        Value::Int(3)
    );
}

#[test]
fn strict_failure_keeps_later_patches_queued() {
    let mut p = boot(SPIN);
    let mut up = Updater::new();
    let bad = bad_patch(&p);
    let good = PatchGen::new()
        .generate(SPIN, &SPIN.replace("n = n + 1", "n = n + 2"), "v1", "v2")
        .unwrap()
        .patch;
    up.enqueue(&mut p, bad);
    up.enqueue(&mut p, good);

    assert!(up.run(&mut p, "spin", vec![Value::Int(1)]).is_err());
    // The failing patch was dropped; the one behind it is still pending
    // and the process stays armed so the next update point takes it.
    assert_eq!(up.pending_count(), 1);
    assert!(p.update_requested());

    // The next run applies the survivor: iteration 1 adds 1 (old code,
    // n: 1 -> 2), the patch lands at the update point, iteration 2 adds 2.
    assert_eq!(
        up.run(&mut p, "spin", vec![Value::Int(2)]).unwrap(),
        Value::Int(4)
    );
    assert_eq!(up.log().len(), 1);
}

#[test]
fn non_strict_drains_queue_and_records_failures() {
    let mut p = boot(SPIN);
    let mut up = Updater::new();
    up.strict = false;
    let good = PatchGen::new()
        .generate(SPIN, &SPIN.replace("n = n + 1", "n = n + 10"), "v1", "v2")
        .unwrap()
        .patch;
    let (bad_a, bad_b) = (bad_patch(&p), bad_patch(&p));
    up.enqueue(&mut p, bad_a);
    up.enqueue(&mut p, good);
    up.enqueue(&mut p, bad_b);

    // The run completes: failures are tolerated, the good patch applies.
    // Iteration 1 under old code (n: 0 -> 1), iterations 2-3 under new.
    assert_eq!(
        up.run(&mut p, "spin", vec![Value::Int(3)]).unwrap(),
        Value::Int(21)
    );
    assert_eq!(up.failures().len(), 2);
    assert_eq!(up.log().len(), 1);
    assert_eq!(up.pending_count(), 0);
    assert!(!p.update_requested());
}

#[test]
fn pause_log_records_mid_run_applies() {
    let mut p = boot(SPIN);
    let mut up = Updater::new();
    let good = PatchGen::new()
        .generate(SPIN, &SPIN.replace("n = n + 1", "n = n + 10"), "v1", "v2")
        .unwrap()
        .patch;
    assert!(up.pauses().is_empty());
    up.enqueue(&mut p, good);
    up.run(&mut p, "spin", vec![Value::Int(2)]).unwrap();

    let pauses = up.pauses();
    assert_eq!(pauses.len(), 1);
    // The pause covers (at least) the apply itself.
    assert!(pauses[0].dur >= up.log()[0].timings.total());
}

#[test]
fn rollback_chain_walks_the_ring_backwards() {
    let mut p = boot(SPIN);
    let mut up = Updater::new();
    let v2_src = SPIN.replace("n = n + 1", "n = n + 10");
    let v3_src = SPIN.replace("n = n + 1", "n = n + 100");
    let p12 = PatchGen::new()
        .generate(SPIN, &v2_src, "v1", "v2")
        .unwrap()
        .patch;
    let p23 = PatchGen::new()
        .generate(&v2_src, &v3_src, "v2", "v3")
        .unwrap()
        .patch;
    up.enqueue(&mut p, p12);
    up.run(&mut p, "spin", vec![Value::Int(1)]).unwrap();
    up.enqueue(&mut p, p23);
    up.run(&mut p, "spin", vec![Value::Int(1)]).unwrap();
    assert_eq!(
        up.snapshot_transitions(),
        vec![
            ("v1".to_string(), "v2".to_string()),
            ("v2".to_string(), "v3".to_string()),
        ]
    );

    // One call queues both hops; clamping keeps a too-deep request sane.
    assert_eq!(up.enqueue_rollback_chain(&mut p, 5), 2);
    assert_eq!(up.pending_count(), 2);
    up.run(&mut p, "spin", vec![Value::Int(1)]).unwrap();

    // Both restores applied newest-first: v3 -> v2, then v2 -> v1.
    let log = up.log();
    assert_eq!(log.len(), 4);
    let hops: Vec<(&str, &str, bool)> = log[2..]
        .iter()
        .map(|r| {
            (
                r.from_version.as_str(),
                r.to_version.as_str(),
                r.rolled_back,
            )
        })
        .collect();
    assert_eq!(hops, vec![("v3", "v2", true), ("v2", "v1", true)]);
    assert!(up.snapshot_transitions().is_empty());

    // The process serves v1 semantics again (+1 per tick).
    let before = match p.global_value("n") {
        Some(Value::Int(v)) => v,
        other => panic!("{other:?}"),
    };
    assert_eq!(
        up.run(&mut p, "spin", vec![Value::Int(2)]).unwrap(),
        Value::Int(before + 2)
    );
}

#[test]
fn updater_state_survives_a_save_load_round_trip() {
    let mut p = boot(SPIN);
    let mut up = Updater::new();
    let v2_src = SPIN.replace("n = n + 1", "n = n + 10");
    let p12 = PatchGen::new()
        .generate(SPIN, &v2_src, "v1", "v2")
        .unwrap()
        .patch;
    up.enqueue(&mut p, p12);
    up.run(&mut p, "spin", vec![Value::Int(1)]).unwrap();

    // Leave one forward patch and one restore pending, then "crash".
    let p23 = PatchGen::new()
        .generate(
            &v2_src,
            &SPIN.replace("n = n + 1", "n = n + 100"),
            "v2",
            "v3",
        )
        .unwrap()
        .patch;
    up.enqueue(&mut p, p23);
    up.enqueue_snapshot_rollback(&mut p);
    let saved = up.save_state();

    // A fresh updater restores ring + queue and drives them to completion.
    let mut up2 = Updater::new();
    up2.strict = false;
    assert_eq!(up2.load_state(&mut p, &saved).unwrap(), 2);
    assert_eq!(up2.pending_count(), 2);
    assert_eq!(
        up2.snapshot_transitions(),
        vec![("v1".to_string(), "v2".to_string())]
    );
    assert!(p.update_requested());
    up2.run(&mut p, "spin", vec![Value::Int(1)]).unwrap();
    let log = up2.log();
    // v2 -> v3 forward, then the restore pops the recovered ring. The
    // restore was enqueued against the pre-crash top (v2 -> v1); the ring
    // re-read at apply time agrees because the v2->v3 apply pushed and
    // the pop takes the newest entry (v3 -> v2).
    assert_eq!(log.len(), 2);
    assert_eq!(
        (log[0].from_version.as_str(), log[0].to_version.as_str()),
        ("v2", "v3")
    );
    assert!(log[1].rolled_back);

    // Garbage inputs error without clobbering the updater.
    assert!(up2.load_state(&mut p, "nope").is_err());
    assert!(up2
        .load_state(&mut p, "dsu-updater-state 1\nring 5\nxx")
        .is_err());
}
