//! Update-safety (compat) analysis corner-case suite.
//!
//! Every rejection here is a patch that *verified* as code but would have
//! broken the running program; every acceptance is a patch the analysis
//! must not over-refuse.

use dsu_core::{
    apply_patch, compile_patch, interface_of, Manifest, Transformer, TypeAlias, UpdateError,
    UpdatePolicy, Updater,
};
use vm::{LinkMode, Process, Value};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).expect("compiles");
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).expect("links");
    p
}

fn patch(p: &Process, src: &str, manifest: Manifest) -> dsu_core::Patch {
    compile_patch(src, "v1", "v2", &interface_of(p), manifest).expect("patch compiles")
}

fn expect_compat_error(p: &mut Process, patch: dsu_core::Patch, needle: &str) {
    match apply_patch(p, &patch, UpdatePolicy::default()) {
        Ok(_) => panic!("patch should be rejected ({needle})"),
        Err(UpdateError::Compat(msg)) => {
            assert!(msg.contains(needle), "expected {needle:?} in `{msg}`")
        }
        Err(other) => panic!("expected Compat error containing {needle:?}, got {other}"),
    }
}

// ----------------------- manifest/module agreement -----------------------

#[test]
fn manifest_must_match_module_contents() {
    let base = "fun f(): int { return 1; }";
    let mut p = boot(base);
    // Claims to replace something the module does not define.
    let pt = patch(
        &p,
        "fun g(): int { return 2; }",
        Manifest {
            replaces: vec!["f".into()],
            adds: vec!["g".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "does not define");

    // Module defines a function the manifest does not mention.
    let pt = patch(&p, "fun g(): int { return 2; }", Manifest::default());
    expect_compat_error(&mut p, pt, "not listed as replaced or added");

    // Module defines a global the manifest does not mention.
    let pt = patch(
        &p,
        "global x: int = 1; fun g(): int { return x; }",
        Manifest {
            adds: vec!["g".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "not listed in new_globals");
}

#[test]
fn replace_requires_existing_binding_and_add_requires_fresh_name() {
    let mut p = boot("fun f(): int { return 1; }");
    let pt = patch(
        &p,
        "fun ghost(): int { return 2; }",
        Manifest {
            replaces: vec!["ghost".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "not bound");

    let pt = patch(
        &p,
        "fun f(): int { return 2; }",
        Manifest {
            adds: vec!["f".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "already exists");
}

#[test]
fn duplicate_manifest_entries_are_rejected() {
    let mut p = boot("fun f(): int { return 1; }");
    let pt = patch(
        &p,
        "fun f(): int { return 2; }",
        Manifest {
            replaces: vec!["f".into(), "f".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "more than once");
}

// ------------------------------- removals -------------------------------

#[test]
fn removal_rules() {
    let base = r#"
        fun helper(): int { return 1; }
        fun user(): int { return helper(); }
        fun bystander(): int { return 0; }
    "#;
    // Patch code itself referencing the removed function is rejected.
    let mut p = boot(base);
    let pt = patch(
        &p,
        "fun user(): int { return helper(); }",
        Manifest {
            replaces: vec!["user".into()],
            removes: vec!["helper".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "patch code references removed");

    // Removing with the last reference also removed/replaced: accepted.
    let mut p = boot(base);
    let pt = patch(
        &p,
        "fun user(): int { return 42; }",
        Manifest {
            replaces: vec!["user".into()],
            removes: vec!["helper".into()],
            ..Manifest::default()
        },
    );
    apply_patch(&mut p, &pt, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("user", vec![]).unwrap(), Value::Int(42));
    assert!(p.function_id("helper").is_none());
    assert_eq!(p.call("bystander", vec![]).unwrap(), Value::Int(0));
}

#[test]
fn removed_function_can_be_reintroduced_later() {
    let mut p = boot("fun helper(): int { return 1; } fun f(): int { return helper(); }");
    let pt = patch(
        &p,
        "fun f(): int { return 0; }",
        Manifest {
            replaces: vec!["f".into()],
            removes: vec!["helper".into()],
            ..Manifest::default()
        },
    );
    apply_patch(&mut p, &pt, UpdatePolicy::default()).unwrap();
    // Re-add under the same name with a different signature — legal,
    // since nothing references the old one.
    let pt = patch(
        &p,
        "fun helper(x: int): int { return x * 2; }",
        Manifest {
            adds: vec!["helper".into()],
            ..Manifest::default()
        },
    );
    apply_patch(&mut p, &pt, UpdatePolicy::default()).unwrap();
    assert_eq!(
        p.call("helper", vec![Value::Int(21)]).unwrap(),
        Value::Int(42)
    );
}

// ---------------------------- type changes ----------------------------

#[test]
fn type_change_requires_module_definition_and_binding() {
    let mut p = boot("struct s { v: int } fun f(x: s): int { return x.v; }");
    let pt = patch(
        &p,
        "fun f(x: s): int { return x.v; }",
        Manifest {
            replaces: vec!["f".into()],
            type_changes: vec!["s".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "not defined by the module");

    let pt = patch(
        &p,
        "struct ghost2 { v: int } fun f(x: s): int { return x.v; }",
        Manifest {
            replaces: vec!["f".into()],
            type_changes: vec!["ghost".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "not bound");
}

#[test]
fn type_change_requires_all_users_updated() {
    let base = r#"
        struct s { v: int }
        fun reader(x: s): int { return x.v; }
        fun maker(): s { return s { v: 1 }; }
    "#;
    let mut p = boot(base);
    // Only `maker` updated: `reader` still uses the old layout.
    let pt = patch(
        &p,
        "struct s { v: int, w: int } fun maker(): s { return s { v: 1, w: 2 }; }",
        Manifest {
            replaces: vec!["maker".into()],
            type_changes: vec!["s".into()],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "live function `reader` still uses it");
}

#[test]
fn alias_must_match_old_structure() {
    let base = r#"
        struct s { v: int }
        global g: s = s { v: 1 };
        fun f(): int { return g.v; }
    "#;
    let mut p = boot(base);
    // Alias claims the old `s` had a string field: rejected.
    let pt = patch(
        &p,
        r#"
        struct s__old { v: string }
        struct s { v: int, w: int }
        fun f(): int { return g.v + g.w; }
        fun x(old: s__old): s { return s { v: 0, w: 0 }; }
        "#,
        Manifest {
            replaces: vec!["f".into()],
            adds: vec!["x".into()],
            type_changes: vec!["s".into()],
            type_aliases: vec![TypeAlias {
                alias: "s__old".into(),
                target: "s".into(),
            }],
            transformers: vec![Transformer {
                global: "g".into(),
                function: "x".into(),
            }],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "does not match the old structure");
}

#[test]
fn transformer_signature_is_checked() {
    let base = r#"
        struct s { v: int }
        global g: s = s { v: 1 };
        fun f(): int { return g.v; }
    "#;
    // Wrong parameter type (takes the NEW type, not the old alias).
    let mut p = boot(base);
    let pt = patch(
        &p,
        r#"
        struct s__old { v: int }
        struct s { v: int, w: int }
        fun f(): int { return g.v + g.w; }
        fun x(old: s): s { return old; }
        "#,
        Manifest {
            replaces: vec!["f".into()],
            adds: vec!["x".into()],
            type_changes: vec!["s".into()],
            type_aliases: vec![TypeAlias {
                alias: "s__old".into(),
                target: "s".into(),
            }],
            transformers: vec![Transformer {
                global: "g".into(),
                function: "x".into(),
            }],
            ..Manifest::default()
        },
    );
    expect_compat_error(&mut p, pt, "must take (s__old)");
}

#[test]
fn transformer_may_target_unchanged_global() {
    // A transformer on a global of unchanged type is a plain value
    // migration (e.g. re-initialisation) and is allowed.
    let mut p = boot("global g: int = 5; fun f(): int { return g; }");
    let pt = patch(
        &p,
        "fun x(old: int): int { return old * 100; }",
        Manifest {
            adds: vec!["x".into()],
            transformers: vec![Transformer {
                global: "g".into(),
                function: "x".into(),
            }],
            ..Manifest::default()
        },
    );
    apply_patch(&mut p, &pt, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(500));
}

// ------------------------- active-code rules -------------------------

#[test]
fn signature_change_refused_while_referenced_by_active_frame() {
    let src = r#"
        fun helper(x: int): int { return x; }
        fun work(): int {
            update;
            return helper(1);
        }
    "#;
    let mut p = boot(src);
    // Suspend inside `work`, whose continuation still calls helper with
    // the OLD calling convention.
    p.request_update(true);
    assert_eq!(p.run("work", vec![]).unwrap(), vm::Outcome::Suspended);
    let pt = patch(
        &p,
        r#"
        fun helper(x: int, y: int): int { return x + y; }
        fun work(): int { update; return helper(1, 2); }
        "#,
        Manifest {
            replaces: vec!["helper".into(), "work".into()],
            ..Manifest::default()
        },
    );
    let e = apply_patch(&mut p, &pt, UpdatePolicy::default()).unwrap_err();
    assert!(matches!(e, UpdateError::ActiveCode(_)), "{e}");
    // Clean up the suspension; the same patch applies at quiescence.
    p.discard_suspended();
    p.request_update(false);
    apply_patch(&mut p, &pt, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("work", vec![]).unwrap(), Value::Int(3));
}

#[test]
fn type_change_refused_while_type_user_is_active() {
    let src = r#"
        struct s { v: int }
        global g: s = s { v: 1 };
        fun touch(): int {
            var local: s = g;
            update;
            return local.v;
        }
    "#;
    let mut p = boot(src);
    p.request_update(true);
    assert_eq!(p.run("touch", vec![]).unwrap(), vm::Outcome::Suspended);
    let pt = patch(
        &p,
        r#"
        struct s__old { v: int }
        struct s { v: int, w: int }
        fun touch(): int {
            var local: s = g;
            update;
            return local.v + local.w;
        }
        fun x(old: s__old): s {
            if (old == null) { return null; }
            return s { v: old.v, w: 0 };
        }
        "#,
        Manifest {
            replaces: vec!["touch".into()],
            adds: vec!["x".into()],
            type_changes: vec!["s".into()],
            type_aliases: vec![TypeAlias {
                alias: "s__old".into(),
                target: "s".into(),
            }],
            transformers: vec![Transformer {
                global: "g".into(),
                function: "x".into(),
            }],
            ..Manifest::default()
        },
    );
    let e = apply_patch(&mut p, &pt, UpdatePolicy::default()).unwrap_err();
    assert!(
        matches!(e, UpdateError::ActiveCode(ref fns) if fns.contains(&"touch".to_string())),
        "{e}"
    );
}

// --------------------------- updater driver ---------------------------

#[test]
fn updater_retries_nothing_after_strict_failure() {
    let mut p = boot("fun f(): int { update; return 1; }");
    let bad = patch(
        &p,
        "fun g(): int { return 1; }",
        Manifest {
            replaces: vec!["f".into()],
            adds: vec!["g".into()],
            ..Manifest::default()
        },
    );
    let good = patch(
        &p,
        "fun f(): int { update; return 2; }",
        Manifest {
            replaces: vec!["f".into()],
            ..Manifest::default()
        },
    );
    let mut up = Updater::new();
    up.enqueue(&mut p, bad);
    up.enqueue(&mut p, good);
    assert!(up.run(&mut p, "f", vec![]).is_err());
    // The good patch is still pending; a later run applies it.
    assert_eq!(up.pending_count(), 1);
    assert_eq!(
        up.run(&mut p, "f", vec![]).unwrap(),
        Value::Int(1),
        "old f finishes"
    );
    assert_eq!(up.run(&mut p, "f", vec![]).unwrap(), Value::Int(2));
}
