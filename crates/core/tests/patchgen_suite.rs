//! Patch-generator edge-case suite.

use dsu_core::{apply_patch, PatchGen, PatchGenError, UpdatePolicy};
use vm::{LinkMode, Process, Value};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).unwrap();
    p
}

fn gen(old: &str, new: &str) -> dsu_core::GeneratedPatch {
    PatchGen::new().generate(old, new, "v1", "v2").unwrap()
}

#[test]
fn identical_sources_yield_an_empty_patch() {
    let src = "fun f(): int { return 1; }";
    let g = gen(src, src);
    assert_eq!(g.stats.functions_changed, 0);
    assert_eq!(g.patch.manifest.replaces.len(), 0);
    assert_eq!(g.patch.manifest.adds.len(), 0);
    // Applying the empty patch is a harmless no-op.
    let mut p = boot(src);
    let report = apply_patch(&mut p, &g.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(report.functions_replaced, 0);
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(1));
}

#[test]
fn whitespace_and_comment_changes_are_not_changes() {
    let old = "fun f(x: int): int { return x + 1; }";
    let new = r#"
        // a comment
        fun f( x : int ) : int {
            return (x) + 1; /* same body */
        }
    "#;
    let g = gen(old, new);
    assert_eq!(
        g.stats.functions_changed, 0,
        "canonical form ignores formatting"
    );
}

#[test]
fn function_removal_flows_into_manifest() {
    let old = r#"
        fun helper(): int { return 1; }
        fun f(): int { return helper(); }
    "#;
    let new = "fun f(): int { return 7; }";
    let g = gen(old, new);
    assert_eq!(g.stats.functions_removed, 1);
    assert_eq!(g.patch.manifest.removes, vec!["helper".to_string()]);
    let mut p = boot(old);
    apply_patch(&mut p, &g.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(7));
    assert!(p.function_id("helper").is_none());
}

#[test]
fn new_extern_in_new_version_compiles_into_patch() {
    let old = "fun f(): int { return 1; }";
    let new = r#"
        extern fun beep(): unit;
        fun f(): int { beep(); return 2; }
    "#;
    let g = gen(old, new);
    let mut p = Process::new(LinkMode::Updateable);
    // The host must exist before the patch links.
    p.register_host(
        "beep",
        tal::FnSig::new(vec![], tal::Ty::Unit),
        Box::new(|_| Ok(Value::Unit)),
    );
    let m = popcorn::compile(old, "app", "v1", &popcorn::Interface::new()).unwrap();
    p.load_module(&m).unwrap();
    apply_patch(&mut p, &g.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(2));
}

#[test]
fn global_initialiser_change_alone_does_not_transform() {
    // Changing only a global's initial value must NOT reset live state —
    // the paper's semantics: initialisers run at program start, not at
    // updates.
    let old = "global g: int = 1; fun bump(): int { g = g + 1; return g; }";
    let new = "global g: int = 999; fun bump(): int { g = g + 1; return g; }";
    let g = gen(old, new);
    assert_eq!(g.stats.transformers, 0);
    let mut p = boot(old);
    p.call("bump", vec![]).unwrap(); // g = 2
    apply_patch(&mut p, &g.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(
        p.call("bump", vec![]).unwrap(),
        Value::Int(3),
        "state kept, not re-initialised"
    );
}

#[test]
fn struct_field_removal_is_mechanical() {
    let old = r#"
        struct rec { id: int, junk: string }
        global data: [rec] = new [rec];
        fun add(n: int): unit { push(data, rec { id: n, junk: "x" }); }
        fun first(): int { if (len(data) == 0) { return -1; } return data[0].id; }
    "#;
    let new = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun add(n: int): unit { push(data, rec { id: n }); }
        fun first(): int { if (len(data) == 0) { return -1; } return data[0].id; }
    "#;
    let g = gen(old, new);
    assert_eq!(g.stats.transformers_auto, 1, "field drop is mechanical");
    let mut p = boot(old);
    p.call("add", vec![Value::Int(42)]).unwrap();
    apply_patch(&mut p, &g.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("first", vec![]).unwrap(), Value::Int(42));
}

#[test]
fn field_type_change_requires_manual_transformer() {
    let old = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun f(): int { return len(data); }
    "#;
    let new = r#"
        struct rec { id: string }
        global data: [rec] = new [rec];
        fun f(): int { return len(data); }
    "#;
    let e = PatchGen::new().generate(old, new, "v1", "v2").unwrap_err();
    assert!(
        matches!(e, PatchGenError::NeedsManualTransformer { ref global, .. } if global == "data"),
        "{e}"
    );
}

#[test]
fn scalar_named_global_transforms_with_null_guard() {
    let old = r#"
        struct cfg { port: int }
        global config: cfg = null;
        fun port(): int { if (config == null) { return -1; } return config.port; }
    "#;
    let new = r#"
        struct cfg { port: int, tls: bool }
        global config: cfg = null;
        fun port(): int { if (config == null) { return -1; } return config.port; }
    "#;
    let g = gen(old, new);
    assert_eq!(g.stats.transformers_auto, 1);
    // Null global survives (the generated transformer guards).
    let mut p = boot(old);
    apply_patch(&mut p, &g.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("port", vec![]).unwrap(), Value::Int(-1));
}

#[test]
fn generated_patch_source_is_reusable_text() {
    // The composed source itself is valid input for compile_patch with
    // the same manifest: no hidden state in GeneratedPatch.
    let old = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun get(i: int): int { return data[i].id; }
    "#;
    let new = r#"
        struct rec { id: int, hot: bool }
        global data: [rec] = new [rec];
        fun get(i: int): int { return data[i].id; }
    "#;
    let g = gen(old, new);
    let p = boot(old);
    let old_mod = popcorn::compile(old, "o", "v1", &popcorn::Interface::new()).unwrap();
    let iface = dsu_core::interface_of_module(&old_mod);
    let recompiled =
        dsu_core::compile_patch(&g.source, "v1", "v2", &iface, g.patch.manifest.clone()).unwrap();
    assert_eq!(recompiled.manifest, g.patch.manifest);
    drop(p);
}

#[test]
fn version_qualified_transformer_names_do_not_collide() {
    let v1 = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun f(): int { return len(data); }
    "#;
    let v2 = r#"
        struct rec { id: int, a: int }
        global data: [rec] = new [rec];
        fun f(): int { return len(data); }
    "#;
    let v3 = r#"
        struct rec { id: int, a: int, b: int }
        global data: [rec] = new [rec];
        fun f(): int { return len(data); }
    "#;
    let g12 = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();
    let g23 = PatchGen::new().generate(v2, v3, "v2", "v3").unwrap();
    assert_ne!(
        g12.patch.manifest.transformers[0].function,
        g23.patch.manifest.transformers[0].function
    );
    let mut p = boot(v1);
    apply_patch(&mut p, &g12.patch, UpdatePolicy::default()).unwrap();
    apply_patch(&mut p, &g23.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(0));
}
