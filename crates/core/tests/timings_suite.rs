//! Update-pause accounting: the per-phase breakdown must attribute every
//! phase to its own bucket and sum exactly to the reported total — and
//! the telemetry journal, when attached, must agree with it event for
//! event.

use dsu_core::{apply_patch, PatchGen, PhaseTimings, UpdatePolicy, Updater};
use dsu_obs::journal::{validate_lifecycle, Stage};
use dsu_obs::Journal;
use std::time::Duration;
use vm::{LinkMode, Process, Value};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).unwrap();
    p
}

/// Applies a patch that exercises every phase (verify, compat, link,
/// bind, new-global init, state transform) and checks the breakdown.
#[test]
fn phases_sum_exactly_to_total() {
    let old = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun add(n: int): unit { push(data, rec { id: n }); }
        fun sum(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(data)) { s = s + data[i].id; i = i + 1; }
            return s;
        }
    "#;
    let new = r#"
        struct rec { id: int, hot: bool }
        global data: [rec] = new [rec];
        global hits: int = 40 + 2;
        fun add(n: int): unit { push(data, rec { id: n, hot: false }); }
        fun sum(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(data)) { s = s + data[i].id; i = i + 1; }
            return s;
        }
    "#;
    let gen = PatchGen::new().generate(old, new, "v1", "v2").unwrap();
    assert!(
        !gen.patch.manifest.new_globals.is_empty(),
        "patch must add a global"
    );
    assert!(
        !gen.patch.manifest.transformers.is_empty(),
        "patch must transform state"
    );

    let mut p = boot(old);
    for n in 0..50 {
        p.call("add", vec![Value::Int(n)]).unwrap();
    }
    let report = apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
    let t = report.timings;

    // The breakdown is definitionally exact: total() is the sum of the
    // phase buckets, with no unattributed remainder.
    assert_eq!(
        t.drain + t.verify + t.compat + t.link + t.bind + t.init + t.transform,
        t.total(),
    );
    // A direct apply has no in-flight host work to wait for.
    assert_eq!(t.drain, Duration::ZERO);
    // Each phase actually ran and was measured into its own bucket.
    assert!(t.verify > Duration::ZERO, "verification was timed: {t:?}");
    assert!(
        t.compat > Duration::ZERO,
        "compat analysis was timed: {t:?}"
    );
    assert!(t.link > Duration::ZERO, "linking was timed: {t:?}");
    assert!(t.init > Duration::ZERO, "new-global init was timed: {t:?}");
    assert!(
        t.transform > Duration::ZERO,
        "state transform was timed: {t:?}"
    );
    // Initialisation is no longer misattributed to state transformation:
    // the new global got its (computed) initial value during `init`.
    assert_eq!(p.global_value("hits"), Some(Value::Int(42)));
    // And the transformer's work really happened under `transform`.
    assert_eq!(
        p.call("sum", vec![]).unwrap(),
        Value::Int((0..50).sum::<i64>())
    );
}

/// A patch with no new globals reports a zero init bucket.
#[test]
fn no_new_globals_means_zero_init_bucket() {
    let old = "fun f(): int { return 1; }";
    let new = "fun f(): int { return 2; }";
    let gen = PatchGen::new().generate(old, new, "v1", "v2").unwrap();
    let mut p = boot(old);
    let report = apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(report.timings.init, Duration::ZERO);
    assert_eq!(report.timings.transform, Duration::ZERO);
    assert!(report.timings.total() > Duration::ZERO);
}

/// Default-constructed timings are all-zero (fresh accounting baseline).
#[test]
fn default_timings_are_zero() {
    let t = PhaseTimings::default();
    assert_eq!(t.total(), Duration::ZERO);
}

/// With a journal attached, an applied update's lifecycle events carry
/// the report's phase durations verbatim: the journal's per-patch phase
/// sum equals `PhaseTimings::total()` *exactly*, not approximately.
#[test]
fn journal_durations_agree_with_phase_timings_exactly() {
    let old = "fun f(): int { return 1; }";
    let new = "fun f(): int { return 2; }";
    let gen = PatchGen::new().generate(old, new, "v1", "v2").unwrap();

    let mut p = boot(old);
    let mut updater = Updater::new();
    let journal = Journal::new();
    updater.set_journal(journal.clone(), Some(7));
    updater.enqueue(&mut p, gen.patch);
    updater.apply_pending(&mut p).unwrap();

    let report = &updater.log()[0];
    let events = journal.events();
    // One lifecycle: enqueued, seven phases, committed.
    assert_eq!(events.len(), 9);
    assert!(events.iter().all(|e| e.worker == Some(7)));
    assert!(events.iter().all(|e| e.update == 1));
    validate_lifecycle(&events).unwrap();

    let phase_dur = |stage: Stage| {
        events
            .iter()
            .find(|e| e.stage == stage)
            .and_then(|e| e.dur)
            .unwrap_or_else(|| panic!("missing {stage:?}"))
    };
    let t = report.timings;
    assert_eq!(phase_dur(Stage::Drain), t.drain);
    assert_eq!(phase_dur(Stage::Verify), t.verify);
    assert_eq!(phase_dur(Stage::Compat), t.compat);
    assert_eq!(phase_dur(Stage::Link), t.link);
    assert_eq!(phase_dur(Stage::Bind), t.bind);
    assert_eq!(phase_dur(Stage::Init), t.init);
    assert_eq!(phase_dur(Stage::Transform), t.transform);
    let journal_sum: Duration = Stage::PHASES.iter().map(|&s| phase_dur(s)).sum();
    assert_eq!(journal_sum, t.total(), "journal must copy timings verbatim");
    // The committed event records the total as its duration.
    assert_eq!(
        events.last().unwrap().dur,
        Some(t.total()),
        "committed event carries the pause total"
    );
}

/// Journal ordering invariants: sequence numbers and timestamps are
/// monotonic across lifecycles, and every lifecycle is phase-bracketed
/// (opens with `enqueued`, phases in pipeline order, closes with a
/// resolution).
#[test]
fn journal_events_are_monotonic_and_bracketed() {
    let v1 = "fun f(): int { return 1; }";
    let v2 = "fun f(): int { return 2; }";
    let v3 = "fun f(): int { return 3; }";

    let mut p = boot(v1);
    let mut updater = Updater::new();
    let journal = Journal::new();
    updater.set_journal(journal.clone(), None);

    let gen12 = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();
    let gen23 = PatchGen::new().generate(v2, v3, "v2", "v3").unwrap();
    updater.enqueue(&mut p, gen12.patch);
    updater.enqueue(&mut p, gen23.patch);
    updater.apply_pending(&mut p).unwrap();

    let events = journal.events();
    assert_eq!(events.len(), 18, "two full lifecycles");
    for w in events.windows(2) {
        assert!(w[1].seq > w[0].seq, "seq must increase");
        assert!(w[1].at >= w[0].at, "timestamps must not go backwards");
    }
    assert_eq!(journal.update_ids(), vec![1, 2]);
    for id in journal.update_ids() {
        validate_lifecycle(&journal.events_for(id)).unwrap();
    }
    // JSONL export carries one line per event, in order.
    assert_eq!(journal.to_jsonl().lines().count(), events.len());
}

/// A rejected patch's lifecycle closes with `aborted`, carrying the
/// failing phase; the failure log records the version transition and
/// phase alongside the error.
#[test]
fn journal_and_failure_log_carry_abort_context() {
    let old = "fun f(): int { return 1; }";
    let mut p = boot(old);
    // A patch whose manifest claims to replace a function it does not
    // define — linking rejects it.
    let bad = dsu_core::compile_patch(
        "fun other(): int { return 2; }",
        "v1",
        "v2",
        &dsu_core::interface_of(&p),
        dsu_core::Manifest {
            replaces: vec!["f".into()],
            adds: vec!["other".into()],
            ..dsu_core::Manifest::default()
        },
    )
    .unwrap();

    let mut updater = Updater::new();
    updater.strict = false;
    let journal = Journal::new();
    updater.set_journal(journal.clone(), Some(0));
    updater.enqueue(&mut p, bad);
    updater.apply_pending(&mut p).unwrap();

    let events = journal.events_for(1);
    validate_lifecycle(&events).unwrap();
    let aborted = events.last().unwrap();
    assert_eq!(aborted.stage, Stage::Aborted);
    let detail = aborted.detail.as_deref().unwrap();
    assert!(
        detail.starts_with("compat:"),
        "detail names phase: {detail}"
    );

    let failures = updater.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].from_version, "v1");
    assert_eq!(failures[0].to_version, "v2");
    assert_eq!(failures[0].phase, "compat");
    assert!(failures[0]
        .to_string()
        .contains("v1 -> v2 failed in compat"));
}
