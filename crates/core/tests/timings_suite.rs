//! Update-pause accounting: the per-phase breakdown must attribute every
//! phase to its own bucket and sum exactly to the reported total.

use dsu_core::{apply_patch, PatchGen, PhaseTimings, UpdatePolicy};
use std::time::Duration;
use vm::{LinkMode, Process, Value};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).unwrap();
    p
}

/// Applies a patch that exercises every phase (verify, compat, link,
/// bind, new-global init, state transform) and checks the breakdown.
#[test]
fn phases_sum_exactly_to_total() {
    let old = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun add(n: int): unit { push(data, rec { id: n }); }
        fun sum(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(data)) { s = s + data[i].id; i = i + 1; }
            return s;
        }
    "#;
    let new = r#"
        struct rec { id: int, hot: bool }
        global data: [rec] = new [rec];
        global hits: int = 40 + 2;
        fun add(n: int): unit { push(data, rec { id: n, hot: false }); }
        fun sum(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(data)) { s = s + data[i].id; i = i + 1; }
            return s;
        }
    "#;
    let gen = PatchGen::new().generate(old, new, "v1", "v2").unwrap();
    assert!(
        !gen.patch.manifest.new_globals.is_empty(),
        "patch must add a global"
    );
    assert!(
        !gen.patch.manifest.transformers.is_empty(),
        "patch must transform state"
    );

    let mut p = boot(old);
    for n in 0..50 {
        p.call("add", vec![Value::Int(n)]).unwrap();
    }
    let report = apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
    let t = report.timings;

    // The breakdown is definitionally exact: total() is the sum of the six
    // phase buckets, with no unattributed remainder.
    assert_eq!(
        t.verify + t.compat + t.link + t.bind + t.init + t.transform,
        t.total(),
    );
    // Each phase actually ran and was measured into its own bucket.
    assert!(t.verify > Duration::ZERO, "verification was timed: {t:?}");
    assert!(
        t.compat > Duration::ZERO,
        "compat analysis was timed: {t:?}"
    );
    assert!(t.link > Duration::ZERO, "linking was timed: {t:?}");
    assert!(t.init > Duration::ZERO, "new-global init was timed: {t:?}");
    assert!(
        t.transform > Duration::ZERO,
        "state transform was timed: {t:?}"
    );
    // Initialisation is no longer misattributed to state transformation:
    // the new global got its (computed) initial value during `init`.
    assert_eq!(p.global_value("hits"), Some(Value::Int(42)));
    // And the transformer's work really happened under `transform`.
    assert_eq!(
        p.call("sum", vec![]).unwrap(),
        Value::Int((0..50).sum::<i64>())
    );
}

/// A patch with no new globals reports a zero init bucket.
#[test]
fn no_new_globals_means_zero_init_bucket() {
    let old = "fun f(): int { return 1; }";
    let new = "fun f(): int { return 2; }";
    let gen = PatchGen::new().generate(old, new, "v1", "v2").unwrap();
    let mut p = boot(old);
    let report = apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
    assert_eq!(report.timings.init, Duration::ZERO);
    assert_eq!(report.timings.transform, Duration::ZERO);
    assert!(report.timings.total() > Duration::ZERO);
}

/// Default-constructed timings are all-zero (fresh accounting baseline).
#[test]
fn default_timings_are_zero() {
    let t = PhaseTimings::default();
    assert_eq!(t.total(), Duration::ZERO);
}
