//! Version tracking and best-effort rollback.
//!
//! The paper's dynamic linker keeps superseded code around (old frames may
//! still run it); this module adds an explicit version history so an
//! operator can *roll back* a bad update: bindings, slots, type names and
//! global values are restored from the snapshot taken before each update.
//! Rollback is best-effort in the same sense the paper discusses undoing
//! updates: state mutated in place by guest code after the update (not by
//! transformers, which are staged) is not reconstructed.
//!
//! This is the *manual* history tool. The [`crate::runtime::Updater`]
//! carries its own bounded [`crate::rollback::SnapshotRing`], recorded
//! automatically on every forward apply, plus an inverse-patch downgrade
//! path that preserves live state — see [`crate::rollback`].

use vm::{BindingSnapshot, Process};

/// One recorded version point.
#[derive(Debug)]
struct Entry {
    version: String,
    snapshot: BindingSnapshot,
}

/// Records binding snapshots keyed by version label.
#[derive(Debug, Default)]
pub struct VersionManager {
    entries: Vec<Entry>,
}

impl VersionManager {
    /// Creates an empty history.
    pub fn new() -> VersionManager {
        VersionManager::default()
    }

    /// Records the process's current bindings under `version`. Call this
    /// immediately *before* applying the patch that supersedes `version`.
    pub fn record(&mut self, proc: &Process, version: impl Into<String>) {
        self.entries.push(Entry {
            version: version.into(),
            snapshot: proc.snapshot(),
        });
    }

    /// Recorded version labels, oldest first.
    pub fn versions(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.version.as_str()).collect()
    }

    /// Rolls the process back to the bindings recorded for `version`,
    /// discarding every later recording. Returns `false` (and changes
    /// nothing) when the version is unknown.
    pub fn rollback_to(&mut self, proc: &mut Process, version: &str) -> bool {
        let Some(idx) = self.entries.iter().position(|e| e.version == version) else {
            return false;
        };
        let entry = self.entries.swap_remove(idx);
        self.entries.truncate(idx);
        proc.restore(entry.snapshot);
        true
    }

    /// Number of recorded versions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no versions are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
