//! On-disk patch format.
//!
//! A dynamic patch serialises to a single text file: a manifest header
//! followed by the module in `tal::text` object-code form. Because the
//! receiving process re-verifies every patch before linking (see
//! [`crate::apply_patch`]), a patch file needs no trust — exactly the
//! paper's verifiable-object-code story for patches distributed as files.
//!
//! ```text
//! dsu-patch 1
//! from v3
//! to v4
//! replace handle
//! add cache_hits_total
//! type-change cache_entry
//! type-alias cache_entry__old = cache_entry
//! transform cache = __xform_cache
//! ---module---
//! module patch-v4 v4
//! ...
//! ```

use std::error::Error;
use std::fmt;

use crate::patch::{Manifest, Patch, Transformer, TypeAlias};

/// Magic first line of the format.
const MAGIC: &str = "dsu-patch 1";
/// Separator between manifest and module text.
const MODULE_SEP: &str = "---module---";

/// A failure while reading a patch file.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchIoError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PatchIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "patch file error: {}", self.message)
    }
}

impl Error for PatchIoError {}

impl From<tal::text::TextError> for PatchIoError {
    fn from(e: tal::text::TextError) -> PatchIoError {
        PatchIoError {
            message: e.to_string(),
        }
    }
}

/// Serialises a patch to its file form.
pub fn save_patch(patch: &Patch) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("from {}\n", patch.from_version));
    out.push_str(&format!("to {}\n", patch.to_version));
    let m = &patch.manifest;
    for x in &m.replaces {
        out.push_str(&format!("replace {x}\n"));
    }
    for x in &m.adds {
        out.push_str(&format!("add {x}\n"));
    }
    for x in &m.removes {
        out.push_str(&format!("remove {x}\n"));
    }
    for x in &m.new_globals {
        out.push_str(&format!("new-global {x}\n"));
    }
    for x in &m.type_changes {
        out.push_str(&format!("type-change {x}\n"));
    }
    for x in &m.type_aliases {
        out.push_str(&format!("type-alias {} = {}\n", x.alias, x.target));
    }
    for x in &m.transformers {
        out.push_str(&format!("transform {} = {}\n", x.global, x.function));
    }
    out.push_str(MODULE_SEP);
    out.push('\n');
    out.push_str(&tal::text::emit(&patch.module));
    out
}

/// Reads a patch back from its file form.
///
/// # Errors
///
/// Returns [`PatchIoError`] on a malformed header or module section. The
/// result still needs [`crate::apply_patch`]'s verification — loading
/// performs no trust decisions.
pub fn load_patch(text: &str) -> Result<Patch, PatchIoError> {
    let err = |m: &str| PatchIoError {
        message: m.to_string(),
    };
    let (header, module_text) = text
        .split_once(&format!("{MODULE_SEP}\n"))
        .ok_or_else(|| err("missing `---module---` separator"))?;
    let mut lines = header.lines();
    if lines.next() != Some(MAGIC) {
        return Err(err("not a dsu-patch file (bad magic)"));
    }
    let mut from_version = None;
    let mut to_version = None;
    let mut manifest = Manifest::default();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line
            .split_once(' ')
            .ok_or_else(|| err(&format!("malformed manifest line `{line}`")))?;
        let rest = rest.trim();
        match key {
            "from" => from_version = Some(rest.to_string()),
            "to" => to_version = Some(rest.to_string()),
            "replace" => manifest.replaces.push(rest.to_string()),
            "add" => manifest.adds.push(rest.to_string()),
            "remove" => manifest.removes.push(rest.to_string()),
            "new-global" => manifest.new_globals.push(rest.to_string()),
            "type-change" => manifest.type_changes.push(rest.to_string()),
            "type-alias" => {
                let (alias, target) = rest
                    .split_once('=')
                    .ok_or_else(|| err("type-alias needs `alias = target`"))?;
                manifest.type_aliases.push(TypeAlias {
                    alias: alias.trim().to_string(),
                    target: target.trim().to_string(),
                });
            }
            "transform" => {
                let (global, function) = rest
                    .split_once('=')
                    .ok_or_else(|| err("transform needs `global = function`"))?;
                manifest.transformers.push(Transformer {
                    global: global.trim().to_string(),
                    function: function.trim().to_string(),
                });
            }
            other => return Err(err(&format!("unknown manifest key `{other}`"))),
        }
    }
    Ok(Patch {
        from_version: from_version.ok_or_else(|| err("missing `from`"))?,
        to_version: to_version.ok_or_else(|| err("missing `to`"))?,
        module: tal::text::parse(module_text)?,
        manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patchgen::PatchGen;

    #[test]
    fn round_trips_a_generated_patch() {
        let v1 = r#"
            struct rec { id: int }
            global data: [rec] = new [rec];
            fun get(i: int): int { return data[i].id; }
        "#;
        let v2 = r#"
            struct rec { id: int, seen: bool }
            global data: [rec] = new [rec];
            fun get(i: int): int { return data[i].id; }
        "#;
        let gen = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();
        let text = save_patch(&gen.patch);
        let back = load_patch(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(back, gen.patch);
        // Stability: save(load(save(p))) == save(p).
        assert_eq!(save_patch(&back), text);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(load_patch("").is_err());
        assert!(
            load_patch("dsu-patch 1\nfrom a\nto b\n").is_err(),
            "no separator"
        );
        assert!(
            load_patch("nonsense\n---module---\nmodule m v1\n").is_err(),
            "bad magic"
        );
        assert!(
            load_patch("dsu-patch 1\nto b\n---module---\nmodule m v1\n").is_err(),
            "missing from"
        );
        assert!(
            load_patch("dsu-patch 1\nfrom a\nto b\nbogus x\n---module---\nmodule m v1\n").is_err(),
            "unknown key"
        );
    }
}
