//! Dynamic patches.
//!
//! A [`Patch`] is the unit of dynamic updating (paper §2): verifiable object
//! code for the new and changed definitions, plus a [`Manifest`] describing
//! how the running program's bindings and state must change — which
//! functions are replaced, added or removed, which types change version,
//! how patch-local *alias* names map onto the old type registrations, and
//! which state transformers convert existing global state.

use tal::Module;

/// Maps a patch-local type name onto an already-registered type, so patch
/// code (chiefly state transformers) can mention the *old* version of a
/// changed type. E.g. `entry__old` → the running registration of `entry`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeAlias {
    /// Name the patch module uses (and structurally defines).
    pub alias: String,
    /// Name currently bound in the running process whose registration the
    /// alias must resolve to.
    pub target: String,
}

/// A state transformer: a function in the patch module that maps the old
/// value of one global to its new representation (paper §4, "state
/// transformation"). Its signature must be `(T_old) -> T_new` for the
/// affected global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transformer {
    /// The global whose value is transformed.
    pub global: String,
    /// The patch-module function implementing the transformation.
    pub function: String,
}

/// What a patch does to the program's interface and state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Existing functions whose binding is re-pointed to a new definition.
    pub replaces: Vec<String>,
    /// Brand-new functions (includes transformers and helpers).
    pub adds: Vec<String>,
    /// Functions whose binding is removed.
    pub removes: Vec<String>,
    /// Globals defined by the patch module to be added to the process.
    pub new_globals: Vec<String>,
    /// Type names this patch re-defines (the module carries the new
    /// definition; the old registration stays for existing records).
    pub type_changes: Vec<String>,
    /// Patch-local aliases for old type versions.
    pub type_aliases: Vec<TypeAlias>,
    /// State transformers to run at update time.
    pub transformers: Vec<Transformer>,
}

/// A dynamic patch: code plus manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    /// Version the patch upgrades from (diagnostics).
    pub from_version: String,
    /// Version the patch upgrades to.
    pub to_version: String,
    /// Verified object code of all new/changed definitions.
    pub module: Module,
    /// Interface and state deltas.
    pub manifest: Manifest,
}

impl Patch {
    /// Approximate wire size of the patch in bytes (code + metadata), used
    /// by the patch-statistics experiment (Table 1).
    pub fn size_bytes(&self) -> usize {
        self.module.size_report().updateable_total()
    }

    /// Number of function definitions carried by the patch.
    pub fn function_count(&self) -> usize {
        self.module.functions.len()
    }

    /// Whether the patch needs any state transformation.
    pub fn has_transformers(&self) -> bool {
        !self.manifest.transformers.is_empty()
    }
}

/// Convenience constructor for hand-written patches: compiles `src` against
/// `iface` (typically [`crate::interface_of`] the running process, extended
/// with alias structs) and pairs it with the manifest.
///
/// # Errors
///
/// Returns the underlying [`popcorn::CompileError`] when the patch source
/// does not compile against the interface.
pub fn compile_patch(
    src: &str,
    from_version: &str,
    to_version: &str,
    iface: &popcorn::Interface,
    manifest: Manifest,
) -> Result<Patch, popcorn::CompileError> {
    let module = popcorn::compile(src, &format!("patch-{to_version}"), to_version, iface)?;
    Ok(Patch {
        from_version: from_version.to_string(),
        to_version: to_version.to_string(),
        module,
        manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_patch_builds_module_and_metadata() {
        let iface = popcorn::Interface::new();
        let p = compile_patch(
            "fun f(): int { return 7; }",
            "v1",
            "v2",
            &iface,
            Manifest {
                replaces: vec!["f".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        assert_eq!(p.function_count(), 1);
        assert!(p.size_bytes() > 0);
        assert!(!p.has_transformers());
        assert_eq!(p.module.version, "v2");
    }
}
