//! The update runtime: pending patches, update points, and the driver loop.
//!
//! An [`Updater`] owns the patch queue and the update policy. Host code
//! runs guest entry points through [`Updater::run`]; when a patch is
//! pending and the guest reaches an `update;` point, the run suspends, all
//! queued patches are applied in order, and execution resumes — old frames
//! under old code, everything else under the new version. This is exactly
//! the paper's programmer-chosen update-point model.
//!
//! The patch queue, apply log and failure log live behind shared handles:
//! an [`UpdaterRemote`] lets *another thread* (a fleet coordinator) feed
//! patches to a process it does not own, arm the process's update signal,
//! and observe the resulting reports — the substrate of coordinated
//! multi-worker rollouts.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dsu_obs::{Journal, Stage};
use vm::{Outcome, Process, Trap, UpdateSignal, Value};

use crate::apply::{apply_patch, UpdatePolicy};
use crate::patch::Patch;
use crate::report::{FailedUpdate, UpdateError, UpdateReport};

/// One update pause: the guest suspended (or sat quiescent) while queued
/// patches applied. Host instrumentation (e.g. the FlashEd server's
/// service-time accounting) uses these to tell update-pause time apart
/// from genuine request service time.
#[derive(Debug, Clone, Copy)]
pub struct PauseEvent {
    /// When the pause began.
    pub at: Instant,
    /// How long the pause lasted: gate wait (coordinated rollouts) plus
    /// apply time for the whole queue, successful or not.
    pub dur: Duration,
}

/// Shared, clonable handle onto an [`Updater`]'s pause log.
pub type PauseLog = Arc<Mutex<Vec<PauseEvent>>>;

/// A one-shot rendezvous run at the start of the next update pause, before
/// any patch applies — e.g. a barrier wait that lines a whole fleet up at
/// their update points for a simultaneous rollout.
pub type Gate = Box<dyn FnOnce() + Send>;

/// A persistent quiescence hook run at the start of *every* update pause,
/// before the gate and before any patch applies. Hosts with asynchronous
/// in-flight work (e.g. the FlashEd event loop's parked reads) install one
/// to drain that work to quiescence; the updater times the call and
/// charges the wait to the pause's first applied patch as
/// [`crate::PhaseTimings::drain`].
pub type DrainHook = Box<dyn FnMut() + Send>;

/// Where an updater's lifecycle events go: a shared journal plus the
/// worker tag stamped onto every event this updater emits.
#[derive(Clone)]
struct Trace {
    journal: Journal,
    worker: Option<usize>,
}

/// A patch in the pending queue, tagged with its journal lifecycle id
/// (0 when no journal is attached).
struct QueuedPatch {
    update: u64,
    patch: Patch,
}

/// Errors surfaced by the driver loop.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The guest trapped.
    Trap(Trap),
    /// A queued patch failed to apply (the process keeps running the old
    /// version; the failed patch is dropped from the queue).
    Update(UpdateError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Trap(t) => write!(f, "guest trap: {t}"),
            RunError::Update(e) => write!(f, "update failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Trap> for RunError {
    fn from(t: Trap) -> RunError {
        RunError::Trap(t)
    }
}

/// Manages pending dynamic patches for one process.
#[derive(Default)]
pub struct Updater {
    policy: UpdatePolicy,
    pending: Arc<Mutex<VecDeque<QueuedPatch>>>,
    log: Arc<Mutex<Vec<UpdateReport>>>,
    /// Failures of patches that did not apply (the run continues), with
    /// version-transition and failing-phase context attached.
    failures: Arc<Mutex<Vec<FailedUpdate>>>,
    /// Update pauses, shared with host instrumentation.
    pauses: PauseLog,
    /// One-shot rendezvous for the next pause (coordinated rollouts).
    gate: Arc<Mutex<Option<Gate>>>,
    /// Persistent quiescence hook run at the start of every pause.
    drain_hook: Arc<Mutex<Option<DrainHook>>>,
    /// Lifecycle-event destination, shared with remotes (None = tracing
    /// off, the default — enqueues and applies cost nothing extra).
    trace: Arc<Mutex<Option<Trace>>>,
    /// When `true` (default), a patch failure during a run aborts the run
    /// with [`RunError::Update`] instead of continuing on the old version.
    pub strict: bool,
}

impl std::fmt::Debug for Updater {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Updater")
            .field("policy", &self.policy)
            .field("pending", &self.pending_count())
            .field("applied", &self.log.lock().expect("poisoned").len())
            .field("failures", &self.failures.lock().expect("poisoned").len())
            .finish()
    }
}

impl Updater {
    /// Creates an updater with the paper-default policy.
    pub fn new() -> Updater {
        Updater {
            strict: true,
            ..Updater::default()
        }
    }

    /// Creates an updater with an explicit policy.
    pub fn with_policy(policy: UpdatePolicy) -> Updater {
        Updater {
            policy,
            strict: true,
            ..Updater::default()
        }
    }

    /// The active policy.
    pub fn policy(&self) -> UpdatePolicy {
        self.policy
    }

    /// Attaches a journal: from now on every patch this updater (or a
    /// remote of it) handles emits lifecycle events — enqueued, gate
    /// waits, the six apply phases, committed/aborted — tagged with
    /// `worker` when given.
    pub fn set_journal(&self, journal: Journal, worker: Option<usize>) {
        *self.trace.lock().expect("poisoned") = Some(Trace { journal, worker });
    }

    /// Installs the quiescence hook run (and timed) at the start of every
    /// update pause, before the rollout gate and before any patch applies.
    /// The measured wait lands in the first applied patch's
    /// [`crate::PhaseTimings::drain`] bucket.
    pub fn set_drain_hook(&self, hook: DrainHook) {
        *self.drain_hook.lock().expect("poisoned") = Some(hook);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Journal> {
        self.trace
            .lock()
            .expect("poisoned")
            .as_ref()
            .map(|t| t.journal.clone())
    }

    /// Queues a patch and arms the process's update request so the next
    /// executed update point suspends.
    pub fn enqueue(&mut self, proc: &mut Process, patch: Patch) {
        enqueue_traced(&self.pending, &self.trace, patch);
        proc.request_update(true);
    }

    /// Number of patches waiting to be applied.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().expect("poisoned").len()
    }

    /// Reports of every successfully applied update, oldest first.
    pub fn log(&self) -> Vec<UpdateReport> {
        self.log.lock().expect("poisoned").clone()
    }

    /// Failures of patches that did not apply (non-strict mode), with
    /// version and failing-phase context.
    pub fn failures(&self) -> Vec<FailedUpdate> {
        self.failures.lock().expect("poisoned").clone()
    }

    /// A shared handle onto the pause log. Clones observe pauses recorded
    /// by future applies.
    pub fn pause_log(&self) -> PauseLog {
        Arc::clone(&self.pauses)
    }

    /// Update pauses recorded so far, oldest first.
    pub fn pauses(&self) -> Vec<PauseEvent> {
        self.pauses.lock().expect("poisoned").clone()
    }

    /// A cross-thread control handle for this updater driving `proc`: feed
    /// patches, arm the update signal, set rollout gates, read results.
    pub fn remote(&self, proc: &Process) -> UpdaterRemote {
        UpdaterRemote {
            pending: Arc::clone(&self.pending),
            log: Arc::clone(&self.log),
            failures: Arc::clone(&self.failures),
            pauses: Arc::clone(&self.pauses),
            gate: Arc::clone(&self.gate),
            trace: Arc::clone(&self.trace),
            signal: proc.update_signal(),
        }
    }

    /// Applies all queued patches right now. The process must be quiescent
    /// (suspended at an update point, or with no guest code running). If a
    /// rollout gate is set and patches are pending, the gate runs first
    /// (inside the recorded pause).
    ///
    /// # Errors
    ///
    /// In strict mode, returns the first failing patch's error (later
    /// patches stay queued). Otherwise failures are recorded in
    /// [`Updater::failures`] and the queue keeps draining.
    pub fn apply_pending(&mut self, proc: &mut Process) -> Result<usize, UpdateError> {
        if self.pending.lock().expect("poisoned").is_empty() {
            proc.request_update(false);
            return Ok(0);
        }
        let began = Instant::now();
        // Drain own in-flight work to quiescence before the rendezvous:
        // in a barriered fleet every worker finishes its parked work
        // concurrently, then they line up. The wait is timed here so the
        // report and the journal agree on it exactly.
        let drain_dur = {
            let mut hook = self.drain_hook.lock().expect("poisoned");
            match hook.as_mut() {
                Some(h) => {
                    let t = Instant::now();
                    h();
                    t.elapsed()
                }
                None => Duration::ZERO,
            }
        };
        // Rendezvous before touching the process (one-shot); the wait is
        // part of the pause, not of any request's service time.
        let gate = self.gate.lock().expect("poisoned").take();
        if let Some(gate) = gate {
            let gate_began = Instant::now();
            gate();
            if let Some(t) = self.trace.lock().expect("poisoned").clone() {
                // The wait is charged to the patch at the head of the
                // queue — the one the rendezvous was lining up for.
                let head = self.pending.lock().expect("poisoned").front().map(|q| {
                    (
                        q.update,
                        q.patch.from_version.clone(),
                        q.patch.to_version.clone(),
                    )
                });
                if let Some((update, from, to)) = head {
                    t.journal.record(
                        t.worker,
                        update,
                        &from,
                        &to,
                        Stage::GateWait,
                        Some(gate_began.elapsed()),
                        None,
                    );
                }
            }
        }
        let result = self.drain(proc, drain_dur);
        self.pauses.lock().expect("poisoned").push(PauseEvent {
            at: began,
            dur: began.elapsed(),
        });
        result
    }

    fn drain(&mut self, proc: &mut Process, mut drain_dur: Duration) -> Result<usize, UpdateError> {
        let mut applied = 0;
        let trace = self.trace.lock().expect("poisoned").clone();
        loop {
            let queued = self.pending.lock().expect("poisoned").pop_front();
            let Some(queued) = queued else { break };
            let patch = &queued.patch;
            match apply_patch(proc, patch, self.policy) {
                Ok(mut report) => {
                    // The quiescence wait is charged once, to the first
                    // patch this pause applies.
                    report.timings.drain = std::mem::take(&mut drain_dur);
                    if let Some(t) = &trace {
                        emit_applied(t, &queued, &report);
                    }
                    self.log.lock().expect("poisoned").push(report);
                    applied += 1;
                }
                Err(e) => {
                    if let Some(t) = &trace {
                        emit_aborted(t, &queued, &e);
                    }
                    if self.strict {
                        proc.request_update(!self.pending.lock().expect("poisoned").is_empty());
                        return Err(e);
                    }
                    self.failures
                        .lock()
                        .expect("poisoned")
                        .push(FailedUpdate::new(&patch.from_version, &patch.to_version, e));
                }
            }
        }
        proc.request_update(false);
        Ok(applied)
    }

    /// Runs `entry(args)` to completion, applying queued patches whenever
    /// the guest suspends at an update point.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trap`] if the guest traps, or (strict mode)
    /// [`RunError::Update`] if a queued patch fails to apply.
    pub fn run(
        &mut self,
        proc: &mut Process,
        entry: &str,
        args: Vec<Value>,
    ) -> Result<Value, RunError> {
        let mut outcome = proc.run(entry, args)?;
        loop {
            match outcome {
                Outcome::Done(v) => return Ok(v),
                Outcome::Suspended => {
                    if let Err(e) = self.apply_pending(proc) {
                        if self.strict {
                            // Abandon the suspended run cleanly.
                            proc.discard_suspended();
                            return Err(RunError::Update(e));
                        }
                    }
                    outcome = proc.resume()?;
                }
            }
        }
    }
}

/// Queues `patch`, assigning it a journal lifecycle id and emitting the
/// `Enqueued` event when tracing is on (shared by [`Updater::enqueue`]
/// and [`UpdaterRemote::enqueue`]).
fn enqueue_traced(
    pending: &Mutex<VecDeque<QueuedPatch>>,
    trace: &Mutex<Option<Trace>>,
    patch: Patch,
) {
    let t = trace.lock().expect("poisoned").clone();
    let update = match &t {
        Some(t) => t.journal.next_update_id(),
        None => 0,
    };
    if let Some(t) = &t {
        t.journal.record(
            t.worker,
            update,
            &patch.from_version,
            &patch.to_version,
            Stage::Enqueued,
            None,
            None,
        );
    }
    pending
        .lock()
        .expect("poisoned")
        .push_back(QueuedPatch { update, patch });
}

/// Emits the seven phase events (durations copied verbatim from the
/// report's [`crate::PhaseTimings`], so journal sums equal
/// `timings.total()` exactly) followed by `Committed`.
fn emit_applied(t: &Trace, queued: &QueuedPatch, report: &UpdateReport) {
    let ts = &report.timings;
    let phases = [
        (Stage::Drain, ts.drain),
        (Stage::Verify, ts.verify),
        (Stage::Compat, ts.compat),
        (Stage::Link, ts.link),
        (Stage::Bind, ts.bind),
        (Stage::Init, ts.init),
        (Stage::Transform, ts.transform),
    ];
    for (stage, dur) in phases {
        t.journal.record(
            t.worker,
            queued.update,
            &report.from_version,
            &report.to_version,
            stage,
            Some(dur),
            None,
        );
    }
    t.journal.record(
        t.worker,
        queued.update,
        &report.from_version,
        &report.to_version,
        Stage::Committed,
        Some(ts.total()),
        None,
    );
}

/// Emits `Aborted`, carrying the failing phase and cause.
fn emit_aborted(t: &Trace, queued: &QueuedPatch, error: &UpdateError) {
    t.journal.record(
        t.worker,
        queued.update,
        &queued.patch.from_version,
        &queued.patch.to_version,
        Stage::Aborted,
        None,
        Some(&format!("{}: {error}", error.phase())),
    );
}

/// Cross-thread control over one worker's [`Updater`]/[`Process`] pair
/// (see [`Updater::remote`]). All methods are safe to call while the
/// worker thread is mid-run: patches land in the shared queue, the signal
/// makes the guest suspend at its next update point, and results appear in
/// the shared logs as the worker applies.
#[derive(Clone)]
pub struct UpdaterRemote {
    pending: Arc<Mutex<VecDeque<QueuedPatch>>>,
    log: Arc<Mutex<Vec<UpdateReport>>>,
    failures: Arc<Mutex<Vec<FailedUpdate>>>,
    pauses: PauseLog,
    gate: Arc<Mutex<Option<Gate>>>,
    trace: Arc<Mutex<Option<Trace>>>,
    signal: UpdateSignal,
}

impl std::fmt::Debug for UpdaterRemote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdaterRemote")
            .field("pending", &self.pending_count())
            .field("applied", &self.applied_count())
            .field("failed", &self.failure_count())
            .finish()
    }
}

impl UpdaterRemote {
    /// Queues a patch and arms the worker's update signal: the guest
    /// suspends and applies at its next executed update point (or the
    /// worker applies at its next quiescent boundary).
    pub fn enqueue(&self, patch: Patch) {
        enqueue_traced(&self.pending, &self.trace, patch);
        self.signal.arm();
    }

    /// Installs a one-shot gate run at the start of the next pause, before
    /// any patch applies. Used to line several workers up (barrier) for a
    /// simultaneous rollout.
    pub fn set_gate(&self, gate: Gate) {
        *self.gate.lock().expect("poisoned") = Some(gate);
    }

    /// Patches still waiting to be applied.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().expect("poisoned").len()
    }

    /// Successful applies so far.
    pub fn applied_count(&self) -> usize {
        self.log.lock().expect("poisoned").len()
    }

    /// Failed applies so far (non-strict worker).
    pub fn failure_count(&self) -> usize {
        self.failures.lock().expect("poisoned").len()
    }

    /// Reports of every successful apply, oldest first.
    pub fn reports(&self) -> Vec<UpdateReport> {
        self.log.lock().expect("poisoned").clone()
    }

    /// Failures of every failed apply, oldest first, with version and
    /// failing-phase context.
    pub fn failures(&self) -> Vec<FailedUpdate> {
        self.failures.lock().expect("poisoned").clone()
    }

    /// Update pauses recorded so far, oldest first.
    pub fn pauses(&self) -> Vec<PauseEvent> {
        self.pauses.lock().expect("poisoned").clone()
    }
}
