//! The update runtime: pending patches, update points, and the driver loop.
//!
//! An [`Updater`] owns the patch queue and the update policy. Host code
//! runs guest entry points through [`Updater::run`]; when a patch is
//! pending and the guest reaches an `update;` point, the run suspends, all
//! queued patches are applied in order, and execution resumes — old frames
//! under old code, everything else under the new version. This is exactly
//! the paper's programmer-chosen update-point model.

use vm::{Outcome, Process, Trap, Value};

use crate::apply::{apply_patch, UpdatePolicy};
use crate::patch::Patch;
use crate::report::{UpdateError, UpdateReport};

/// Errors surfaced by the driver loop.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The guest trapped.
    Trap(Trap),
    /// A queued patch failed to apply (the process keeps running the old
    /// version; the failed patch is dropped from the queue).
    Update(UpdateError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Trap(t) => write!(f, "guest trap: {t}"),
            RunError::Update(e) => write!(f, "update failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Trap> for RunError {
    fn from(t: Trap) -> RunError {
        RunError::Trap(t)
    }
}

/// Manages pending dynamic patches for one process.
#[derive(Default)]
pub struct Updater {
    policy: UpdatePolicy,
    pending: std::collections::VecDeque<Patch>,
    log: Vec<UpdateReport>,
    /// Errors from patches that failed to apply (the run continues).
    failures: Vec<UpdateError>,
    /// When `true` (default), a patch failure during a run aborts the run
    /// with [`RunError::Update`] instead of continuing on the old version.
    pub strict: bool,
}

impl std::fmt::Debug for Updater {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Updater")
            .field("policy", &self.policy)
            .field("pending", &self.pending.len())
            .field("applied", &self.log.len())
            .field("failures", &self.failures.len())
            .finish()
    }
}

impl Updater {
    /// Creates an updater with the paper-default policy.
    pub fn new() -> Updater {
        Updater { strict: true, ..Updater::default() }
    }

    /// Creates an updater with an explicit policy.
    pub fn with_policy(policy: UpdatePolicy) -> Updater {
        Updater { policy, strict: true, ..Updater::default() }
    }

    /// The active policy.
    pub fn policy(&self) -> UpdatePolicy {
        self.policy
    }

    /// Queues a patch and arms the process's update request so the next
    /// executed update point suspends.
    pub fn enqueue(&mut self, proc: &mut Process, patch: Patch) {
        self.pending.push_back(patch);
        proc.request_update(true);
    }

    /// Number of patches waiting to be applied.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Reports of every successfully applied update, oldest first.
    pub fn log(&self) -> &[UpdateReport] {
        &self.log
    }

    /// Errors of patches that failed to apply (non-strict mode).
    pub fn failures(&self) -> &[UpdateError] {
        &self.failures
    }

    /// Applies all queued patches right now. The process must be quiescent
    /// (suspended at an update point, or with no guest code running).
    ///
    /// # Errors
    ///
    /// In strict mode, returns the first failing patch's error (later
    /// patches stay queued). Otherwise failures are recorded in
    /// [`Updater::failures`] and the queue keeps draining.
    pub fn apply_pending(&mut self, proc: &mut Process) -> Result<usize, UpdateError> {
        let mut applied = 0;
        while let Some(patch) = self.pending.pop_front() {
            match apply_patch(proc, &patch, self.policy) {
                Ok(report) => {
                    self.log.push(report);
                    applied += 1;
                }
                Err(e) => {
                    if self.strict {
                        proc.request_update(!self.pending.is_empty());
                        return Err(e);
                    }
                    self.failures.push(e);
                }
            }
        }
        proc.request_update(false);
        Ok(applied)
    }

    /// Runs `entry(args)` to completion, applying queued patches whenever
    /// the guest suspends at an update point.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trap`] if the guest traps, or (strict mode)
    /// [`RunError::Update`] if a queued patch fails to apply.
    pub fn run(
        &mut self,
        proc: &mut Process,
        entry: &str,
        args: Vec<Value>,
    ) -> Result<Value, RunError> {
        let mut outcome = proc.run(entry, args)?;
        loop {
            match outcome {
                Outcome::Done(v) => return Ok(v),
                Outcome::Suspended => {
                    if let Err(e) = self.apply_pending(proc) {
                        if self.strict {
                            // Abandon the suspended run cleanly.
                            proc.discard_suspended();
                            return Err(RunError::Update(e));
                        }
                    }
                    outcome = proc.resume()?;
                }
            }
        }
    }
}
