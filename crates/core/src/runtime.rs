//! The update runtime: pending patches, update points, and the driver loop.
//!
//! An [`Updater`] owns the patch queue and the update policy. Host code
//! runs guest entry points through [`Updater::run`]; when a patch is
//! pending and the guest reaches an `update;` point, the run suspends, all
//! queued patches are applied in order, and execution resumes — old frames
//! under old code, everything else under the new version. This is exactly
//! the paper's programmer-chosen update-point model.
//!
//! The patch queue, apply log and failure log live behind shared handles:
//! an [`UpdaterRemote`] lets *another thread* (a fleet coordinator) feed
//! patches to a process it does not own, arm the process's update signal,
//! and observe the resulting reports — the substrate of coordinated
//! multi-worker rollouts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dsu_obs::trace::{Span, SpanKind};
use dsu_obs::{Journal, Stage, Tracer};
use vm::{Outcome, Process, Trap, UpdateSignal, Value};

use crate::apply::{apply_patch_spanned, PhaseSpanLog, UpdatePolicy};
use crate::patch::Patch;
use crate::report::{FailedUpdate, PhaseTimings, UpdateError, UpdateReport};
use crate::rollback::SnapshotRing;

/// One update pause: the guest suspended (or sat quiescent) while queued
/// patches applied. Host instrumentation (e.g. the FlashEd server's
/// service-time accounting) uses these to tell update-pause time apart
/// from genuine request service time.
#[derive(Debug, Clone, Copy)]
pub struct PauseEvent {
    /// When the pause began.
    pub at: Instant,
    /// How long the pause lasted: gate wait (coordinated rollouts) plus
    /// apply time for the whole queue, successful or not.
    pub dur: Duration,
}

/// Shared, clonable handle onto an [`Updater`]'s pause log.
pub type PauseLog = Arc<Mutex<Vec<PauseEvent>>>;

/// A one-shot rendezvous run at the start of the next update pause, before
/// any patch applies — e.g. a barrier wait that lines a whole fleet up at
/// their update points for a simultaneous rollout.
pub type Gate = Box<dyn FnOnce() + Send>;

/// A persistent quiescence hook run at the start of *every* update pause,
/// before the gate and before any patch applies. Hosts with asynchronous
/// in-flight work (e.g. the FlashEd event loop's parked reads) install one
/// to drain that work to quiescence; the updater times the call and
/// charges the wait to the pause's first applied patch as
/// [`crate::PhaseTimings::drain`].
pub type DrainHook = Box<dyn FnMut() + Send>;

/// Where an updater's lifecycle events go: a shared journal plus the
/// worker tag stamped onto every event this updater emits, and — when
/// span tracing is on — the shared [`Tracer`] update spans land in.
#[derive(Clone)]
struct Trace {
    journal: Journal,
    worker: Option<usize>,
    tracer: Option<Tracer>,
}

/// Span bookkeeping for one update pause: ids are allocated before the
/// gate runs so the `GateWait` journal event can cross-link to the root
/// span the pause's first applied patch will record.
struct SpanCtx {
    tracer: Tracer,
    worker: Option<usize>,
    /// Trace the pause joins: the propagated rollout trace when a
    /// coordinator set one, else a fresh trace per pause.
    trace_id: u64,
    /// Rollout root span to parent under, when propagated.
    parent: Option<u64>,
    /// Pre-allocated root span id for the pause's first applied patch.
    head_root: u64,
    /// Whether `head_root` has been claimed yet.
    head_used: bool,
}

/// A queued update operation, tagged with its journal lifecycle id
/// (0 when no journal is attached).
struct QueuedOp {
    update: u64,
    kind: OpKind,
}

/// What a queued operation does when the pause drains it.
enum OpKind {
    /// Apply `patch`. `rollback` marks an *inverse* patch — a downgrade
    /// whose reverse state transformers take the process back to a prior
    /// version while preserving current guest state; its lifecycle closes
    /// with `RolledBack` instead of `Committed`.
    Apply { patch: Box<Patch>, rollback: bool },
    /// Pop the snapshot ring and restore its top entry (best-effort state,
    /// like [`crate::VersionManager`]). The versions are resolved from the
    /// ring at enqueue time for the journal's benefit; apply re-reads the
    /// ring, so a raced ring is surfaced as an abort, not a wrong restore.
    Restore { from: String, to: String },
}

impl QueuedOp {
    fn version_from(&self) -> &str {
        match &self.kind {
            OpKind::Apply { patch, .. } => &patch.from_version,
            OpKind::Restore { from, .. } => from,
        }
    }

    fn version_to(&self) -> &str {
        match &self.kind {
            OpKind::Apply { patch, .. } => &patch.to_version,
            OpKind::Restore { to, .. } => to,
        }
    }
}

/// Errors surfaced by the driver loop.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The guest trapped.
    Trap(Trap),
    /// A queued patch failed to apply (the process keeps running the old
    /// version; the failed patch is dropped from the queue).
    Update(UpdateError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Trap(t) => write!(f, "guest trap: {t}"),
            RunError::Update(e) => write!(f, "update failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Trap> for RunError {
    fn from(t: Trap) -> RunError {
        RunError::Trap(t)
    }
}

/// Manages pending dynamic patches for one process.
#[derive(Default)]
pub struct Updater {
    policy: UpdatePolicy,
    pending: Arc<Mutex<VecDeque<QueuedOp>>>,
    /// Ops popped off `pending` whose outcome (report or failure) is not
    /// published yet — i.e. mid-apply. Shared with remotes and counted
    /// into [`Updater::pending_count`], so a coordinator polling
    /// "pending == 0 and the counts moved" can never observe the window
    /// where an op is out of the queue but its result is invisible.
    in_flight: Arc<AtomicUsize>,
    log: Arc<Mutex<Vec<UpdateReport>>>,
    /// Failures of patches that did not apply (the run continues), with
    /// version-transition and failing-phase context attached.
    failures: Arc<Mutex<Vec<FailedUpdate>>>,
    /// Update pauses, shared with host instrumentation.
    pauses: PauseLog,
    /// One-shot rendezvous for the next pause (coordinated rollouts).
    gate: Arc<Mutex<Option<Gate>>>,
    /// Persistent quiescence hook run at the start of every pause.
    drain_hook: Arc<Mutex<Option<DrainHook>>>,
    /// Bounded ring of pre-update snapshots, pushed on every successful
    /// forward apply — the substrate of first-class rollback. Never
    /// shared with remotes: snapshots hold `Rc` guest values and must
    /// stay on the worker thread.
    snapshots: Arc<Mutex<SnapshotRing>>,
    /// Send-safe mirror of the ring's `(from, to)` transitions, kept in
    /// sync on every ring mutation and shared with remotes so a
    /// coordinator can see what a snapshot rollback would undo.
    transitions: Arc<Mutex<Vec<(String, String)>>>,
    /// Net forward patch path from the boot version to the current
    /// version: every successful forward apply pushes its patch, every
    /// successful rollback (inverse patch or snapshot restore) pops the
    /// hop it undoes. Unlike the bounded snapshot ring this is the whole
    /// path, so a supervisor can rebuild a crashed worker from source by
    /// replaying it (see [`Updater::save_worker_state`]).
    chain: Vec<Patch>,
    /// Lifecycle-event destination, shared with remotes (None = tracing
    /// off, the default — enqueues and applies cost nothing extra).
    trace: Arc<Mutex<Option<Trace>>>,
    /// Propagated rollout span context `(trace, span)`: when set (by a
    /// fleet coordinator through the remote), update spans this worker
    /// records parent under that rollout span instead of opening fresh
    /// traces. Persists until overwritten by the next rollout.
    span_parent: Arc<Mutex<Option<(u64, u64)>>>,
    /// When `true` (default), a patch failure during a run aborts the run
    /// with [`RunError::Update`] instead of continuing on the old version.
    pub strict: bool,
}

impl std::fmt::Debug for Updater {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Updater")
            .field("policy", &self.policy)
            .field("pending", &self.pending_count())
            .field("applied", &self.log.lock().expect("poisoned").len())
            .field("failures", &self.failures.lock().expect("poisoned").len())
            .finish()
    }
}

impl Updater {
    /// Creates an updater with the paper-default policy.
    pub fn new() -> Updater {
        Updater {
            strict: true,
            ..Updater::default()
        }
    }

    /// Creates an updater with an explicit policy.
    pub fn with_policy(policy: UpdatePolicy) -> Updater {
        Updater {
            policy,
            strict: true,
            ..Updater::default()
        }
    }

    /// The active policy.
    pub fn policy(&self) -> UpdatePolicy {
        self.policy
    }

    /// Attaches a journal: from now on every patch this updater (or a
    /// remote of it) handles emits lifecycle events — enqueued, gate
    /// waits, the six apply phases, committed/aborted — tagged with
    /// `worker` when given.
    pub fn set_journal(&self, journal: Journal, worker: Option<usize>) {
        *self.trace.lock().expect("poisoned") = Some(Trace {
            journal,
            worker,
            tracer: None,
        });
    }

    /// Attaches a span tracer on top of an attached journal: every
    /// applied patch then records an update span (phases as children,
    /// durations identical to `PhaseTimings`) and journal events carry
    /// the `(trace, span)` cross-link. No-op until a journal is attached
    /// — the journal supplies the lifecycle ids spans are tagged with.
    pub fn set_tracer(&self, tracer: Tracer) {
        if let Some(t) = self.trace.lock().expect("poisoned").as_mut() {
            t.tracer = Some(tracer);
        }
    }

    /// Installs the quiescence hook run (and timed) at the start of every
    /// update pause, before the rollout gate and before any patch applies.
    /// The measured wait lands in the first applied patch's
    /// [`crate::PhaseTimings::drain`] bucket.
    pub fn set_drain_hook(&self, hook: DrainHook) {
        *self.drain_hook.lock().expect("poisoned") = Some(hook);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Journal> {
        self.trace
            .lock()
            .expect("poisoned")
            .as_ref()
            .map(|t| t.journal.clone())
    }

    /// Queues a patch and arms the process's update request so the next
    /// executed update point suspends.
    pub fn enqueue(&mut self, proc: &mut Process, patch: Patch) {
        enqueue_traced(
            &self.pending,
            &self.trace,
            OpKind::Apply {
                patch: Box::new(patch),
                rollback: false,
            },
        );
        proc.request_update(true);
    }

    /// Queues an *inverse* patch — a downgrade generated by diffing the
    /// versions the other way round (see [`crate::PatchGen`]) whose
    /// reverse state transformers preserve current guest state. The
    /// resulting report is marked [`UpdateReport::rolled_back`] and its
    /// journal lifecycle closes with `RolledBack`.
    pub fn enqueue_rollback(&mut self, proc: &mut Process, patch: Patch) {
        enqueue_traced(
            &self.pending,
            &self.trace,
            OpKind::Apply {
                patch: Box::new(patch),
                rollback: true,
            },
        );
        proc.request_update(true);
    }

    /// Queues a snapshot rollback: at the next pause, pop the snapshot
    /// ring and restore its top entry (best-effort state — guest
    /// mutations since the forward update are discarded). Aborts with
    /// [`UpdateError::NoSnapshot`] when the ring is empty at apply time.
    pub fn enqueue_snapshot_rollback(&mut self, proc: &mut Process) {
        let (from, to) = rollback_transition(&self.transitions);
        enqueue_traced(&self.pending, &self.trace, OpKind::Restore { from, to });
        proc.request_update(true);
    }

    /// Queues a rollback *chain*: up to `hops` snapshot restores, newest
    /// transition first, so one call walks the process back several
    /// versions (v3 → v2 → v1) through the ordinary pipeline — each hop
    /// is its own journal lifecycle closing with `RolledBack`. Clamped to
    /// the ring's current length; returns how many hops were queued.
    pub fn enqueue_rollback_chain(&mut self, proc: &mut Process, hops: usize) -> usize {
        let n = enqueue_chain(&self.pending, &self.trace, &self.transitions, hops);
        if n > 0 {
            proc.request_update(true);
        }
        n
    }

    /// Resizes the snapshot ring (discarding currently retained
    /// snapshots). Depth 0 disables retention; the default is
    /// [`crate::rollback::DEFAULT_SNAPSHOT_DEPTH`].
    pub fn set_snapshot_depth(&self, depth: usize) {
        *self.snapshots.lock().expect("poisoned") = SnapshotRing::new(depth);
        self.transitions.lock().expect("poisoned").clear();
    }

    /// The `(from, to)` transitions whose pre-update snapshots the ring
    /// currently retains, oldest first.
    pub fn snapshot_transitions(&self) -> Vec<(String, String)> {
        self.transitions.lock().expect("poisoned").clone()
    }

    /// Number of operations not yet fully applied: queued patches plus
    /// the op currently mid-apply, if any. Zero means every submitted
    /// op's outcome is visible in [`Updater::log`] / [`Updater::failures`].
    pub fn pending_count(&self) -> usize {
        self.pending.lock().expect("poisoned").len() + self.in_flight.load(Ordering::SeqCst)
    }

    /// Serializes the updater's crash-durable state — the snapshot ring
    /// and every still-pending operation — as a text block. Together with
    /// a write-ahead journal this lets a restarted worker resume exactly
    /// where the old one stopped: restore the ring, re-queue the ops.
    pub fn save_state(&self) -> String {
        let mut out = String::from("dsu-updater-state 1\n");
        let ring_text = self.snapshots.lock().expect("poisoned").save();
        out.push_str(&format!("ring {}\n", ring_text.len()));
        out.push_str(&ring_text);
        for q in self.pending.lock().expect("poisoned").iter() {
            match &q.kind {
                OpKind::Restore { from, to } => {
                    out.push_str(&format!("op-restore\t{from}\t{to}\n"));
                }
                OpKind::Apply { patch, rollback } => {
                    let text = crate::patch_io::save_patch(patch);
                    out.push_str(&format!(
                        "op-apply {} {}\n",
                        u8::from(*rollback),
                        text.len()
                    ));
                    out.push_str(&text);
                    if !text.ends_with('\n') {
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Restores state saved by [`Updater::save_state`]: replaces the
    /// snapshot ring and re-queues the pending operations (each gets a
    /// fresh journal lifecycle — the old incarnation's lifecycles belong
    /// to the old journal stream). Arms the process's update request when
    /// any operation was re-queued. Returns the number of re-queued ops.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed section; on error the
    /// updater is left unchanged.
    pub fn load_state(&mut self, proc: &mut Process, text: &str) -> Result<usize, String> {
        let rest = text
            .strip_prefix("dsu-updater-state 1\n")
            .ok_or("bad header")?;
        let (ring_line, rest) = rest.split_once('\n').ok_or("missing ring section")?;
        let ring_len: usize = ring_line
            .strip_prefix("ring ")
            .ok_or("missing ring section")?
            .parse()
            .map_err(|e| format!("bad ring length: {e}"))?;
        if rest.len() < ring_len {
            return Err("truncated ring section".to_string());
        }
        let ring = SnapshotRing::load(&rest[..ring_len])?;
        let mut rest = &rest[ring_len..];

        // Parse every op before touching the updater, so a malformed tail
        // cannot leave it half-restored.
        let mut ops = Vec::new();
        while !rest.is_empty() {
            let (line, next) = rest.split_once('\n').ok_or("truncated op line")?;
            rest = next;
            if line.trim().is_empty() {
                continue;
            }
            if let Some(body) = line.strip_prefix("op-restore\t") {
                let mut parts = body.split('\t');
                let from = parts.next().ok_or("op-restore missing from")?;
                let to = parts.next().ok_or("op-restore missing to")?;
                ops.push(OpKind::Restore {
                    from: from.to_string(),
                    to: to.to_string(),
                });
            } else if let Some(body) = line.strip_prefix("op-apply ") {
                let (flag, len) = body.split_once(' ').ok_or("malformed op-apply line")?;
                let rollback = match flag {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad rollback flag `{other}`")),
                };
                let len: usize = len.parse().map_err(|e| format!("bad patch length: {e}"))?;
                if rest.len() < len {
                    return Err("truncated patch section".to_string());
                }
                let patch = crate::patch_io::load_patch(&rest[..len]).map_err(|e| e.to_string())?;
                rest = &rest[len..];
                rest = rest.strip_prefix('\n').unwrap_or(rest);
                ops.push(OpKind::Apply {
                    patch: Box::new(patch),
                    rollback,
                });
            } else {
                return Err(format!("unknown state line `{line}`"));
            }
        }

        *self.transitions.lock().expect("poisoned") = ring.transitions();
        *self.snapshots.lock().expect("poisoned") = ring;
        let n = ops.len();
        for kind in ops {
            enqueue_traced(&self.pending, &self.trace, kind);
        }
        if n > 0 {
            proc.request_update(true);
        }
        Ok(n)
    }

    /// The `(from, to)` hops of the replay chain (boot version → current
    /// version), oldest first. Empty when the process still runs the
    /// version it booted with.
    pub fn chain_transitions(&self) -> Vec<(String, String)> {
        self.chain
            .iter()
            .map(|p| (p.from_version.clone(), p.to_version.clone()))
            .collect()
    }

    /// Serializes everything a supervisor needs to rebuild this worker
    /// after a crash: the replay chain (patches from the boot version to
    /// the current version) plus [`Updater::save_state`]'s crash-durable
    /// block (snapshot ring + still-pending ops). A restarted worker
    /// re-applies the chain to get back to its pre-crash version, then
    /// installs the saved ring/pending state over the replayed updater
    /// (see [`decode_worker_state`]).
    pub fn save_worker_state(&self) -> String {
        let mut out = String::from("dsu-worker-state 1\n");
        out.push_str(&format!("chain {}\n", self.chain.len()));
        for p in &self.chain {
            let text = crate::patch_io::save_patch(p);
            out.push_str(&format!("patch {}\n", text.len()));
            out.push_str(&text);
            if !text.ends_with('\n') {
                out.push('\n');
            }
        }
        let inner = self.save_state();
        out.push_str(&format!("state {}\n", inner.len()));
        out.push_str(&inner);
        out
    }

    /// Reports of every successfully applied update, oldest first.
    pub fn log(&self) -> Vec<UpdateReport> {
        self.log.lock().expect("poisoned").clone()
    }

    /// Failures of patches that did not apply (non-strict mode), with
    /// version and failing-phase context.
    pub fn failures(&self) -> Vec<FailedUpdate> {
        self.failures.lock().expect("poisoned").clone()
    }

    /// A shared handle onto the pause log. Clones observe pauses recorded
    /// by future applies.
    pub fn pause_log(&self) -> PauseLog {
        Arc::clone(&self.pauses)
    }

    /// Update pauses recorded so far, oldest first.
    pub fn pauses(&self) -> Vec<PauseEvent> {
        self.pauses.lock().expect("poisoned").clone()
    }

    /// A cross-thread control handle for this updater driving `proc`: feed
    /// patches, arm the update signal, set rollout gates, read results.
    pub fn remote(&self, proc: &Process) -> UpdaterRemote {
        UpdaterRemote {
            pending: Arc::clone(&self.pending),
            in_flight: Arc::clone(&self.in_flight),
            log: Arc::clone(&self.log),
            failures: Arc::clone(&self.failures),
            pauses: Arc::clone(&self.pauses),
            gate: Arc::clone(&self.gate),
            trace: Arc::clone(&self.trace),
            span_parent: Arc::clone(&self.span_parent),
            transitions: Arc::clone(&self.transitions),
            signal: proc.update_signal(),
        }
    }

    /// Applies all queued patches right now. The process must be quiescent
    /// (suspended at an update point, or with no guest code running). If a
    /// rollout gate is set and patches are pending, the gate runs first
    /// (inside the recorded pause).
    ///
    /// # Errors
    ///
    /// In strict mode, returns the first failing patch's error (later
    /// patches stay queued). Otherwise failures are recorded in
    /// [`Updater::failures`] and the queue keeps draining.
    pub fn apply_pending(&mut self, proc: &mut Process) -> Result<usize, UpdateError> {
        if self.pending.lock().expect("poisoned").is_empty() {
            proc.request_update(false);
            return Ok(0);
        }
        let began = Instant::now();
        let trace = self.trace.lock().expect("poisoned").clone();
        // Span ids are allocated up front so the gate-wait journal event
        // below can cross-link to the root span the pause's first applied
        // patch will record.
        let mut span_ctx = trace
            .as_ref()
            .and_then(|t| t.tracer.clone().map(|tr| (tr, t.worker)))
            .map(|(tracer, worker)| {
                let (trace_id, parent) = match *self.span_parent.lock().expect("poisoned") {
                    Some((t, p)) => (t, Some(p)),
                    None => (tracer.next_trace_id(), None),
                };
                let head_root = tracer.next_span_id();
                SpanCtx {
                    tracer,
                    worker,
                    trace_id,
                    parent,
                    head_root,
                    head_used: false,
                }
            });
        // Drain own in-flight work to quiescence before the rendezvous:
        // in a barriered fleet every worker finishes its parked work
        // concurrently, then they line up. The wait is timed here so the
        // report and the journal agree on it exactly.
        let drain_dur = {
            let mut hook = self.drain_hook.lock().expect("poisoned");
            match hook.as_mut() {
                Some(h) => {
                    let t = Instant::now();
                    h();
                    t.elapsed()
                }
                None => Duration::ZERO,
            }
        };
        // Rendezvous before touching the process (one-shot); the wait is
        // part of the pause, not of any request's service time.
        let gate = self.gate.lock().expect("poisoned").take();
        let mut gate_span: Option<(Instant, Duration)> = None;
        if let Some(gate) = gate {
            let gate_began = Instant::now();
            gate();
            let gate_dur = gate_began.elapsed();
            gate_span = Some((gate_began, gate_dur));
            if let Some(t) = &trace {
                // The wait is charged to the patch at the head of the
                // queue — the one the rendezvous was lining up for.
                let head = self.pending.lock().expect("poisoned").front().map(|q| {
                    (
                        q.update,
                        q.version_from().to_string(),
                        q.version_to().to_string(),
                    )
                });
                if let Some((update, from, to)) = head {
                    t.journal.record_spanned(
                        t.worker,
                        update,
                        &from,
                        &to,
                        Stage::GateWait,
                        Some(gate_dur),
                        None,
                        span_ctx.as_ref().map(|c| (c.trace_id, c.head_root)),
                    );
                }
            }
        }
        let result = self.drain(proc, drain_dur, began, gate_span, &mut span_ctx);
        self.pauses.lock().expect("poisoned").push(PauseEvent {
            at: began,
            dur: began.elapsed(),
        });
        result
    }

    fn drain(
        &mut self,
        proc: &mut Process,
        mut drain_dur: Duration,
        pause_began: Instant,
        gate_span: Option<(Instant, Duration)>,
        span_ctx: &mut Option<SpanCtx>,
    ) -> Result<usize, UpdateError> {
        let mut applied = 0;
        let trace = self.trace.lock().expect("poisoned").clone();
        loop {
            let queued = self.pending.lock().expect("poisoned").pop_front();
            let Some(queued) = queued else { break };
            // The op is out of the queue but its outcome is not published
            // yet: keep it counted in `pending_count` until the end of
            // this iteration, after the report or failure lands. The
            // guard also covers the panic path — the count drops during
            // unwind, after the `Aborted` lifecycle is recorded.
            let _in_flight = InFlightGuard::arm(&self.in_flight);
            let op_began = Instant::now();
            let mut phase_log = span_ctx.as_ref().map(|_| PhaseSpanLog::default());
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &queued.kind {
                    OpKind::Apply { patch, rollback } => {
                        // The pre-update snapshot feeding the rollback ring.
                        // Forward applies record it on success; rollbacks
                        // retire the entry they undo instead.
                        let ring_snap = if *rollback {
                            None
                        } else {
                            let depth = self.snapshots.lock().expect("poisoned").depth();
                            (depth > 0).then(|| proc.snapshot())
                        };
                        match apply_patch_spanned(proc, patch, self.policy, phase_log.as_mut()) {
                            Ok(mut report) => {
                                report.rolled_back = *rollback;
                                let mut ring = self.snapshots.lock().expect("poisoned");
                                match ring_snap {
                                    Some(snap) => {
                                        ring.push(&patch.from_version, &patch.to_version, snap);
                                    }
                                    None => ring.retire_undone(&patch.from_version),
                                }
                                *self.transitions.lock().expect("poisoned") = ring.transitions();
                                Ok(report)
                            }
                            Err(e) => Err(e),
                        }
                    }
                    OpKind::Restore { .. } => {
                        // A snapshot restore is pure rebinding: the whole
                        // pause is charged to `bind`, the atomic-flip phase.
                        let t = Instant::now();
                        let entry = {
                            let mut ring = self.snapshots.lock().expect("poisoned");
                            let entry = ring.pop();
                            *self.transitions.lock().expect("poisoned") = ring.transitions();
                            entry
                        };
                        match entry {
                            None => Err(UpdateError::NoSnapshot),
                            Some(entry) => {
                                let heap_before = proc.heap_size();
                                proc.restore(entry.snapshot);
                                let timings = PhaseTimings {
                                    bind: t.elapsed(),
                                    ..PhaseTimings::default()
                                };
                                if let Some(log) = phase_log.as_mut() {
                                    log.push("bind", t, timings.bind);
                                }
                                Ok(UpdateReport {
                                    from_version: entry.to_version,
                                    to_version: entry.from_version,
                                    timings,
                                    functions_replaced: 0,
                                    functions_added: 0,
                                    functions_removed: 0,
                                    types_changed: 0,
                                    globals_transformed: 0,
                                    patch_bytes: 0,
                                    heap_before,
                                    heap_after: proc.heap_size(),
                                    rolled_back: true,
                                })
                            }
                        }
                    }
                }));
            let result = match outcome {
                Ok(r) => r,
                Err(payload) => {
                    // A panic mid-apply (crash injection, or a genuine
                    // bug) is about to kill this thread. The journal must
                    // not be left with a dangling open lifecycle, so
                    // close the in-flight op with `Aborted` first, then
                    // let the panic keep unwinding to the worker
                    // boundary — the supervisor sees a dead thread, the
                    // journal sees a closed lifecycle.
                    if let Some(t) = &trace {
                        t.journal.record(
                            t.worker,
                            queued.update,
                            queued.version_from(),
                            queued.version_to(),
                            Stage::Aborted,
                            None,
                            Some(&format!("crashed: {}", panic_detail(payload.as_ref()))),
                        );
                    }
                    std::panic::resume_unwind(payload);
                }
            };
            match result {
                Ok(mut report) => {
                    // The quiescence wait is charged once, to the first
                    // patch this pause applies.
                    report.timings.drain += std::mem::take(&mut drain_dur);
                    self.record_chain_hop(&queued.kind, &report);
                    let link = span_ctx.as_mut().map(|ctx| {
                        record_update_spans(
                            ctx,
                            queued.update,
                            &report,
                            pause_began,
                            op_began,
                            gate_span,
                            phase_log.as_ref().expect("span ctx implies phase log"),
                        )
                    });
                    if let Some(t) = &trace {
                        emit_applied(t, queued.update, &report, link);
                    }
                    self.log.lock().expect("poisoned").push(report);
                    applied += 1;
                }
                Err(e) => {
                    if let Some(t) = &trace {
                        emit_aborted(t, &queued, &e);
                    }
                    if self.strict {
                        proc.request_update(!self.pending.lock().expect("poisoned").is_empty());
                        return Err(e);
                    }
                    self.failures
                        .lock()
                        .expect("poisoned")
                        .push(FailedUpdate::new(
                            queued.version_from(),
                            queued.version_to(),
                            e,
                        ));
                }
            }
        }
        proc.request_update(false);
        Ok(applied)
    }

    /// Mirrors a successful op into the replay chain: forward applies
    /// push their patch; rollbacks (inverse patch or snapshot restore)
    /// pop the hop they undo when it is the chain tip.
    fn record_chain_hop(&mut self, kind: &OpKind, report: &UpdateReport) {
        if report.rolled_back {
            let undoes_tip = self.chain.last().is_some_and(|p| {
                p.to_version == report.from_version && p.from_version == report.to_version
            });
            if undoes_tip {
                self.chain.pop();
            }
        } else if let OpKind::Apply { patch, .. } = kind {
            self.chain.push((**patch).clone());
        }
    }

    /// Runs `entry(args)` to completion, applying queued patches whenever
    /// the guest suspends at an update point.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trap`] if the guest traps, or (strict mode)
    /// [`RunError::Update`] if a queued patch fails to apply.
    pub fn run(
        &mut self,
        proc: &mut Process,
        entry: &str,
        args: Vec<Value>,
    ) -> Result<Value, RunError> {
        let mut outcome = proc.run(entry, args)?;
        loop {
            match outcome {
                Outcome::Done(v) => return Ok(v),
                Outcome::Suspended => {
                    if let Err(e) = self.apply_pending(proc) {
                        if self.strict {
                            // Abandon the suspended run cleanly.
                            proc.discard_suspended();
                            return Err(RunError::Update(e));
                        }
                    }
                    outcome = proc.resume()?;
                }
            }
        }
    }
}

/// Holds one mid-apply op inside [`Updater::pending_count`] from its pop
/// off the queue until its outcome is published (normally, on an early
/// strict-mode return, or during a panic unwind alike).
struct InFlightGuard(Arc<AtomicUsize>);

impl InFlightGuard {
    fn arm(count: &Arc<AtomicUsize>) -> InFlightGuard {
        count.fetch_add(1, Ordering::SeqCst);
        InFlightGuard(Arc::clone(count))
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Best human-readable rendering of a panic payload (`&str` and `String`
/// payloads verbatim; anything else a generic note).
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked mid-apply".to_string()
    }
}

/// Splits a [`Updater::save_worker_state`] blob into the replay chain
/// (patches, oldest first) and the inner [`Updater::save_state`] block.
/// The caller replays the chain through the ordinary pipeline (each hop a
/// normal journaled lifecycle) and then feeds the inner block to
/// [`Updater::load_state`], which installs the *pre-crash* snapshot ring
/// over the replay's and re-queues any ops the crash interrupted.
///
/// # Errors
///
/// Returns a description of the first malformed section.
pub fn decode_worker_state(text: &str) -> Result<(Vec<Patch>, String), String> {
    let rest = text
        .strip_prefix("dsu-worker-state 1\n")
        .ok_or("bad worker-state header")?;
    let (line, mut rest) = rest.split_once('\n').ok_or("missing chain section")?;
    let n: usize = line
        .strip_prefix("chain ")
        .ok_or("missing chain section")?
        .parse()
        .map_err(|e| format!("bad chain count: {e}"))?;
    let mut chain = Vec::with_capacity(n);
    for _ in 0..n {
        let (pline, body) = rest.split_once('\n').ok_or("truncated patch line")?;
        let len: usize = pline
            .strip_prefix("patch ")
            .ok_or("missing patch line")?
            .parse()
            .map_err(|e| format!("bad patch length: {e}"))?;
        if body.len() < len {
            return Err("truncated patch body".to_string());
        }
        let patch = crate::patch_io::load_patch(&body[..len]).map_err(|e| e.to_string())?;
        let tail = &body[len..];
        rest = tail.strip_prefix('\n').unwrap_or(tail);
        chain.push(patch);
    }
    let (sline, rest) = rest.split_once('\n').ok_or("missing state section")?;
    let len: usize = sline
        .strip_prefix("state ")
        .ok_or("missing state section")?
        .parse()
        .map_err(|e| format!("bad state length: {e}"))?;
    if rest.len() < len {
        return Err("truncated state section".to_string());
    }
    Ok((chain, rest[..len].to_string()))
}

/// Queues an operation, assigning it a journal lifecycle id and emitting
/// the `Enqueued` event when tracing is on (shared by [`Updater::enqueue`]
/// and [`UpdaterRemote::enqueue`] and their rollback variants).
fn enqueue_traced(pending: &Mutex<VecDeque<QueuedOp>>, trace: &Mutex<Option<Trace>>, kind: OpKind) {
    let t = trace.lock().expect("poisoned").clone();
    let update = match &t {
        Some(t) => t.journal.next_update_id(),
        None => 0,
    };
    let queued = QueuedOp { update, kind };
    if let Some(t) = &t {
        t.journal.record(
            t.worker,
            update,
            queued.version_from(),
            queued.version_to(),
            Stage::Enqueued,
            None,
            None,
        );
    }
    pending.lock().expect("poisoned").push_back(queued);
}

/// The `(from, to)` a snapshot rollback enqueued *now* would report: the
/// ring's top transition reversed, read from the Send-safe mirror. Falls
/// back to `"?"` when the ring is empty (the apply will abort with
/// `NoSnapshot`).
fn rollback_transition(transitions: &Mutex<Vec<(String, String)>>) -> (String, String) {
    transitions
        .lock()
        .expect("poisoned")
        .last()
        .map(|(from, to)| (to.clone(), from.clone()))
        .unwrap_or_else(|| ("?".to_string(), "?".to_string()))
}

/// Queues up to `hops` snapshot restores walking the ring's retained
/// transitions backwards (newest first). Each hop's versions are resolved
/// now from the Send-safe mirror so every journal lifecycle names its own
/// leg of the chain; apply pops the real ring sequentially, so the hops
/// line up as long as nothing else races the ring. Returns the number of
/// hops actually queued (clamped to the mirror's length).
fn enqueue_chain(
    pending: &Mutex<VecDeque<QueuedOp>>,
    trace: &Mutex<Option<Trace>>,
    transitions: &Mutex<Vec<(String, String)>>,
    hops: usize,
) -> usize {
    let trans = transitions.lock().expect("poisoned").clone();
    let n = hops.min(trans.len());
    for (from, to) in trans.iter().rev().take(n) {
        enqueue_traced(
            pending,
            trace,
            OpKind::Restore {
                from: to.clone(),
                to: from.clone(),
            },
        );
    }
    n
}

/// Drains every queued operation without applying it, emitting an
/// `Aborted` lifecycle event per operation when tracing is on. Used by a
/// coordinator to withdraw patches from a worker that must not proceed
/// (a held rollout, a stalled gate). Returns how many were cancelled.
fn cancel_traced(
    pending: &Mutex<VecDeque<QueuedOp>>,
    trace: &Mutex<Option<Trace>>,
    reason: &str,
) -> usize {
    let drained: Vec<QueuedOp> = pending.lock().expect("poisoned").drain(..).collect();
    if let Some(t) = trace.lock().expect("poisoned").clone() {
        for q in &drained {
            t.journal.record(
                t.worker,
                q.update,
                q.version_from(),
                q.version_to(),
                Stage::Aborted,
                None,
                Some(&format!("cancelled: {reason}")),
            );
        }
    }
    drained.len()
}

/// Records the span tree of one applied update: a root `Update` span
/// covering the whole pause share of this op (the pause's first applied
/// patch owns the pre-apply interval — drain hook and gate included)
/// with one `UpdatePhase` child per non-empty phase, carrying the exact
/// durations stored in `PhaseTimings`. Returns the `(trace, span)`
/// cross-link for the journal. Child intervals are clamped into the
/// root's so the nesting invariant holds by construction.
fn record_update_spans(
    ctx: &mut SpanCtx,
    update: u64,
    report: &UpdateReport,
    pause_began: Instant,
    op_began: Instant,
    gate_span: Option<(Instant, Duration)>,
    phase_log: &PhaseSpanLog,
) -> (u64, u64) {
    let first = !ctx.head_used;
    let root_id = if first {
        ctx.head_used = true;
        ctx.head_root
    } else {
        ctx.tracer.next_span_id()
    };
    let start = if first { pause_began } else { op_began };
    let root_start = ctx.tracer.since_epoch(start);
    let root_end = ctx.tracer.now().max(root_start);
    let name = if report.rolled_back {
        "rollback"
    } else {
        "update"
    };

    let mut children: Vec<(&'static str, Duration, Duration)> = Vec::new();
    if first {
        if report.timings.drain > Duration::ZERO {
            children.push(("drain", root_start, report.timings.drain));
        }
        if let Some((gate_began, gate_dur)) = gate_span {
            if gate_dur > Duration::ZERO {
                children.push(("gate-wait", ctx.tracer.since_epoch(gate_began), gate_dur));
            }
        }
    }
    for (phase, began, dur) in &phase_log.phases {
        if *dur > Duration::ZERO {
            children.push((phase, ctx.tracer.since_epoch(*began), *dur));
        }
    }

    let mut batch = Vec::with_capacity(children.len() + 1);
    batch.push(Span {
        trace: ctx.trace_id,
        id: root_id,
        parent: ctx.parent,
        kind: SpanKind::Update,
        name,
        worker: ctx.worker,
        start: root_start,
        dur: root_end - root_start,
        update: Some(update),
        request: None,
        detail: Some(format!("{}->{}", report.from_version, report.to_version)),
    });
    for (phase, begin, dur) in children {
        let s = begin.clamp(root_start, root_end);
        let e = (begin + dur).clamp(s, root_end);
        batch.push(Span {
            trace: ctx.trace_id,
            id: ctx.tracer.next_span_id(),
            parent: Some(root_id),
            kind: SpanKind::UpdatePhase,
            name: phase,
            worker: ctx.worker,
            start: s,
            dur: e - s,
            update: Some(update),
            request: None,
            detail: None,
        });
    }
    ctx.tracer.record_many(batch);
    (ctx.trace_id, root_id)
}

/// Emits the seven phase events (durations copied verbatim from the
/// report's [`crate::PhaseTimings`], so journal sums equal
/// `timings.total()` exactly) followed by the terminal stage —
/// `Committed`, or `RolledBack` for a downgrade, either way carrying the
/// pipeline total. `link` is the update root span's `(trace, span)`,
/// attached to every event when span tracing is on.
fn emit_applied(t: &Trace, update: u64, report: &UpdateReport, link: Option<(u64, u64)>) {
    let ts = &report.timings;
    let phases = [
        (Stage::Drain, ts.drain),
        (Stage::Verify, ts.verify),
        (Stage::Compat, ts.compat),
        (Stage::Link, ts.link),
        (Stage::Bind, ts.bind),
        (Stage::Init, ts.init),
        (Stage::Transform, ts.transform),
    ];
    for (stage, dur) in phases {
        t.journal.record_spanned(
            t.worker,
            update,
            &report.from_version,
            &report.to_version,
            stage,
            Some(dur),
            None,
            link,
        );
    }
    let terminal = if report.rolled_back {
        Stage::RolledBack
    } else {
        Stage::Committed
    };
    t.journal.record_spanned(
        t.worker,
        update,
        &report.from_version,
        &report.to_version,
        terminal,
        Some(ts.total()),
        None,
        link,
    );
}

/// Emits `Aborted`, carrying the failing phase and cause.
fn emit_aborted(t: &Trace, queued: &QueuedOp, error: &UpdateError) {
    t.journal.record(
        t.worker,
        queued.update,
        queued.version_from(),
        queued.version_to(),
        Stage::Aborted,
        None,
        Some(&format!("{}: {error}", error.phase())),
    );
}

/// Cross-thread control over one worker's [`Updater`]/[`Process`] pair
/// (see [`Updater::remote`]). All methods are safe to call while the
/// worker thread is mid-run: patches land in the shared queue, the signal
/// makes the guest suspend at its next update point, and results appear in
/// the shared logs as the worker applies.
#[derive(Clone)]
pub struct UpdaterRemote {
    pending: Arc<Mutex<VecDeque<QueuedOp>>>,
    in_flight: Arc<AtomicUsize>,
    log: Arc<Mutex<Vec<UpdateReport>>>,
    failures: Arc<Mutex<Vec<FailedUpdate>>>,
    pauses: PauseLog,
    gate: Arc<Mutex<Option<Gate>>>,
    trace: Arc<Mutex<Option<Trace>>>,
    span_parent: Arc<Mutex<Option<(u64, u64)>>>,
    transitions: Arc<Mutex<Vec<(String, String)>>>,
    signal: UpdateSignal,
}

impl std::fmt::Debug for UpdaterRemote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdaterRemote")
            .field("pending", &self.pending_count())
            .field("applied", &self.applied_count())
            .field("failed", &self.failure_count())
            .finish()
    }
}

impl UpdaterRemote {
    /// Queues a patch and arms the worker's update signal: the guest
    /// suspends and applies at its next executed update point (or the
    /// worker applies at its next quiescent boundary).
    pub fn enqueue(&self, patch: Patch) {
        enqueue_traced(
            &self.pending,
            &self.trace,
            OpKind::Apply {
                patch: Box::new(patch),
                rollback: false,
            },
        );
        self.signal.arm();
    }

    /// Queues an *inverse* patch on the worker: a downgrade whose reverse
    /// state transformers preserve current guest state. The report comes
    /// back marked [`UpdateReport::rolled_back`] and the lifecycle closes
    /// with `RolledBack` (see [`Updater::enqueue_rollback`]).
    pub fn enqueue_rollback(&self, patch: Patch) {
        enqueue_traced(
            &self.pending,
            &self.trace,
            OpKind::Apply {
                patch: Box::new(patch),
                rollback: true,
            },
        );
        self.signal.arm();
    }

    /// Queues a snapshot rollback on the worker: pop its snapshot ring
    /// and restore the top entry at the next pause (see
    /// [`Updater::enqueue_snapshot_rollback`]).
    pub fn enqueue_snapshot_rollback(&self) {
        let (from, to) = rollback_transition(&self.transitions);
        enqueue_traced(&self.pending, &self.trace, OpKind::Restore { from, to });
        self.signal.arm();
    }

    /// Queues a rollback *chain* on the worker: up to `hops` snapshot
    /// restores, newest transition first, each its own `RolledBack`
    /// lifecycle (see [`Updater::enqueue_rollback_chain`]). Clamped to
    /// the ring's current length; returns how many hops were queued.
    pub fn enqueue_rollback_chain(&self, hops: usize) -> usize {
        let n = enqueue_chain(&self.pending, &self.trace, &self.transitions, hops);
        if n > 0 {
            self.signal.arm();
        }
        n
    }

    /// Withdraws every queued operation before it applies, emitting an
    /// `Aborted` journal event per operation (`cancelled: {reason}`).
    /// Returns how many were cancelled. The worker's next pause then
    /// finds an empty queue and resumes untouched — this is how a
    /// coordinator holds a rollout or defuses a stalled worker without
    /// letting the withdrawn patch land later.
    pub fn cancel_pending(&self, reason: &str) -> usize {
        cancel_traced(&self.pending, &self.trace, reason)
    }

    /// The `(from, to)` transitions whose pre-update snapshots the
    /// worker's ring retains, oldest first.
    pub fn snapshot_transitions(&self) -> Vec<(String, String)> {
        self.transitions.lock().expect("poisoned").clone()
    }

    /// Installs a one-shot gate run at the start of the next pause, before
    /// any patch applies. Used to line several workers up (barrier) for a
    /// simultaneous rollout.
    pub fn set_gate(&self, gate: Gate) {
        *self.gate.lock().expect("poisoned") = Some(gate);
    }

    /// Propagates a rollout span context: update spans this worker
    /// records from now on join trace `trace` and parent under span
    /// `span` (the coordinator's rollout root span), until the next
    /// rollout overwrites the context. No-op for the journal; spans only.
    pub fn set_span_parent(&self, trace: u64, span: u64) {
        *self.span_parent.lock().expect("poisoned") = Some((trace, span));
    }

    /// Clears a propagated rollout span context: subsequent update spans
    /// open fresh traces again. Coordinators call this when their rollout
    /// root span closes, so a later direct update cannot parent under a
    /// span that has already ended.
    pub fn clear_span_parent(&self) {
        *self.span_parent.lock().expect("poisoned") = None;
    }

    /// Operations not yet fully applied: queued patches plus the op
    /// currently mid-apply, if any. Zero means every submitted op's
    /// outcome is visible through [`UpdaterRemote::reports`] /
    /// [`UpdaterRemote::failures`] — the invariant coordinators lean on
    /// when they poll "counts moved and nothing pending".
    pub fn pending_count(&self) -> usize {
        self.pending.lock().expect("poisoned").len() + self.in_flight.load(Ordering::SeqCst)
    }

    /// Successful applies so far.
    pub fn applied_count(&self) -> usize {
        self.log.lock().expect("poisoned").len()
    }

    /// Failed applies so far (non-strict worker).
    pub fn failure_count(&self) -> usize {
        self.failures.lock().expect("poisoned").len()
    }

    /// Reports of every successful apply, oldest first.
    pub fn reports(&self) -> Vec<UpdateReport> {
        self.log.lock().expect("poisoned").clone()
    }

    /// Failures of every failed apply, oldest first, with version and
    /// failing-phase context.
    pub fn failures(&self) -> Vec<FailedUpdate> {
        self.failures.lock().expect("poisoned").clone()
    }

    /// Update pauses recorded so far, oldest first.
    pub fn pauses(&self) -> Vec<PauseEvent> {
        self.pauses.lock().expect("poisoned").clone()
    }
}
