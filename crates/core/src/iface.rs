//! Extracting a running process's interface for patch compilation.

use popcorn::Interface;
use vm::Process;

/// Builds the ambient [`Interface`] of a running process: every currently
/// bound function, global, type and host function. Patch sources are
/// compiled against this (possibly extended with alias structs for old
/// type versions via [`Interface::with_struct`]).
pub fn interface_of(proc: &Process) -> Interface {
    let mut iface = Interface::new();
    for (name, sid) in proc.type_bindings() {
        let mut def = proc.struct_def(sid).clone();
        // The registered definition may carry its original name; expose it
        // under the *currently bound* name.
        def.name = name.to_string();
        iface.structs.insert(name.to_string(), def);
    }
    for cell in proc.globals() {
        iface.globals.insert(cell.name.clone(), cell.ty.clone());
    }
    for (name, f) in proc.bound_functions() {
        iface.functions.insert(name.to_string(), f.sig.clone());
    }
    for (name, sig) in proc.host_sigs() {
        iface.hosts.insert(name.to_string(), sig.clone());
    }
    iface
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::LinkMode;

    #[test]
    fn captures_all_binding_kinds() {
        let src = r#"
            struct s { v: int }
            extern fun h(): int;
            global g: s = s { v: 1 };
            fun f(x: int): int { return x + h(); }
        "#;
        let m = popcorn::compile(src, "m", "v1", &Interface::new()).unwrap();
        let mut p = Process::new(LinkMode::Updateable);
        p.register_host(
            "h",
            tal::FnSig::new(vec![], tal::Ty::Int),
            Box::new(|_| Ok(vm::Value::Int(0))),
        );
        p.load_module(&m).unwrap();
        let iface = interface_of(&p);
        assert!(iface.structs.contains_key("s"));
        assert!(iface.globals.contains_key("g"));
        assert!(iface.functions.contains_key("f"));
        assert!(iface.hosts.contains_key("h"));
    }
}
