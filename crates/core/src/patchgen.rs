//! The patch generator: source diff → dynamic patch.
//!
//! Mirrors the paper's patch-generation tooling (§5): given the previous
//! and next versions of a program's source, it computes which functions,
//! types and globals changed; pulls in everything the update-safety rules
//! require (callers of signature-changed functions, all code touching a
//! changed type); synthesises **state transformer** functions where the
//! change is mechanical (field-preserving struct growth/shrinkage, also
//! element-wise over arrays); and compiles the result into a verified
//! [`Patch`]. Changes it cannot transform automatically are reported so
//! the programmer can supply a hand-written transformer.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use popcorn::ast::{Item, Program};
use popcorn::{pretty, Interface};
use tal::{Module, SymbolKind, Ty, TypeDef};

use crate::compat::{rename_ty, rename_typedef};
use crate::patch::{compile_patch, Manifest, Patch, Transformer, TypeAlias};

/// Suffix appended to a changed type's name to form its patch-local alias
/// for the old representation.
pub const ALIAS_SUFFIX: &str = "__old";

/// A hand-written state transformer supplied to the generator for changes
/// it cannot synthesise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManualTransformer {
    /// The global this transformer converts.
    pub global: String,
    /// Name of the transformer function inside `source`.
    pub function: String,
    /// Popcorn source of the transformer (may reference `T__old` aliases).
    pub source: String,
}

/// Patch-generation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchGenError {
    /// One of the two sources (or the composed patch) failed to compile.
    Compile(popcorn::CompileError),
    /// A global needs state transformation that the generator cannot
    /// synthesise; supply a [`ManualTransformer`].
    NeedsManualTransformer {
        /// The affected global.
        global: String,
        /// Its (new) type.
        ty: String,
        /// Why synthesis failed.
        reason: String,
    },
}

impl fmt::Display for PatchGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchGenError::Compile(e) => write!(f, "patch generation: {e}"),
            PatchGenError::NeedsManualTransformer { global, ty, reason } => write!(
                f,
                "global `{global}`: {ty} needs a hand-written transformer ({reason})"
            ),
        }
    }
}

impl std::error::Error for PatchGenError {}

impl From<popcorn::CompileError> for PatchGenError {
    fn from(e: popcorn::CompileError) -> PatchGenError {
        PatchGenError::Compile(e)
    }
}

/// What the diff found (the paper's per-patch statistics, Table 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Functions whose body or signature changed.
    pub functions_changed: usize,
    /// Functions pulled in only because a type or signature they depend on
    /// changed (their own text is identical).
    pub functions_carried: usize,
    /// New functions.
    pub functions_added: usize,
    /// Removed functions.
    pub functions_removed: usize,
    /// Struct types whose definition changed.
    pub types_changed: usize,
    /// New globals.
    pub globals_added: usize,
    /// State transformers in the patch (auto plus manual).
    pub transformers: usize,
    /// Transformers synthesised automatically.
    pub transformers_auto: usize,
}

/// A generated patch, its composed source, and diff statistics.
#[derive(Debug, Clone)]
pub struct GeneratedPatch {
    /// The compiled patch, ready for [`crate::apply_patch`].
    pub patch: Patch,
    /// The Popcorn source the patch was compiled from (debugging aid).
    pub source: String,
    /// Diff statistics.
    pub stats: DiffStats,
}

/// Configurable patch generator.
#[derive(Debug, Clone, Default)]
pub struct PatchGen {
    /// Hand-written transformers for non-mechanical state changes.
    pub manual: Vec<ManualTransformer>,
}

impl PatchGen {
    /// Creates a generator with no manual transformers.
    pub fn new() -> PatchGen {
        PatchGen::default()
    }

    /// Registers a manual transformer.
    pub fn with_manual(mut self, m: ManualTransformer) -> PatchGen {
        self.manual.push(m);
        self
    }

    /// Diffs `old_src` → `new_src` and produces the patch taking a process
    /// running the old version to the new one.
    ///
    /// # Errors
    ///
    /// Returns [`PatchGenError::Compile`] when either source (or the
    /// composed patch) fails to compile, and
    /// [`PatchGenError::NeedsManualTransformer`] when a state change is
    /// beyond mechanical synthesis.
    pub fn generate(
        &self,
        old_src: &str,
        new_src: &str,
        from_version: &str,
        to_version: &str,
    ) -> Result<GeneratedPatch, PatchGenError> {
        let old_ast = popcorn::parse(old_src)?;
        let new_ast = popcorn::parse(new_src)?;
        let old_mod = popcorn::compile(old_src, "old", from_version, &Interface::new())?;
        let new_mod = popcorn::compile(new_src, "new", to_version, &Interface::new())?;

        let d = Diff::compute(&old_ast, &new_ast, &old_mod, &new_mod);

        // ---- synthesize / collect transformers --------------------------
        let alias_pairs: Vec<(String, String)> = d
            .types_changed
            .iter()
            .map(|t| (t.clone(), alias_name(t)))
            .collect();
        let alias_map: HashMap<&str, &str> = alias_pairs
            .iter()
            .map(|(t, a)| (t.as_str(), a.as_str()))
            .collect();
        let mut xform_sources = Vec::new();
        let mut transformers = Vec::new();
        let mut auto = 0;
        for g in &d.globals_needing_transform {
            if let Some(man) = self.manual.iter().find(|m| &m.global == g) {
                xform_sources.push(man.source.clone());
                transformers.push(Transformer {
                    global: g.clone(),
                    function: man.function.clone(),
                });
                continue;
            }
            let old_ty = old_mod.global(g).expect("diffed").ty.clone();
            let new_ty = new_mod.global(g).expect("diffed").ty.clone();
            let src = synthesize_transformer(
                g, to_version, &old_ty, &new_ty, &old_mod, &new_mod, &alias_map,
            )
            .map_err(|reason| PatchGenError::NeedsManualTransformer {
                global: g.clone(),
                ty: new_ty.to_string(),
                reason,
            })?;
            xform_sources.push(src);
            transformers.push(Transformer {
                global: g.clone(),
                function: xform_name(g, to_version),
            });
            auto += 1;
        }

        // ---- compose the patch source ------------------------------------
        let mut source = String::new();
        // Alias structs for old representations (only when needed).
        let needs_aliases = !transformers.is_empty();
        let mut type_aliases = Vec::new();
        if needs_aliases {
            for t in &d.types_changed {
                let old_def = old_mod.type_def(t).expect("diffed");
                let alias = alias_name(t);
                let renamed = rename_typedef(old_def, &alias, &alias_map);
                source.push_str(&typedef_source(&renamed));
                type_aliases.push(TypeAlias {
                    alias,
                    target: t.clone(),
                });
            }
        }
        // New definitions of changed types, and brand-new types.
        for t in &d.types_changed {
            source.push_str(&typedef_source(new_mod.type_def(t).expect("diffed")));
        }
        for t in &d.types_added {
            source.push_str(&typedef_source(new_mod.type_def(t).expect("diffed")));
        }
        // Extern declarations (hosts merge by signature).
        for e in new_ast.externs() {
            source.push_str(&pretty::extern_def(e));
        }
        // New globals.
        for item in &new_ast.items {
            if let Item::Global(g) = item {
                if d.globals_added.contains(&g.name) {
                    source.push_str(&pretty::global_def(g));
                }
            }
        }
        // Replaced, carried and added functions (new text).
        for item in &new_ast.items {
            if let Item::Fun(f) = item {
                if d.functions_in_patch.contains(&f.name) {
                    source.push_str(&pretty::fun_def(f));
                    source.push('\n');
                }
            }
        }
        // Transformers last.
        for x in &xform_sources {
            source.push_str(x);
            source.push('\n');
        }

        // ---- manifest -------------------------------------------------------
        let old_funs: BTreeSet<&str> = old_mod.functions.iter().map(|f| f.name.as_str()).collect();
        let mut replaces = Vec::new();
        let mut adds = Vec::new();
        for name in &d.functions_in_patch {
            if old_funs.contains(name.as_str()) {
                replaces.push(name.clone());
            } else {
                adds.push(name.clone());
            }
        }
        for x in &transformers {
            adds.push(x.function.clone());
        }
        let manifest = Manifest {
            replaces,
            adds,
            removes: d.functions_removed.iter().cloned().collect(),
            new_globals: d.globals_added.iter().cloned().collect(),
            type_changes: d.types_changed.iter().cloned().collect(),
            type_aliases,
            transformers,
        };

        // ---- compile against the old program's interface ------------------
        let iface = interface_of_module(&old_mod);
        let patch = compile_patch(&source, from_version, to_version, &iface, manifest)?;

        let stats = DiffStats {
            functions_changed: d.functions_changed_count,
            functions_carried: d.functions_carried_count,
            functions_added: d.functions_added_count,
            functions_removed: d.functions_removed.len(),
            types_changed: d.types_changed.len(),
            globals_added: d.globals_added.len(),
            transformers: d.globals_needing_transform.len(),
            transformers_auto: auto,
        };
        Ok(GeneratedPatch {
            patch,
            source,
            stats,
        })
    }
}

/// The computed difference between two program versions.
struct Diff {
    types_changed: BTreeSet<String>,
    types_added: BTreeSet<String>,
    functions_in_patch: BTreeSet<String>,
    functions_removed: BTreeSet<String>,
    globals_added: BTreeSet<String>,
    globals_needing_transform: BTreeSet<String>,
    functions_changed_count: usize,
    functions_carried_count: usize,
    functions_added_count: usize,
}

impl Diff {
    fn compute(old_ast: &Program, new_ast: &Program, old_mod: &Module, new_mod: &Module) -> Diff {
        // Canonical renderings for text-level change detection.
        let old_fun_text: BTreeMap<&str, String> = old_ast
            .functions()
            .map(|f| (f.name.as_str(), pretty::fun_def(f)))
            .collect();
        let new_fun_text: BTreeMap<&str, String> = new_ast
            .functions()
            .map(|f| (f.name.as_str(), pretty::fun_def(f)))
            .collect();
        let old_struct_text: BTreeMap<&str, String> = old_ast
            .structs()
            .map(|s| (s.name.as_str(), pretty::struct_def(s)))
            .collect();
        let new_struct_text: BTreeMap<&str, String> = new_ast
            .structs()
            .map(|s| (s.name.as_str(), pretty::struct_def(s)))
            .collect();

        let mut types_changed = BTreeSet::new();
        let mut types_added = BTreeSet::new();
        for (name, text) in &new_struct_text {
            match old_struct_text.get(name) {
                Some(old) if old == text => {}
                Some(_) => {
                    types_changed.insert((*name).to_string());
                }
                None => {
                    types_added.insert((*name).to_string());
                }
            }
        }

        let mut changed: BTreeSet<String> = BTreeSet::new();
        let mut added: BTreeSet<String> = BTreeSet::new();
        let mut removed: BTreeSet<String> = BTreeSet::new();
        for (name, text) in &new_fun_text {
            match old_fun_text.get(name) {
                Some(old) if old == text => {}
                Some(_) => {
                    changed.insert((*name).to_string());
                }
                None => {
                    added.insert((*name).to_string());
                }
            }
        }
        for name in old_fun_text.keys() {
            if !new_fun_text.contains_key(name) {
                removed.insert((*name).to_string());
            }
        }

        // Carry in functions forced by the update-safety rules, using the
        // *compiled* metadata (accurate about field accesses and calls).
        let mut carried: BTreeSet<String> = BTreeSet::new();
        // (a) any surviving function touching a changed type;
        for f in &new_mod.functions {
            if changed.contains(&f.name) || added.contains(&f.name) {
                continue;
            }
            let touched = f.referenced_types(new_mod);
            if touched.iter().any(|t| types_changed.contains(t)) {
                carried.insert(f.name.clone());
            }
        }
        // (b) any surviving caller of a signature-changed function.
        let sig_changed: BTreeSet<&str> = changed
            .iter()
            .filter(
                |name| match (old_mod.function(name), new_mod.function(name)) {
                    (Some(o), Some(n)) => o.sig != n.sig,
                    _ => false,
                },
            )
            .map(String::as_str)
            .collect();
        if !sig_changed.is_empty() {
            for f in &new_mod.functions {
                if changed.contains(&f.name) || added.contains(&f.name) || carried.contains(&f.name)
                {
                    continue;
                }
                let refs = f.referenced_symbols(new_mod);
                if refs.iter().any(|r| sig_changed.contains(r)) {
                    carried.insert(f.name.clone());
                }
            }
        }

        let mut functions_in_patch: BTreeSet<String> = BTreeSet::new();
        functions_in_patch.extend(changed.iter().cloned());
        functions_in_patch.extend(added.iter().cloned());
        functions_in_patch.extend(carried.iter().cloned());

        // Globals.
        let old_globals: BTreeMap<&str, &Ty> = old_mod
            .globals
            .iter()
            .map(|g| (g.name.as_str(), &g.ty))
            .collect();
        let mut globals_added = BTreeSet::new();
        let mut globals_needing_transform = BTreeSet::new();
        for g in &new_mod.globals {
            match old_globals.get(g.name.as_str()) {
                None => {
                    globals_added.insert(g.name.clone());
                }
                Some(old_ty) => {
                    let mut mentioned = Vec::new();
                    g.ty.collect_named(&mut mentioned);
                    let mentions_changed = mentioned.iter().any(|t| types_changed.contains(t));
                    if *old_ty != &g.ty || mentions_changed {
                        globals_needing_transform.insert(g.name.clone());
                    }
                }
            }
        }

        Diff {
            functions_changed_count: changed.len(),
            functions_carried_count: carried.len(),
            functions_added_count: added.len(),
            types_changed,
            types_added,
            functions_in_patch,
            functions_removed: removed,
            globals_added,
            globals_needing_transform,
        }
    }
}

fn alias_name(t: &str) -> String {
    format!("{t}{ALIAS_SUFFIX}")
}

/// Transformer names are qualified by target version so that successive
/// patches transforming the same global do not collide in the flat
/// function namespace (superseded transformers stay bound until code GC).
fn xform_name(global: &str, to_version: &str) -> String {
    let sane: String = to_version
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    format!("__xform_{global}_{sane}")
}

/// Renders a `tal` type definition as Popcorn source.
fn typedef_source(def: &TypeDef) -> String {
    let fields: Vec<String> = def
        .fields
        .iter()
        .map(|f| format!("{}: {}", f.name, f.ty))
        .collect();
    format!("struct {} {{ {} }}\n", def.name, fields.join(", "))
}

/// Builds the ambient interface of a compiled module (the "running
/// program" as the patch compiler sees it).
pub fn interface_of_module(m: &Module) -> Interface {
    let mut iface = Interface::new();
    for t in &m.types {
        iface.structs.insert(t.name.clone(), t.clone());
    }
    for g in &m.globals {
        iface.globals.insert(g.name.clone(), g.ty.clone());
    }
    for f in &m.functions {
        iface.functions.insert(f.name.clone(), f.sig.clone());
    }
    for s in &m.symbols {
        if let SymbolKind::Host(sig) = &s.kind {
            iface.hosts.insert(s.name.clone(), sig.clone());
        }
    }
    iface
}

/// Popcorn default expression for a field type, if one exists.
fn default_expr(ty: &Ty) -> Option<String> {
    match ty {
        Ty::Int => Some("0".to_string()),
        Ty::Bool => Some("false".to_string()),
        Ty::Str => Some("\"\"".to_string()),
        Ty::Named(_) => Some("null".to_string()),
        Ty::Array(e) => Some(format!("new [{e}]")),
        Ty::Unit | Ty::Fn(_) => None,
    }
}

/// Synthesises a transformer for global `g` when the change is mechanical:
/// the global's type is `T` or `[T]` for a single changed struct `T`, and
/// every new field either carries over from the old struct (same name and
/// type, the type not itself mentioning a changed name) or has a default.
fn synthesize_transformer(
    g: &str,
    to_version: &str,
    old_ty: &Ty,
    new_ty: &Ty,
    old_mod: &Module,
    new_mod: &Module,
    alias_map: &HashMap<&str, &str>,
) -> Result<String, String> {
    // Identical type, merely mentions a changed struct: supported shapes
    // below. A global whose own type changed (e.g. int -> string) is not
    // mechanical.
    if old_ty != new_ty {
        return Err(format!("type changed from {old_ty} to {new_ty}"));
    }
    match new_ty {
        Ty::Named(t) => {
            let body = record_conversion(t, "old", old_mod, new_mod, alias_map)?;
            let old_repr = rename_ty(old_ty, alias_map);
            Ok(format!(
                "fun {name}(old: {old_repr}): {new_ty} {{\n    if (old == null) {{ return null; }}\n    return {body};\n}}\n",
                name = xform_name(g, to_version),
            ))
        }
        Ty::Array(elem) => {
            let Ty::Named(t) = &**elem else {
                return Err(format!("unsupported array element {elem}"));
            };
            let body = record_conversion(t, "o", old_mod, new_mod, alias_map)?;
            let old_repr = rename_ty(old_ty, alias_map);
            let elem_old = rename_ty(elem, alias_map);
            Ok(format!(
                "fun {name}(old: {old_repr}): {new_ty} {{\n    var out: {new_ty} = new [{elem}];\n    var i: int = 0;\n    while (i < len(old)) {{\n        var o: {elem_old} = old[i];\n        if (o == null) {{ push(out, null); }} else {{ push(out, {body}); }}\n        i = i + 1;\n    }}\n    return out;\n}}\n",
                name = xform_name(g, to_version),
            ))
        }
        other => Err(format!("unsupported shape {other}")),
    }
}

/// Builds the record-literal expression converting `src_var` (old layout)
/// into the new layout of changed struct `t`.
fn record_conversion(
    t: &str,
    src_var: &str,
    old_mod: &Module,
    new_mod: &Module,
    alias_map: &HashMap<&str, &str>,
) -> Result<String, String> {
    let Some(old_def) = old_mod.type_def(t) else {
        return Err(format!("`{t}` has no old definition"));
    };
    let Some(new_def) = new_mod.type_def(t) else {
        return Err(format!("`{t}` has no new definition"));
    };
    let mut fields = Vec::new();
    for f in &new_def.fields {
        let mut mentioned = Vec::new();
        f.ty.collect_named(&mut mentioned);
        let mentions_changed = mentioned.iter().any(|m| alias_map.contains_key(m.as_str()));
        match old_def.fields.iter().find(|of| of.name == f.name) {
            Some(of) if of.ty == f.ty && !mentions_changed => {
                fields.push(format!("{}: {src_var}.{}", f.name, f.name));
            }
            Some(_) => {
                return Err(format!(
                    "field `{}` changed type or references a changed type",
                    f.name
                ))
            }
            None => match default_expr(&f.ty) {
                Some(d) => fields.push(format!("{}: {d}", f.name)),
                None => return Err(format!("new field `{}` has no default ({})", f.name, f.ty)),
            },
        }
    }
    Ok(format!("{t} {{ {} }}", fields.join(", ")))
}
