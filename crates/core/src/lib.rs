//! # dsu-core — Dynamic Software Updating (PLDI 2001) in Rust
//!
//! This crate is the reproduction's primary contribution: the dynamic
//! software updating methodology of Hicks, Moore & Nettles — *verifiable
//! dynamic patches applied at programmer-chosen update points, with state
//! transformation* — implemented over the `tal`/`popcorn`/`vm` substrate.
//!
//! The moving parts:
//!
//! * [`Patch`] — new/changed code as verifiable object code plus a
//!   [`Manifest`] of interface and state deltas;
//! * [`apply_patch`] — the update pipeline: verify → compatibility check →
//!   link → atomic bind → state transformation, with rollback on failure;
//! * [`compat`] — the update-safety analysis that keeps a *running*
//!   program type-safe across the update (signature-change, removal and
//!   type-change rules, including against active stack frames);
//! * [`Updater`] — the runtime driver: queue patches, suspend at `update;`
//!   points, apply, resume (old frames finish under old code);
//! * [`PatchGen`] — the tooling: diff two source versions, carry in
//!   everything safety requires, synthesise state transformers for
//!   mechanical type changes;
//! * [`SnapshotRing`] — first-class rollback: a bounded ring of
//!   pre-update snapshots per process, driving both snapshot restores and
//!   inverse-patch downgrades through the [`Updater`];
//! * [`VersionManager`] — version history and best-effort rollback.
//!
//! ## Quick start
//!
//! ```
//! use dsu_core::{interface_of, compile_patch, apply_patch, Manifest, UpdatePolicy};
//! use vm::{Process, LinkMode, Value};
//!
//! // A running v1 program...
//! let v1 = popcorn::compile(
//!     "fun greet(): string { return \"hello v1\"; }",
//!     "app", "v1", &popcorn::Interface::new())?;
//! let mut proc = Process::new(LinkMode::Updateable);
//! proc.load_module(&v1)?;
//! assert_eq!(proc.call("greet", vec![])?, Value::str("hello v1"));
//!
//! // ...dynamically updated to v2.
//! let patch = compile_patch(
//!     "fun greet(): string { return \"hello v2\"; }",
//!     "v1", "v2", &interface_of(&proc),
//!     Manifest { replaces: vec!["greet".into()], ..Manifest::default() })?;
//! apply_patch(&mut proc, &patch, UpdatePolicy::default())?;
//! assert_eq!(proc.call("greet", vec![])?, Value::str("hello v2"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod apply;
pub mod compat;
pub mod iface;
pub mod patch;
pub mod patch_io;
pub mod patchgen;
pub mod report;
pub mod rollback;
pub mod runtime;
pub mod version;

pub use apply::{
    apply_patch, apply_patch_spanned, set_phase_probe, PhaseSpanLog, TransformTiming, UpdatePolicy,
};
pub use iface::interface_of;
pub use patch::{compile_patch, Manifest, Patch, Transformer, TypeAlias};
pub use patch_io::{load_patch, save_patch, PatchIoError};
pub use patchgen::{
    interface_of_module, DiffStats, GeneratedPatch, ManualTransformer, PatchGen, PatchGenError,
    ALIAS_SUFFIX,
};
pub use report::{FailedUpdate, FleetUpdateReport, PhaseTimings, UpdateError, UpdateReport};
pub use rollback::{SnapshotEntry, SnapshotRing, DEFAULT_SNAPSHOT_DEPTH};
pub use runtime::{
    decode_worker_state, DrainHook, Gate, PauseEvent, PauseLog, RunError, Updater, UpdaterRemote,
};
pub use version::VersionManager;

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{LinkMode, Process, Value};

    fn boot(src: &str) -> Process {
        let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).unwrap();
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&m).unwrap();
        p
    }

    #[test]
    fn method_body_change() {
        let mut p = boot("fun f(x: int): int { return x + 1; }");
        assert_eq!(p.call("f", vec![Value::Int(1)]).unwrap(), Value::Int(2));
        let patch = compile_patch(
            "fun f(x: int): int { return x * 10; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["f".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        let report = apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap();
        assert_eq!(p.call("f", vec![Value::Int(1)]).unwrap(), Value::Int(10));
        assert_eq!(report.functions_replaced, 1);
        assert!(report.timings.total().as_nanos() > 0);
    }

    #[test]
    fn add_function_and_global() {
        let mut p = boot("fun f(): int { return 1; }");
        let patch = compile_patch(
            r#"
            global calls: int = 100;
            fun f(): int { calls = calls + 1; return calls; }
            "#,
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["f".into()],
                new_globals: vec!["calls".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap();
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(101));
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(102));
    }

    #[test]
    fn remove_function() {
        let mut p = boot("fun helper(): int { return 1; } fun f(): int { return helper(); }");
        // Removing `helper` requires replacing its caller too.
        let patch = compile_patch(
            "fun f(): int { return 42; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["f".into()],
                removes: vec!["helper".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap();
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(42));
        assert!(p.function_id("helper").is_none());
    }

    #[test]
    fn remove_with_live_reference_is_rejected() {
        let mut p = boot("fun helper(): int { return 1; } fun f(): int { return helper(); }");
        let patch = compile_patch(
            "fun unrelated(): int { return 0; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                adds: vec!["unrelated".into()],
                removes: vec!["helper".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        let e = apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap_err();
        assert!(matches!(e, UpdateError::Compat(_)), "{e}");
        // Process unchanged.
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(1));
    }

    #[test]
    fn type_change_with_state_transformer() {
        let mut p = boot(
            r#"
            struct acct { owner: string, balance: int }
            global store: [acct] = [acct { owner: "ada", balance: 10 }];
            fun total(): int {
                var sum: int = 0;
                var i: int = 0;
                while (i < len(store)) { sum = sum + store[i].balance; i = i + 1; }
                return sum;
            }
            "#,
        );
        assert_eq!(p.call("total", vec![]).unwrap(), Value::Int(10));

        // v2 adds a `frozen` field; the transformer carries balances over.
        let iface = interface_of(&p);
        let patch = compile_patch(
            r#"
            struct acct__old { owner: string, balance: int }
            struct acct { owner: string, balance: int, frozen: bool }
            fun total(): int {
                var sum: int = 0;
                var i: int = 0;
                while (i < len(store)) {
                    if (!store[i].frozen) { sum = sum + store[i].balance; }
                    i = i + 1;
                }
                return sum;
            }
            fun freeze(i: int): unit { store[i].frozen = true; }
            fun __xform_store(old: [acct__old]): [acct] {
                var out: [acct] = new [acct];
                var i: int = 0;
                while (i < len(old)) {
                    push(out, acct { owner: old[i].owner, balance: old[i].balance, frozen: false });
                    i = i + 1;
                }
                return out;
            }
            "#,
            "v1",
            "v2",
            &iface,
            Manifest {
                replaces: vec!["total".into()],
                adds: vec!["freeze".into(), "__xform_store".into()],
                type_changes: vec!["acct".into()],
                type_aliases: vec![TypeAlias {
                    alias: "acct__old".into(),
                    target: "acct".into(),
                }],
                transformers: vec![Transformer {
                    global: "store".into(),
                    function: "__xform_store".into(),
                }],
                ..Manifest::default()
            },
        )
        .unwrap();
        let report = apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap();
        assert_eq!(report.globals_transformed, 1);
        assert_eq!(report.types_changed, 1);
        // Old balance carried across the representation change.
        assert_eq!(p.call("total", vec![]).unwrap(), Value::Int(10));
        p.call("freeze", vec![Value::Int(0)]).unwrap();
        assert_eq!(p.call("total", vec![]).unwrap(), Value::Int(0));
    }

    #[test]
    fn type_change_without_transformer_is_rejected() {
        let mut p = boot(
            r#"
            struct s { v: int }
            global g: s = s { v: 1 };
            fun f(): int { return g.v; }
            "#,
        );
        let patch = compile_patch(
            r#"
            struct s { v: int, w: int }
            fun f(): int { return g.v + g.w; }
            "#,
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["f".into()],
                type_changes: vec!["s".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        let e = apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap_err();
        assert!(e.to_string().contains("transformer"), "{e}");
    }

    #[test]
    fn signature_change_requires_callers_updated() {
        let mut p = boot(
            r#"
            fun helper(x: int): int { return x; }
            fun f(): int { return helper(1); }
            "#,
        );
        // Change helper's signature without updating its caller: rejected.
        let patch = compile_patch(
            "fun helper(x: int, y: int): int { return x + y; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["helper".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        let e = apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap_err();
        assert!(e.to_string().contains("caller"), "{e}");

        // Updating the caller in the same patch: accepted.
        let patch = compile_patch(
            r#"
            fun helper(x: int, y: int): int { return x + y; }
            fun f(): int { return helper(1, 2); }
            "#,
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["helper".into(), "f".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap();
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(3));
    }

    #[test]
    fn malformed_patch_fails_verification() {
        let mut p = boot("fun f(): int { return 1; }");
        // Hand-build a patch whose code lies about its return type.
        let mut b = tal::ModuleBuilder::new("evil", "v2");
        b.function("f", tal::FnSig::new(vec![], tal::Ty::Int), |fb| {
            fb.emit(tal::Instr::PushBool(true));
            fb.emit(tal::Instr::Ret);
        });
        let patch = Patch {
            from_version: "v1".into(),
            to_version: "v2".into(),
            module: b.finish(),
            manifest: Manifest {
                replaces: vec!["f".into()],
                ..Manifest::default()
            },
        };
        let e = apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap_err();
        assert!(matches!(e, UpdateError::Verify(_)), "{e}");
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(1));
    }

    #[test]
    fn updater_applies_at_update_points_only() {
        let mut p = boot(
            r#"
            global log: [int] = new [int];
            fun tick(): int { return 1; }
            fun spin(n: int): int {
                var acc: int = 0;
                var i: int = 0;
                while (i < n) {
                    acc = acc + tick();
                    update;
                    i = i + 1;
                }
                return acc;
            }
            "#,
        );
        let mut up = Updater::new();
        // Without a queued patch, runs complete normally.
        assert_eq!(
            up.run(&mut p, "spin", vec![Value::Int(3)]).unwrap(),
            Value::Int(3)
        );

        // Queue a patch; it applies at the first update point, so later
        // iterations see the new `tick`.
        let patch = compile_patch(
            "fun tick(): int { return 100; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["tick".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        up.enqueue(&mut p, patch);
        // First iteration runs old tick (update point is after the call).
        assert_eq!(
            up.run(&mut p, "spin", vec![Value::Int(3)]).unwrap(),
            Value::Int(1 + 100 + 100)
        );
        assert_eq!(up.log().len(), 1);
        assert_eq!(up.pending_count(), 0);
    }

    #[test]
    fn update_while_active_frame_continues_old_code() {
        // The suspended function itself is replaced; its current frame
        // must finish under the old code (paper semantics), while future
        // calls reach the new version.
        let mut p = boot(
            r#"
            fun work(): int {
                update;
                return 1;
            }
            "#,
        );
        let patch = compile_patch(
            "fun work(): int { update; return 2; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["work".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        let mut up = Updater::new();
        up.enqueue(&mut p, patch);
        // The in-flight activation returns the OLD value...
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(1));
        // ...and the next call the new one.
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(2));
    }

    #[test]
    fn strict_activeness_policy_refuses_active_code() {
        let mut p = boot("fun work(): int { update; return 1; }");
        let patch = compile_patch(
            "fun work(): int { return 2; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["work".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        let mut up = Updater::with_policy(UpdatePolicy {
            verify: true,
            refuse_active: true,
            ..UpdatePolicy::default()
        });
        up.enqueue(&mut p, patch);
        let e = up.run(&mut p, "work", vec![]).unwrap_err();
        assert!(
            matches!(e, RunError::Update(UpdateError::ActiveCode(_))),
            "{e}"
        );
    }

    #[test]
    fn patchgen_end_to_end_method_body() {
        let v1 = "fun f(x: int): int { return x + 1; }\nfun g(): int { return f(0); }";
        let v2 = "fun f(x: int): int { return x + 2; }\nfun g(): int { return f(0); }";
        let gen = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();
        assert_eq!(gen.stats.functions_changed, 1);
        assert_eq!(gen.stats.functions_carried, 0);
        assert_eq!(gen.patch.manifest.replaces, vec!["f".to_string()]);

        let mut p = boot(v1);
        apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
        assert_eq!(p.call("g", vec![]).unwrap(), Value::Int(2));
    }

    #[test]
    fn patchgen_synthesises_struct_growth_transformer() {
        let v1 = r#"
            struct item { name: string, qty: int }
            global inv: [item] = [item { name: "bolt", qty: 7 }];
            fun count(): int {
                var s: int = 0;
                var i: int = 0;
                while (i < len(inv)) { s = s + inv[i].qty; i = i + 1; }
                return s;
            }
        "#;
        let v2 = r#"
            struct item { name: string, qty: int, reserved: int }
            global inv: [item] = [item { name: "bolt", qty: 7, reserved: 0 }];
            fun count(): int {
                var s: int = 0;
                var i: int = 0;
                while (i < len(inv)) { s = s + inv[i].qty - inv[i].reserved; i = i + 1; }
                return s;
            }
        "#;
        let gen = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();
        assert_eq!(gen.stats.types_changed, 1);
        assert_eq!(gen.stats.transformers_auto, 1);
        assert!(gen.source.contains("item__old"), "{}", gen.source);

        let mut p = boot(v1);
        apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
        // Existing state (qty 7) carried; new field defaulted.
        assert_eq!(p.call("count", vec![]).unwrap(), Value::Int(7));
    }

    #[test]
    fn patchgen_carries_type_touchers_and_sig_callers() {
        let v1 = r#"
            struct rec { v: int }
            global g: rec = rec { v: 3 };
            fun read(): int { return g.v; }
            fun helper(x: int): int { return x; }
            fun caller(): int { return helper(1); }
            fun untouched(): int { return 0; }
        "#;
        let v2 = r#"
            struct rec { v: int, tag: string }
            global g: rec = rec { v: 3, tag: "" };
            fun read(): int { return g.v; }
            fun helper(x: int, y: int): int { return x + y; }
            fun caller(): int { return helper(1, 2); }
            fun untouched(): int { return 0; }
        "#;
        let gen = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();
        // `read` is textually unchanged but touches the changed type.
        assert!(gen.patch.manifest.replaces.contains(&"read".to_string()));
        // `caller` changed textually anyway; `untouched` must stay out.
        assert!(!gen
            .patch
            .manifest
            .replaces
            .contains(&"untouched".to_string()));

        let mut p = boot(v1);
        apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
        assert_eq!(p.call("read", vec![]).unwrap(), Value::Int(3));
        assert_eq!(p.call("caller", vec![]).unwrap(), Value::Int(3));
    }

    #[test]
    fn patchgen_requests_manual_transformer_when_not_mechanical() {
        let v1 = "global g: int = 1; fun f(): int { return g; }";
        let v2 = "global g: string = \"x\"; fun f(): int { return len(g); }";
        let e = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap_err();
        assert!(
            matches!(e, PatchGenError::NeedsManualTransformer { .. }),
            "{e}"
        );
    }

    #[test]
    fn patchgen_accepts_manual_transformer() {
        let v1 = "global g: int = 41; fun f(): int { return g; }";
        let v2 = "global g: int = 41; fun f(): int { return g; }";
        // Same program, but force a manual transformer by changing a
        // global's type in a custom scenario instead: here we just verify
        // the manual path plumbs through on a changed-type global.
        let v2b = r#"
            struct boxed { v: int, note: string }
            global h: boxed = boxed { v: 0, note: "" };
            global g: int = 41;
            fun f(): int { return g + h.v; }
        "#;
        let _ = (v1, v2);
        let v1b = r#"
            struct boxed { v: int }
            global h: boxed = boxed { v: 5 };
            global g: int = 41;
            fun f(): int { return g + h.v; }
        "#;
        let manual = ManualTransformer {
            global: "h".into(),
            function: "fix_h".into(),
            source: r#"
                fun fix_h(old: boxed__old): boxed {
                    if (old == null) { return null; }
                    return boxed { v: old.v * 2, note: "migrated" };
                }
            "#
            .into(),
        };
        let gen = PatchGen::new()
            .with_manual(manual)
            .generate(v1b, v2b, "v1", "v2")
            .unwrap();
        let mut p = boot(v1b);
        apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
        // Manual transformer doubled v: 41 + 10.
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(51));
    }

    #[test]
    fn version_manager_rolls_back() {
        let mut p = boot("fun f(): int { return 1; }");
        let mut vm_ = VersionManager::new();
        vm_.record(&p, "v1");
        let patch = compile_patch(
            "fun f(): int { return 2; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["f".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap();
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(2));
        assert!(vm_.rollback_to(&mut p, "v1"));
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(1));
        assert!(!vm_.rollback_to(&mut p, "v9"));
    }

    #[test]
    fn snapshot_rollback_restores_prior_version() {
        let mut p = boot(
            r#"
            global hits: int = 0;
            fun tick(): int { return 1; }
            fun work(): int { hits = hits + tick(); update; return hits; }
            "#,
        );
        let journal = dsu_obs::Journal::new();
        let mut up = Updater::new();
        up.set_journal(journal.clone(), Some(0));
        let patch = compile_patch(
            "fun tick(): int { return 100; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["tick".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        up.enqueue(&mut p, patch);
        // Applies at the update point; old tick already ran -> hits == 1.
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(1));
        // The forward apply recorded its pre-update snapshot in the ring.
        assert_eq!(
            up.snapshot_transitions(),
            vec![("v1".to_string(), "v2".to_string())]
        );
        // New code mutates state past the snapshot...
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(101));

        // ...then the snapshot rollback restores bindings AND state as of
        // the apply instant (best-effort semantics): the restore lands at
        // this run's update point, so the post-point read sees hits == 1.
        up.enqueue_snapshot_rollback(&mut p);
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(1));
        assert!(up.snapshot_transitions().is_empty());
        // Back on v1 code (tick -> 1) and v1 state.
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(2));

        let log = up.log();
        assert_eq!(log.len(), 2);
        let rb = &log[1];
        assert!(rb.rolled_back);
        assert_eq!(rb.from_version, "v2");
        assert_eq!(rb.to_version, "v1");
        // The restore is pure rebinding: the whole pause sits in `bind`.
        assert_eq!(rb.timings.total(), rb.timings.bind + rb.timings.drain);

        // The reverse lifecycle validates and its phase sum equals the
        // report total exactly.
        let events = journal.events_for(2);
        dsu_obs::journal::validate_lifecycle(&events).unwrap();
        let last = events.last().unwrap();
        assert_eq!(last.stage, dsu_obs::Stage::RolledBack);
        let phase_sum: std::time::Duration = events
            .iter()
            .filter_map(|e| e.dur)
            .sum::<std::time::Duration>()
            - last.dur.unwrap();
        assert_eq!(phase_sum, rb.timings.total());
    }

    #[test]
    fn inverse_patch_downgrades_with_reverse_transformer() {
        // Representation change: v2 grows `item` by a field. The inverse
        // patch is generated by diffing the other way round; its reverse
        // transformer mechanically shrinks the records while *preserving*
        // state mutated since the upgrade — the property a snapshot
        // restore cannot offer.
        // The update point lives in `work`, which never touches `item` —
        // compat (rightly) refuses type changes under frames that do.
        let v1 = r#"
            struct item { name: string, qty: int }
            global inv: [item] = [item { name: "bolt", qty: 7 }];
            fun add(n: int): int {
                inv[0] = item { name: inv[0].name, qty: inv[0].qty + n };
                return inv[0].qty;
            }
            fun work(n: int): int { var q: int = add(n); update; return q; }
        "#;
        let v2 = r#"
            struct item { name: string, qty: int, reserved: int }
            global inv: [item] = [item { name: "bolt", qty: 7, reserved: 0 }];
            fun add(n: int): int {
                inv[0] = item { name: inv[0].name, qty: inv[0].qty + n, reserved: 1 };
                return inv[0].qty;
            }
            fun work(n: int): int { var q: int = add(n); update; return q; }
        "#;
        let forward = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();
        let inverse = PatchGen::new().generate(v2, v1, "v2", "v1").unwrap();
        assert_eq!(inverse.stats.transformers_auto, 1, "reverse transformer");

        let mut p = boot(v1);
        let journal = dsu_obs::Journal::new();
        let mut up = Updater::new();
        up.set_journal(journal.clone(), Some(0));
        up.enqueue(&mut p, forward.patch);
        // add runs under v1 (qty 10), then the upgrade lands at the point.
        assert_eq!(
            up.run(&mut p, "work", vec![Value::Int(3)]).unwrap(),
            Value::Int(10)
        );
        // State mutated under v2: qty 15.
        assert_eq!(
            up.run(&mut p, "work", vec![Value::Int(5)]).unwrap(),
            Value::Int(15)
        );

        up.enqueue_rollback(&mut p, inverse.patch);
        // add runs under v2 (qty 21), then the downgrade lands; the
        // reverse transformer shrinks the records, preserving qty.
        assert_eq!(
            up.run(&mut p, "work", vec![Value::Int(6)]).unwrap(),
            Value::Int(21)
        );
        // Back under v1 code with state mutated since the upgrade intact.
        assert_eq!(
            up.run(&mut p, "work", vec![Value::Int(1)]).unwrap(),
            Value::Int(22)
        );

        let log = up.log();
        assert_eq!(log.len(), 2);
        let rb = &log[1];
        assert!(rb.rolled_back);
        assert_eq!(
            (rb.from_version.as_str(), rb.to_version.as_str()),
            ("v2", "v1")
        );
        assert_eq!(rb.globals_transformed, 1);
        // The undone transition's snapshot is retired from the ring: a
        // later snapshot rollback cannot "restore" v2.
        assert!(up.snapshot_transitions().is_empty());

        let events = journal.events_for(2);
        dsu_obs::journal::validate_lifecycle(&events).unwrap();
        let last = events.last().unwrap();
        assert_eq!(last.stage, dsu_obs::Stage::RolledBack);
        let phase_sum: std::time::Duration = events
            .iter()
            .filter_map(|e| e.dur)
            .sum::<std::time::Duration>()
            - last.dur.unwrap();
        assert_eq!(phase_sum, rb.timings.total());
    }

    #[test]
    fn empty_ring_rollback_aborts_and_cancel_withdraws() {
        let mut p = boot("fun work(): int { update; return 1; }");
        let journal = dsu_obs::Journal::new();
        let mut up = Updater::new();
        up.set_journal(journal.clone(), Some(0));
        up.strict = false;

        // Rolling back a never-updated process aborts with NoSnapshot.
        up.enqueue_snapshot_rollback(&mut p);
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(1));
        let failures = up.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].phase, "rollback");
        assert!(matches!(failures[0].error, UpdateError::NoSnapshot));
        dsu_obs::journal::validate_lifecycle(&journal.events_for(1)).unwrap();

        // A cancelled patch never applies, and its withdrawn lifecycle
        // still validates (enqueued -> aborted).
        let remote = up.remote(&p);
        let patch = compile_patch(
            "fun work(): int { update; return 2; }",
            "v1",
            "v2",
            &interface_of(&p),
            Manifest {
                replaces: vec!["work".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        remote.enqueue(patch);
        assert_eq!(remote.cancel_pending("held rollout"), 1);
        assert_eq!(remote.pending_count(), 0);
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(1));
        let events = journal.events_for(2);
        dsu_obs::journal::validate_lifecycle(&events).unwrap();
        assert!(events
            .last()
            .unwrap()
            .detail
            .as_deref()
            .unwrap()
            .contains("cancelled: held rollout"));
    }

    #[test]
    fn suspended_update_sees_transformed_state_after_resume() {
        let mut p = boot(
            r#"
            struct s { v: int }
            global g: s = s { v: 5 };
            fun read(): int { return g.v; }
            fun work(): int {
                var before: int = read();
                update;
                return before * 1000 + read();
            }
            "#,
        );
        let iface = interface_of(&p);
        let patch = compile_patch(
            r#"
            struct s__old { v: int }
            struct s { v: int, w: int }
            fun read(): int { return g.v + g.w; }
            fun __xform_g(old: s__old): s {
                if (old == null) { return null; }
                return s { v: old.v, w: 100 };
            }
            "#,
            "v1",
            "v2",
            &iface,
            Manifest {
                replaces: vec!["read".into()],
                adds: vec!["__xform_g".into()],
                type_changes: vec!["s".into()],
                type_aliases: vec![TypeAlias {
                    alias: "s__old".into(),
                    target: "s".into(),
                }],
                transformers: vec![Transformer {
                    global: "g".into(),
                    function: "__xform_g".into(),
                }],
                ..Manifest::default()
            },
        )
        .unwrap();
        let mut up = Updater::new();
        up.enqueue(&mut p, patch);
        // Before the update point: old read() -> 5. After: new read() ->
        // 5 + 100. `work` itself (active) finished under old code.
        assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(5105));
    }

    #[test]
    fn failed_update_rolls_back_cleanly() {
        let mut p = boot(
            r#"
            struct s { v: int }
            global g: s = null;
            fun f(): int { if (g == null) { return -1; } return g.v; }
            "#,
        );
        // Transformer dereferences null -> traps -> rollback.
        let iface = interface_of(&p);
        let patch = compile_patch(
            r#"
            struct s__old { v: int }
            struct s { v: int, w: int }
            fun f(): int { if (g == null) { return -1; } return g.v + g.w; }
            fun __xform_g(old: s__old): s {
                return s { v: old.v, w: 0 };
            }
            "#,
            "v1",
            "v2",
            &iface,
            Manifest {
                replaces: vec!["f".into()],
                adds: vec!["__xform_g".into()],
                type_changes: vec!["s".into()],
                type_aliases: vec![TypeAlias {
                    alias: "s__old".into(),
                    target: "s".into(),
                }],
                transformers: vec![Transformer {
                    global: "g".into(),
                    function: "__xform_g".into(),
                }],
                ..Manifest::default()
            },
        )
        .unwrap();
        let e = apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap_err();
        assert!(matches!(e, UpdateError::Transform { .. }), "{e}");
        // Old behaviour intact.
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(-1));
    }
}
