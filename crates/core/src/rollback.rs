//! First-class rollback: a bounded ring of prior binding snapshots.
//!
//! Every successful forward update pushes the snapshot taken just before
//! the apply into a [`SnapshotRing`]; a *downgrade* then has two routes
//! back, mirroring the two directions the paper's machinery already has:
//!
//! * **Inverse patch** — diff the versions the other way round
//!   ([`crate::PatchGen`] diffs both directions; reverse state
//!   transformers are synthesised for mechanical type changes) and apply
//!   it like any patch. Current guest state is *preserved* through the
//!   reverse transformers — counters keep counting, caches stay warm.
//! * **Snapshot restore** — pop the ring and restore the recorded
//!   bindings, slots, type names and global values. Instant and
//!   transformer-free, but best-effort about state in the same sense as
//!   [`crate::VersionManager`]: guest mutations made *after* the forward
//!   update are discarded with the restore.
//!
//! Either way the runtime marks the resulting report `rolled_back` and
//! closes its journal lifecycle with `Stage::RolledBack` — a reverse
//! lifecycle whose phase sum still equals `timings.total()` exactly.

use std::collections::VecDeque;

use vm::BindingSnapshot;

/// Default number of prior versions a ring retains.
pub const DEFAULT_SNAPSHOT_DEPTH: usize = 4;

/// One retired version: the bindings recorded immediately before the
/// forward update that superseded it.
#[derive(Debug)]
pub struct SnapshotEntry {
    /// The version the snapshot captures (the update's source).
    pub from_version: String,
    /// The version that superseded it (the update's target).
    pub to_version: String,
    /// The process bindings at `from_version`.
    pub snapshot: BindingSnapshot,
}

/// A bounded LIFO ring of [`SnapshotEntry`]s — newest on top, oldest
/// evicted once the ring exceeds its depth.
#[derive(Debug)]
pub struct SnapshotRing {
    depth: usize,
    entries: VecDeque<SnapshotEntry>,
}

impl Default for SnapshotRing {
    fn default() -> SnapshotRing {
        SnapshotRing::new(DEFAULT_SNAPSHOT_DEPTH)
    }
}

impl SnapshotRing {
    /// Creates a ring retaining at most `depth` prior versions. A depth
    /// of zero disables snapshot retention entirely.
    pub fn new(depth: usize) -> SnapshotRing {
        SnapshotRing {
            depth,
            entries: VecDeque::new(),
        }
    }

    /// The ring's bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Records the pre-update snapshot of a `from -> to` transition,
    /// evicting the oldest entry when the ring is full. No-op at depth 0.
    pub fn push(&mut self, from: &str, to: &str, snapshot: BindingSnapshot) {
        if self.depth == 0 {
            return;
        }
        if self.entries.len() == self.depth {
            self.entries.pop_front();
        }
        self.entries.push_back(SnapshotEntry {
            from_version: from.to_string(),
            to_version: to.to_string(),
            snapshot,
        });
    }

    /// Removes and returns the newest entry.
    pub fn pop(&mut self) -> Option<SnapshotEntry> {
        self.entries.pop_back()
    }

    /// The newest entry's `(from_version, to_version)` transition — what
    /// a snapshot rollback would undo.
    pub fn top_transition(&self) -> Option<(String, String)> {
        self.entries
            .back()
            .map(|e| (e.from_version.clone(), e.to_version.clone()))
    }

    /// Drops the newest entry if it records the transition an inverse
    /// patch just undid (its `to_version` equals the downgrade's source):
    /// the snapshot is superseded, holding it would let a later snapshot
    /// rollback "restore" a version the process already left twice.
    pub fn retire_undone(&mut self, undone_from: &str) {
        if self
            .entries
            .back()
            .is_some_and(|e| e.to_version == undone_from)
        {
            self.entries.pop_back();
        }
    }

    /// Retained transitions, oldest first, as `(from, to)` pairs.
    pub fn transitions(&self) -> Vec<(String, String)> {
        self.entries
            .iter()
            .map(|e| (e.from_version.clone(), e.to_version.clone()))
            .collect()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the ring — depth, order and every snapshot — as a
    /// line-oriented text block (the crash-durable form an orchestrator
    /// persists alongside its journal).
    pub fn save(&self) -> String {
        let mut out = format!("dsu-snapshot-ring 1\ndepth {}\n", self.depth);
        for e in &self.entries {
            out.push_str(&format!("entry\t{}\t{}\n", e.from_version, e.to_version));
            out.push_str(&vm::encode_snapshot(&e.snapshot));
            out.push('\n');
        }
        out
    }

    /// Reconstructs a ring from [`SnapshotRing::save`] output, preserving
    /// the configured depth even when it exceeds the number of retained
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn load(text: &str) -> Result<SnapshotRing, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("dsu-snapshot-ring 1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let depth = lines
            .next()
            .and_then(|l| l.strip_prefix("depth "))
            .ok_or("missing depth line")?
            .parse::<usize>()
            .map_err(|e| format!("bad depth: {e}"))?;
        let mut entries = VecDeque::new();
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split('\t');
            match parts.next() {
                Some("entry") => {}
                other => return Err(format!("expected entry line, got {other:?}")),
            }
            let from = parts.next().ok_or("entry missing from-version")?;
            let to = parts.next().ok_or("entry missing to-version")?;
            let snap_line = lines.next().ok_or("entry missing snapshot line")?;
            let snapshot =
                vm::decode_snapshot(snap_line).map_err(|e| format!("entry {from}->{to}: {e}"))?;
            entries.push_back(SnapshotEntry {
                from_version: from.to_string(),
                to_version: to.to_string(),
                snapshot,
            });
        }
        if entries.len() > depth {
            return Err(format!("{} entries exceed depth {depth}", entries.len()));
        }
        Ok(SnapshotRing { depth, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{LinkMode, Process};

    fn snap() -> BindingSnapshot {
        Process::new(LinkMode::Updateable).snapshot()
    }

    #[test]
    fn ring_is_bounded_and_lifo() {
        let mut ring = SnapshotRing::new(2);
        ring.push("v1", "v2", snap());
        ring.push("v2", "v3", snap());
        ring.push("v3", "v4", snap());
        assert_eq!(ring.len(), 2);
        assert_eq!(
            ring.transitions(),
            vec![
                ("v2".to_string(), "v3".to_string()),
                ("v3".to_string(), "v4".to_string()),
            ]
        );
        assert_eq!(
            ring.top_transition(),
            Some(("v3".to_string(), "v4".to_string()))
        );
        let top = ring.pop().unwrap();
        assert_eq!(top.from_version, "v3");
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn depth_zero_retains_nothing() {
        let mut ring = SnapshotRing::new(0);
        ring.push("v1", "v2", snap());
        assert!(ring.is_empty());
        assert!(ring.pop().is_none());
    }

    #[test]
    fn save_load_round_trip_preserves_depth_and_order() {
        // A non-trivial snapshot: bindings plus a live global value.
        let mut b = tal::ModuleBuilder::new("m", "v1");
        b.global(
            "hits",
            tal::Ty::Int,
            vec![tal::Instr::PushInt(33), tal::Instr::Ret],
        );
        b.function("serve", tal::FnSig::new(vec![], tal::Ty::Int), |f| {
            f.emit(tal::Instr::PushInt(1));
            f.emit(tal::Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&b.finish()).unwrap();

        let mut ring = SnapshotRing::new(4);
        ring.push("v1", "v2", p.snapshot());
        ring.push("v2", "v3", p.snapshot());

        let text = ring.save();
        let back = SnapshotRing::load(&text).unwrap();
        // Depth survives even though only 2 of 4 slots are filled.
        assert_eq!(back.depth(), 4);
        assert_eq!(back.transitions(), ring.transitions());
        assert_eq!(back.len(), 2);
        // Entry payloads survive byte-for-byte (codec is deterministic).
        for (a, b) in back.entries.iter().zip(&ring.entries) {
            assert_eq!(
                vm::encode_snapshot(&a.snapshot),
                vm::encode_snapshot(&b.snapshot)
            );
        }
        // And the save of the load reproduces the text exactly.
        assert_eq!(back.save(), text);

        // Malformed input errors instead of panicking.
        assert!(SnapshotRing::load("").is_err());
        assert!(SnapshotRing::load("dsu-snapshot-ring 1\n").is_err());
        assert!(SnapshotRing::load("dsu-snapshot-ring 1\ndepth 1\nentry\tv1\tv2\n{bad\n").is_err());
        assert!(
            SnapshotRing::load("dsu-snapshot-ring 9\ndepth 1\n").is_err(),
            "unknown version rejected"
        );
    }

    #[test]
    fn retire_undone_pops_only_the_matching_transition() {
        let mut ring = SnapshotRing::new(4);
        ring.push("v1", "v2", snap());
        ring.push("v2", "v3", snap());
        // An inverse patch v3 -> v2 retires the v2 -> v3 snapshot...
        ring.retire_undone("v3");
        assert_eq!(ring.len(), 1);
        // ...but a mismatched downgrade leaves the ring alone.
        ring.retire_undone("v9");
        assert_eq!(ring.len(), 1);
    }
}
