//! Update-safety (interface-compatibility) analysis.
//!
//! A verified patch is *type-safe as code*; this module checks that
//! applying it to this particular process state cannot break type safety
//! either (paper §3, "well-formed updates"):
//!
//! * a replaced function whose **signature changed** requires every live
//!   caller to be replaced/removed in the same patch, and must not be
//!   referenced by any *active* stack frame (old frames keep running old
//!   code and would call through the rebound slot with the old calling
//!   convention);
//! * a **removed** function must leave no live or active references;
//! * a **changed type** requires every live function touching it to be
//!   replaced/removed, every global mentioning it to have a state
//!   transformer, and no active frame may touch it (active old code could
//!   otherwise create old-layout records that new code then misreads);
//! * **transformers** must have signature `(old-repr) -> new-repr`, where
//!   the old representation is the global's type with changed names
//!   rewritten to their patch-local aliases;
//! * **aliases** must be structurally identical to the old registration
//!   (after rewriting nested changed names).

use std::collections::{BTreeSet, HashMap};

use tal::{SymbolKind, Ty, TypeDef};
use vm::Process;

use crate::patch::{Manifest, Patch};
use crate::report::UpdateError;

/// Checks `patch` against the current state of `proc`.
///
/// # Errors
///
/// Returns [`UpdateError::Compat`] (or [`UpdateError::ActiveCode`])
/// describing the first violated rule.
pub fn check(proc: &Process, patch: &Patch) -> Result<(), UpdateError> {
    let m = &patch.manifest;
    let err = |msg: String| Err(UpdateError::Compat(msg));

    let updated: BTreeSet<&str> = m
        .replaces
        .iter()
        .chain(m.removes.iter())
        .map(String::as_str)
        .collect();
    let alias_map: HashMap<&str, &str> = m
        .type_aliases
        .iter()
        .map(|a| (a.target.as_str(), a.alias.as_str()))
        .collect();
    let active = proc.suspended_frames();

    // ---- manifest / module consistency ---------------------------------
    for name in m.replaces.iter().chain(m.adds.iter()) {
        if patch.module.function(name).is_none() {
            return err(format!(
                "manifest lists `{name}` but the module does not define it"
            ));
        }
    }
    for name in &m.replaces {
        if proc.function_id(name).is_none() {
            return err(format!("`{name}` is marked replaced but is not bound"));
        }
    }
    for name in &m.adds {
        if proc.function_id(name).is_some() {
            return err(format!("`{name}` is marked added but already exists"));
        }
    }
    for name in &m.removes {
        if proc.function_id(name).is_none() {
            return err(format!("`{name}` is marked removed but is not bound"));
        }
    }
    for g in &m.new_globals {
        if patch.module.global(g).is_none() {
            return err(format!("new global `{g}` is not defined by the module"));
        }
        if proc.global_type(g).is_some() {
            return err(format!("global `{g}` already exists"));
        }
    }
    // Globals defined by the module must all be declared new.
    for g in &patch.module.globals {
        if !m.new_globals.contains(&g.name) {
            return err(format!(
                "module defines global `{}` not listed in new_globals",
                g.name
            ));
        }
    }
    // Functions defined by the module must all be accounted for.
    for f in &patch.module.functions {
        if !m.replaces.contains(&f.name) && !m.adds.contains(&f.name) {
            return err(format!(
                "module defines function `{}` not listed as replaced or added",
                f.name
            ));
        }
    }

    // ---- signature changes ----------------------------------------------
    for name in &m.replaces {
        let old_sig = proc.function_sig(name).expect("checked bound");
        let new_sig = &patch.module.function(name).expect("checked defined").sig;
        if old_sig != new_sig {
            // All live callers must be updated too.
            for (caller, f) in proc.bound_functions() {
                if f.sym_refs.iter().any(|r| r == name) && !updated.contains(caller) {
                    return err(format!(
                        "`{name}` changes signature but live caller `{caller}` is not updated"
                    ));
                }
            }
            // No active frame may reference it (old code would use the old
            // calling convention through the rebound slot).
            let offenders: Vec<String> = active
                .iter()
                .filter(|f| f.name == *name || f.sym_refs.iter().any(|r| r == name))
                .map(|f| f.name.clone())
                .collect();
            if !offenders.is_empty() {
                return Err(UpdateError::ActiveCode(offenders));
            }
        }
    }

    // ---- removals ---------------------------------------------------------
    for name in &m.removes {
        for (live, f) in proc.bound_functions() {
            if !updated.contains(live) && f.sym_refs.iter().any(|r| r == name) {
                return err(format!(
                    "`{name}` is removed but live function `{live}` still references it"
                ));
            }
        }
        if patch
            .module
            .symbols
            .iter()
            .any(|s| s.name == *name && matches!(s.kind, SymbolKind::Fn(_)))
        {
            return err(format!("patch code references removed function `{name}`"));
        }
        let offenders: Vec<String> = active
            .iter()
            .filter(|f| f.sym_refs.iter().any(|r| r == name))
            .map(|f| f.name.clone())
            .collect();
        if !offenders.is_empty() {
            return Err(UpdateError::ActiveCode(offenders));
        }
    }

    // ---- type changes ------------------------------------------------------
    for tname in &m.type_changes {
        if proc.struct_id(tname).is_none() {
            return err(format!("type `{tname}` is marked changed but is not bound"));
        }
        if patch.module.type_def(tname).is_none() {
            return err(format!(
                "changed type `{tname}` is not defined by the module"
            ));
        }
        for (live, f) in proc.bound_functions() {
            if !updated.contains(live) && f.type_names.iter().any(|t| t == tname) {
                return err(format!(
                    "type `{tname}` changes but live function `{live}` still uses it"
                ));
            }
        }
        let offenders: Vec<String> = active
            .iter()
            .filter(|f| f.type_names.iter().any(|t| t == tname))
            .map(|f| f.name.clone())
            .collect();
        if !offenders.is_empty() {
            return Err(UpdateError::ActiveCode(offenders));
        }
        for cell in proc.globals() {
            let mut mentioned = Vec::new();
            cell.ty.collect_named(&mut mentioned);
            if mentioned.iter().any(|t| t == tname)
                && !m.transformers.iter().any(|x| x.global == cell.name)
            {
                return err(format!(
                    "global `{}` mentions changed type `{tname}` but has no transformer",
                    cell.name
                ));
            }
        }
    }

    // ---- aliases -------------------------------------------------------------
    for alias in &m.type_aliases {
        let Some(sid) = proc.struct_id(&alias.target) else {
            return err(format!(
                "alias target `{}` is not a bound type",
                alias.target
            ));
        };
        let Some(alias_def) = patch.module.type_def(&alias.alias) else {
            return err(format!(
                "alias `{}` is not defined by the module",
                alias.alias
            ));
        };
        let old_def = proc.struct_def(sid);
        let expected = rename_typedef(old_def, &alias.alias, &alias_map);
        if alias_def.fields != expected.fields {
            return err(format!(
                "alias `{}` does not match the old structure of `{}`",
                alias.alias, alias.target
            ));
        }
    }

    // ---- transformers -----------------------------------------------------------
    for x in &m.transformers {
        let Some(f) = patch.module.function(&x.function) else {
            return err(format!(
                "transformer `{}` is not defined by the module",
                x.function
            ));
        };
        let Some(gty) = proc.global_type(&x.global) else {
            return err(format!("transformer targets unknown global `{}`", x.global));
        };
        let old_repr = rename_ty(gty, &alias_map);
        if f.sig.params.len() != 1 || f.sig.params[0] != old_repr {
            return err(format!(
                "transformer `{}` must take ({old_repr}), has {}",
                x.function, f.sig
            ));
        }
        if &f.sig.ret != gty {
            return err(format!(
                "transformer `{}` must return {gty}, returns {}",
                x.function, f.sig.ret
            ));
        }
    }

    check_manifest_duplicates(m)?;
    Ok(())
}

fn check_manifest_duplicates(m: &Manifest) -> Result<(), UpdateError> {
    let mut seen = BTreeSet::new();
    for name in m
        .replaces
        .iter()
        .chain(m.adds.iter())
        .chain(m.removes.iter())
    {
        if !seen.insert(name.as_str()) {
            return Err(UpdateError::Compat(format!(
                "`{name}` appears more than once in the manifest"
            )));
        }
    }
    Ok(())
}

/// Rewrites every changed type name in `ty` to its patch-local alias —
/// producing the type *as the patch must spell it* to denote the old
/// representation.
pub fn rename_ty(ty: &Ty, alias_map: &HashMap<&str, &str>) -> Ty {
    match ty {
        Ty::Named(n) => match alias_map.get(n.as_str()) {
            Some(alias) => Ty::Named((*alias).to_string()),
            None => ty.clone(),
        },
        Ty::Array(e) => Ty::array(rename_ty(e, alias_map)),
        Ty::Fn(sig) => Ty::func(
            sig.params.iter().map(|p| rename_ty(p, alias_map)).collect(),
            rename_ty(&sig.ret, alias_map),
        ),
        _ => ty.clone(),
    }
}

/// Rewrites a type definition for alias comparison: the definition is
/// renamed to `new_name` and every field type is alias-rewritten (so a
/// self-referential `entry { next: entry }` aliases to
/// `entry__old { next: entry__old }`).
pub fn rename_typedef(def: &TypeDef, new_name: &str, alias_map: &HashMap<&str, &str>) -> TypeDef {
    TypeDef::new(
        new_name.to_string(),
        def.fields
            .iter()
            .map(|f| tal::Field::new(f.name.clone(), rename_ty(&f.ty, alias_map)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_walks_nested_types() {
        let mut map = HashMap::new();
        map.insert("entry", "entry__old");
        let ty = Ty::array(Ty::func(vec![Ty::named("entry")], Ty::named("other")));
        let out = rename_ty(&ty, &map);
        assert_eq!(
            out,
            Ty::array(Ty::func(vec![Ty::named("entry__old")], Ty::named("other")))
        );
    }

    #[test]
    fn rename_typedef_handles_self_reference() {
        let mut map = HashMap::new();
        map.insert("entry", "entry__old");
        let def = TypeDef::new(
            "entry",
            vec![
                tal::Field::new("k", Ty::Str),
                tal::Field::new("next", Ty::named("entry")),
            ],
        );
        let out = rename_typedef(&def, "entry__old", &map);
        assert_eq!(out.name, "entry__old");
        assert_eq!(out.fields[1].ty, Ty::named("entry__old"));
    }
}
