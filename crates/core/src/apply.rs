//! Applying a dynamic patch to a running process.
//!
//! The pipeline mirrors the paper's dynamic linker:
//!
//! 1. **verify** — type-check the patch's object code against the running
//!    program's types (nothing unverified is ever linked);
//! 2. **compat** — the update-safety analysis of [`crate::compat`];
//! 3. **link** — register new type versions, add new globals, resolve the
//!    patch code against current bindings plus patch-internal targets;
//! 4. **bind** — atomically flip name/slot/type bindings and initialise
//!    new globals (the guest is suspended at an update point throughout,
//!    so guest-visibly this is one instant);
//! 5. **transform** — run state transformers over the old global values
//!    (reading old-layout records through their aliases) and commit the
//!    new values.
//!
//! Any failure rolls the process back to its pre-update bindings via a
//! snapshot; a rejected update is a no-op.

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use vm::{LinkOverrides, Process, ProcessTypes, Value};

use crate::compat;
use crate::patch::Patch;
use crate::report::{PhaseTimings, UpdateError, UpdateReport};

/// A per-thread apply-phase observer; see [`set_phase_probe`].
type PhaseProbe = Box<dyn FnMut(&'static str)>;

thread_local! {
    /// Per-thread observer fired at the start of each apply phase; see
    /// [`set_phase_probe`].
    static PHASE_PROBE: RefCell<Option<PhaseProbe>> = const { RefCell::new(None) };
}

/// Installs (or clears, with `None`) a thread-local probe invoked with the
/// phase name at the *start* of each apply-pipeline phase (`verify`,
/// `compat`, `link`, `bind`, `init`, `transform`) on this thread.
///
/// The probe exists for fault injection and fine-grained instrumentation:
/// a harness can stall or panic at an exact point inside the update pause
/// (e.g. mid-transform) without the pipeline carrying test-only hooks.
/// Probes are per-thread, so a fleet can arm one worker while its siblings
/// apply patches unperturbed.
pub fn set_phase_probe(probe: Option<PhaseProbe>) {
    PHASE_PROBE.with(|p| *p.borrow_mut() = probe);
}

fn probe_phase(name: &'static str) {
    PHASE_PROBE.with(|p| {
        if let Some(f) = p.borrow_mut().as_mut() {
            f(name);
        }
    });
}

/// When state transformers run relative to the update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransformTiming {
    /// Run every transformer inside the update pause, staged and committed
    /// atomically (the paper's design).
    #[default]
    Eager,
    /// Arm transformers on their globals and run each on the global's
    /// *first guest read* (Javelus-style lazy migration). Shrinks the
    /// pause to O(1) per global at the price of a per-read pending check
    /// and first-access latency — the trade-off the ablation quantifies.
    Lazy,
}

/// Tunable update behaviour (the ablation axes of the evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdatePolicy {
    /// Re-verify patch object code before linking (paper default: on).
    /// The off setting exists only to measure verification's share of the
    /// update pause — disabling it trades away the safety guarantee.
    pub verify: bool,
    /// Refuse the update when *any* function listed in the manifest is on
    /// the guest stack (Ginseng-style strict activeness). The paper's
    /// semantics (`false`) lets old frames finish under old code; the
    /// type-change and signature-change rules in [`crate::compat`] still
    /// refuse the genuinely unsafe cases.
    pub refuse_active: bool,
    /// Eager (paper) vs lazy state transformation.
    pub transform: TransformTiming,
}

impl Default for UpdatePolicy {
    fn default() -> UpdatePolicy {
        UpdatePolicy {
            verify: true,
            refuse_active: false,
            transform: TransformTiming::Eager,
        }
    }
}

/// Real per-phase intervals, filled by [`apply_patch_spanned`] when the
/// caller wants trace spans: each entry is `(phase name, start instant,
/// duration)` where the duration is byte-identical to the value stored
/// into [`PhaseTimings`] — so spans, timings and journal events all
/// carry the same numbers.
#[derive(Debug, Default, Clone)]
pub struct PhaseSpanLog {
    /// `(phase, started, dur)` in pipeline order.
    pub phases: Vec<(&'static str, Instant, Duration)>,
}

impl PhaseSpanLog {
    /// Records one phase interval. Public so drivers can synthesize
    /// phases that never pass through `apply_patch` (e.g. a snapshot
    /// restore's `bind`).
    pub fn push(&mut self, name: &'static str, started: Instant, dur: Duration) {
        self.phases.push((name, started, dur));
    }
}

/// Applies `patch` to `proc` under `policy`.
///
/// The caller is responsible for quiescence: either the process is
/// suspended at an update point, or no guest code is running (see
/// [`crate::runtime::Updater`] for the driver that manages this).
///
/// # Errors
///
/// Returns an [`UpdateError`]; the process is left exactly as it was.
pub fn apply_patch(
    proc: &mut Process,
    patch: &Patch,
    policy: UpdatePolicy,
) -> Result<UpdateReport, UpdateError> {
    apply_patch_spanned(proc, patch, policy, None)
}

/// [`apply_patch`], additionally recording one real `(start, dur)`
/// interval per pipeline phase into `spans` — the update-side feed of
/// the tracing layer.
///
/// # Errors
///
/// Returns an [`UpdateError`]; the process is left exactly as it was.
pub fn apply_patch_spanned(
    proc: &mut Process,
    patch: &Patch,
    policy: UpdatePolicy,
    mut spans: Option<&mut PhaseSpanLog>,
) -> Result<UpdateReport, UpdateError> {
    let mut timings = PhaseTimings::default();
    let heap_before = proc.heap_size();

    // Strict activeness policy (ablation): refuse if any updated function
    // is live on the stack.
    if policy.refuse_active {
        let active = proc.suspended_stack();
        let offenders: Vec<String> = active
            .into_iter()
            .filter(|f| patch.manifest.replaces.contains(f) || patch.manifest.removes.contains(f))
            .collect();
        if !offenders.is_empty() {
            return Err(UpdateError::ActiveCode(offenders));
        }
    }

    // Phase 1: verify.
    probe_phase("verify");
    let t = Instant::now();
    if policy.verify {
        tal::verify_module(&patch.module, &ProcessTypes(proc))?;
    }
    timings.verify = t.elapsed();
    if let Some(s) = spans.as_deref_mut() {
        s.push("verify", t, timings.verify);
    }

    // Phase 2: compatibility.
    probe_phase("compat");
    let t = Instant::now();
    compat::check(proc, patch)?;
    timings.compat = t.elapsed();
    if let Some(s) = spans.as_deref_mut() {
        s.push("compat", t, timings.compat);
    }

    // Everything past this point mutates the process; roll back on error.
    let snapshot = proc.snapshot();
    match apply_linked(proc, patch, policy, &mut timings, spans) {
        Ok(report_core) => {
            let m = &patch.manifest;
            Ok(UpdateReport {
                from_version: patch.from_version.clone(),
                to_version: patch.to_version.clone(),
                timings,
                functions_replaced: m.replaces.len(),
                functions_added: m.adds.len(),
                functions_removed: m.removes.len(),
                types_changed: m.type_changes.len(),
                globals_transformed: report_core,
                patch_bytes: patch.size_bytes(),
                heap_before,
                heap_after: proc.heap_size(),
                // The runtime flips this for inverse patches; apply_patch
                // itself is direction-agnostic (a downgrade is an apply).
                rolled_back: false,
            })
        }
        Err(e) => {
            proc.restore(snapshot);
            Err(e)
        }
    }
}

/// Phases 3-5. Returns the number of globals transformed (or armed for
/// lazy transformation).
fn apply_linked(
    proc: &mut Process,
    patch: &Patch,
    policy: UpdatePolicy,
    timings: &mut PhaseTimings,
    mut spans: Option<&mut PhaseSpanLog>,
) -> Result<usize, UpdateError> {
    let m = &patch.manifest;

    // Phase 3: link.
    probe_phase("link");
    let t = Instant::now();
    let mut ov = LinkOverrides::default();
    // Aliases resolve to the old registrations.
    for alias in &m.type_aliases {
        let sid = proc.struct_id(&alias.target).expect("compat checked");
        ov.types.insert(alias.alias.clone(), sid);
    }
    // Changed and new types get fresh registrations (names flip at bind).
    let alias_names: Vec<&str> = m.type_aliases.iter().map(|a| a.alias.as_str()).collect();
    let mut new_type_binds: Vec<(String, vm::StructId)> = Vec::new();
    for def in &patch.module.types {
        if alias_names.contains(&def.name.as_str()) {
            continue;
        }
        let sid = proc.register_struct(def.clone());
        ov.types.insert(def.name.clone(), sid);
        new_type_binds.push((def.name.clone(), sid));
    }
    // New globals exist (with defaults) before code resolution.
    for gname in &m.new_globals {
        let gdef = patch.module.global(gname).expect("compat checked");
        proc.add_global(gname.clone(), gdef.ty.clone(), Value::default_for(&gdef.ty))?;
    }
    let planned = proc.link_functions(&patch.module, &ov)?;
    let planned_ids: HashMap<&str, vm::FuncId> =
        planned.iter().map(|(n, id)| (n.as_str(), *id)).collect();
    timings.link = t.elapsed();
    if let Some(s) = spans.as_deref_mut() {
        s.push("link", t, timings.link);
    }

    // Phase 4: bind — the atomic flip.
    probe_phase("bind");
    let t = Instant::now();
    for (name, id) in &planned {
        proc.bind_function(name, *id);
    }
    for name in &m.removes {
        proc.unbind_function(name);
    }
    for (name, sid) in &new_type_binds {
        proc.bind_type_name(name.clone(), *sid);
    }
    timings.bind = t.elapsed();
    if let Some(s) = spans.as_deref_mut() {
        s.push("bind", t, timings.bind);
    }

    // Phase 4b: new-global initialisers run in the new code world. They
    // get their own timing bucket so Table 2's pause breakdown does not
    // charge initialisation to state transformation.
    probe_phase("init");
    let t = Instant::now();
    for gname in &m.new_globals {
        let gdef = patch.module.global(gname).expect("compat checked");
        let v =
            proc.eval_init(&patch.module, gdef, &ov)
                .map_err(|trap| UpdateError::Transform {
                    function: format!("<init {gname}>"),
                    trap,
                })?;
        proc.set_global(gname, v);
    }
    // An empty phase reports zero rather than bare timer overhead.
    timings.init = if m.new_globals.is_empty() {
        Duration::ZERO
    } else {
        t.elapsed()
    };
    if let Some(s) = spans.as_deref_mut() {
        s.push("init", t, timings.init);
    }

    // Phase 5: transform.
    probe_phase("transform");
    let t = Instant::now();
    let transformed = match policy.transform {
        TransformTiming::Eager => {
            // Stage all new values against the *old* state, then commit,
            // so transformers never observe each other's output.
            let mut staged: Vec<(&str, Value)> = Vec::with_capacity(m.transformers.len());
            for x in &m.transformers {
                let old = proc.global_value(&x.global).expect("compat checked");
                let fid = planned_ids[x.function.as_str()];
                let new = proc
                    .call_fid(fid, vec![old])
                    .map_err(|trap| UpdateError::Transform {
                        function: x.function.clone(),
                        trap,
                    })?;
                staged.push((&x.global, new));
            }
            let n = staged.len();
            for (global, value) in staged {
                proc.set_global(global, value);
            }
            n
        }
        TransformTiming::Lazy => {
            // Arm the transformers; each runs on its global's first read.
            for x in &m.transformers {
                let fid = planned_ids[x.function.as_str()];
                proc.set_pending_transform(&x.global, fid);
            }
            m.transformers.len()
        }
    };
    // Transformers are one-shot: unbind their names so they neither
    // pollute the interface nor pin old type versions against future
    // updates (lazy mode keeps calling them through their FuncId).
    for x in &m.transformers {
        proc.unbind_function(&x.function);
    }
    timings.transform = if m.transformers.is_empty() {
        Duration::ZERO
    } else {
        t.elapsed()
    };
    if let Some(s) = spans {
        s.push("transform", t, timings.transform);
    }

    proc.request_update(false);
    Ok(transformed)
}
