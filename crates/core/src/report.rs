//! Update instrumentation: per-phase timings and errors.

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Wall-clock cost breakdown of one applied update — the quantity the
/// paper's patch-application experiment (Table 2) reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Quiescence drain: time spent waiting for in-flight host work
    /// (e.g. parked event-loop reads) to complete before the patch
    /// touched the process. Zero when the host had nothing in flight
    /// (and always, for hosts without a drain hook installed).
    pub drain: Duration,
    /// Bytecode re-verification of the patch module.
    pub verify: Duration,
    /// Interface-compatibility / update-safety analysis.
    pub compat: Duration,
    /// Dynamic linking (type registration, code resolution, new globals).
    pub link: Duration,
    /// Atomic rebinding of names, slots and types.
    pub bind: Duration,
    /// New-global initialiser execution (runs in the new code world,
    /// after bind and before state transformation).
    pub init: Duration,
    /// State-transformer execution.
    pub transform: Duration,
}

impl PhaseTimings {
    /// Total update pause.
    pub fn total(&self) -> Duration {
        self.drain + self.verify + self.compat + self.link + self.bind + self.init + self.transform
    }
}

/// The record of one successful dynamic update.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateReport {
    /// Version transition, e.g. `"v2" -> "v3"`.
    pub from_version: String,
    /// Target version.
    pub to_version: String,
    /// Per-phase wall-clock costs.
    pub timings: PhaseTimings,
    /// Functions rebound by the update.
    pub functions_replaced: usize,
    /// Functions added.
    pub functions_added: usize,
    /// Functions removed.
    pub functions_removed: usize,
    /// Types whose name was rebound to a new version.
    pub types_changed: usize,
    /// Globals whose value was transformed.
    pub globals_transformed: usize,
    /// Patch size in (virtual) bytes.
    pub patch_bytes: usize,
    /// Guest heap footprint (bytes) before the update.
    pub heap_before: usize,
    /// Guest heap footprint (bytes) after the update.
    pub heap_after: usize,
    /// Whether this apply was a *rollback* — an inverse patch (reverse
    /// state transformers) or a snapshot restore taking the process back
    /// to `to_version`, which it ran before. Rollback lifecycles close
    /// with `rolled-back` in the journal instead of `committed`.
    pub rolled_back: bool,
}

impl fmt::Display for UpdateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} -> {}: {:?} total (drain {:?}, verify {:?}, compat {:?}, link {:?}, bind {:?}, init {:?}, xform {:?}); \
             {} replaced, {} added, {} removed, {} types, {} transformed",
            if self.rolled_back { "rollback " } else { "" },
            self.from_version,
            self.to_version,
            self.timings.total(),
            self.timings.drain,
            self.timings.verify,
            self.timings.compat,
            self.timings.link,
            self.timings.bind,
            self.timings.init,
            self.timings.transform,
            self.functions_replaced,
            self.functions_added,
            self.functions_removed,
            self.types_changed,
            self.globals_transformed,
        )
    }
}

/// The aggregated record of one patch rolled out across a fleet of
/// workers: per-worker reports plus fleet-level pause statistics (the
/// quantities a multi-machine deployment of the paper's system would
/// monitor).
#[derive(Debug, Clone, Default)]
pub struct FleetUpdateReport {
    /// Fleet size when the rollout ran.
    pub workers: usize,
    /// Per-worker apply results: `(worker index, report)` for each worker
    /// whose apply succeeded.
    pub applied: Vec<(usize, UpdateReport)>,
    /// Per-worker failures: `(worker index, failure)` for each worker
    /// whose apply was rejected (that worker keeps serving its old
    /// version).
    pub failed: Vec<(usize, FailedUpdate)>,
    /// Per-worker observed pause (coordination wait + apply), one entry
    /// per worker that paused, in worker order.
    pub pauses: Vec<Duration>,
}

impl FleetUpdateReport {
    /// Whether every worker applied the patch.
    pub fn complete(&self) -> bool {
        self.failed.is_empty() && self.applied.len() == self.workers
    }

    /// The longest per-worker pause — for a simultaneous rollout, the
    /// fleet-wide service gap is governed by this.
    pub fn max_pause(&self) -> Duration {
        self.pauses.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Mean per-worker pause.
    pub fn mean_pause(&self) -> Duration {
        if self.pauses.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.pauses.iter().sum();
        total / self.pauses.len() as u32
    }

    /// Per-phase breakdown summed over all successful applies.
    pub fn phase_totals(&self) -> PhaseTimings {
        let mut acc = PhaseTimings::default();
        for (_, r) in &self.applied {
            acc.drain += r.timings.drain;
            acc.verify += r.timings.verify;
            acc.compat += r.timings.compat;
            acc.link += r.timings.link;
            acc.bind += r.timings.bind;
            acc.init += r.timings.init;
            acc.transform += r.timings.transform;
        }
        acc
    }
}

impl fmt::Display for FleetUpdateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let totals = self.phase_totals();
        write!(
            f,
            "fleet rollout: {}/{} applied, {} failed; pause max {:?} mean {:?}; \
             phases (summed): drain {:?}, verify {:?}, compat {:?}, link {:?}, bind {:?}, init {:?}, xform {:?}",
            self.applied.len(),
            self.workers,
            self.failed.len(),
            self.max_pause(),
            self.mean_pause(),
            totals.drain,
            totals.verify,
            totals.compat,
            totals.link,
            totals.bind,
            totals.init,
            totals.transform,
        )
    }
}

/// Why an update was rejected or aborted. Rejected updates leave the
/// process exactly as it was (verified by snapshot/rollback).
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    /// The patch module failed bytecode verification.
    Verify(tal::VerifyError),
    /// The patch violates update-safety rules (see [`crate::compat`]).
    Compat(String),
    /// Dynamic linking failed.
    Link(vm::LinkError),
    /// A state transformer (or new-global initialiser) trapped.
    Transform {
        /// The transformer or initialiser that failed.
        function: String,
        /// The trap it raised.
        trap: vm::Trap,
    },
    /// The policy refused to update code that is live on the guest stack.
    ActiveCode(Vec<String>),
    /// A snapshot rollback was requested but the snapshot ring holds no
    /// entry to restore (never updated, or the ring's bound evicted it).
    NoSnapshot,
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Verify(e) => write!(f, "patch verification failed: {e}"),
            UpdateError::Compat(msg) => write!(f, "update-safety violation: {msg}"),
            UpdateError::Link(e) => write!(f, "patch linking failed: {e}"),
            UpdateError::Transform { function, trap } => {
                write!(f, "state transformer `{function}` trapped: {trap}")
            }
            UpdateError::ActiveCode(fns) => {
                write!(f, "refused: updated code is active on the stack: {fns:?}")
            }
            UpdateError::NoSnapshot => {
                write!(f, "rollback refused: no snapshot available to restore")
            }
        }
    }
}

impl Error for UpdateError {}

impl UpdateError {
    /// The lifecycle phase the update failed in (stable lowercase name,
    /// matching the journal's stage names).
    pub fn phase(&self) -> &'static str {
        match self {
            UpdateError::Verify(_) => "verify",
            UpdateError::Compat(_) => "compat",
            UpdateError::Link(_) => "link",
            // New-global initialisers fail under a synthetic
            // `<init name>` function tag (see `crate::apply`).
            UpdateError::Transform { function, .. } if function.starts_with("<init") => "init",
            UpdateError::Transform { .. } => "transform",
            UpdateError::ActiveCode(_) => "policy",
            UpdateError::NoSnapshot => "rollback",
        }
    }
}

/// One rejected or rolled-back update in the failure log, carrying
/// enough context — the version transition and the failing phase — to
/// diagnose an aborted patch without replaying the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedUpdate {
    /// Source version of the attempted transition.
    pub from_version: String,
    /// Target version of the attempted transition.
    pub to_version: String,
    /// Lifecycle phase the apply failed in (see [`UpdateError::phase`]).
    pub phase: &'static str,
    /// The underlying rejection.
    pub error: UpdateError,
}

impl FailedUpdate {
    /// Wraps `error` with the transition it interrupted.
    pub fn new(from_version: &str, to_version: &str, error: UpdateError) -> FailedUpdate {
        FailedUpdate {
            from_version: from_version.to_string(),
            to_version: to_version.to_string(),
            phase: error.phase(),
            error,
        }
    }
}

impl fmt::Display for FailedUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} failed in {}: {}",
            self.from_version, self.to_version, self.phase, self.error
        )
    }
}

impl Error for FailedUpdate {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

impl From<tal::VerifyError> for UpdateError {
    fn from(e: tal::VerifyError) -> UpdateError {
        UpdateError::Verify(e)
    }
}

impl From<vm::LinkError> for UpdateError {
    fn from(e: vm::LinkError) -> UpdateError {
        UpdateError::Link(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_phases() {
        let t = PhaseTimings {
            drain: Duration::from_millis(7),
            verify: Duration::from_millis(1),
            compat: Duration::from_millis(2),
            link: Duration::from_millis(3),
            bind: Duration::from_millis(4),
            init: Duration::from_millis(6),
            transform: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(28));
    }

    #[test]
    fn error_displays() {
        let e = UpdateError::Compat("type `t` changed but `f` not replaced".into());
        assert!(e.to_string().contains("update-safety"));
        let e = UpdateError::ActiveCode(vec!["handler".into()]);
        assert!(e.to_string().contains("handler"));
    }
}
