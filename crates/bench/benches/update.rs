//! Criterion: dynamic-update machinery costs.
//!
//! * `apply/*` — end-to-end patch application per FlashEd patch (fresh
//!   warmed server per iteration).
//! * `verify_only` — bytecode re-verification of the largest patch.
//! * `patchgen/*` — source-diff patch generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dsu_core::{apply_patch, PatchGen, UpdatePolicy};
use flashed::{patch_stream, versions, Server, SimFs, Workload};
use vm::{LinkMode, ProcessTypes};

fn warmed(version_idx: usize) -> Server {
    let all = versions::all();
    let (name, src) = &all[version_idx];
    let fs = SimFs::generate_fixed(16, 512, 5);
    let mut wl = Workload::new(fs.paths(), 1.0, 100);
    let mut server = Server::start(LinkMode::Updateable, src, name, fs).expect("boot");
    server.push_requests(wl.batch(100));
    server.serve().expect("warm");
    server
}

fn bench_apply(c: &mut Criterion) {
    let stream = patch_stream().expect("stream");
    let mut group = c.benchmark_group("apply");
    group.sample_size(30);
    for (i, gen) in stream.iter().enumerate() {
        let label = format!("{}-to-{}", gen.patch.from_version, gen.patch.to_version);
        group.bench_function(&label, |b| {
            b.iter_batched(
                || warmed(i),
                |mut s| {
                    apply_patch(s.process_mut(), &gen.patch, UpdatePolicy::default())
                        .expect("apply");
                    s
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let stream = patch_stream().expect("stream");
    let biggest = stream
        .iter()
        .max_by_key(|g| g.patch.size_bytes())
        .expect("non-empty");
    let server = warmed(0);
    c.bench_function("verify_only/largest_patch", |b| {
        b.iter(|| {
            tal::verify_module(&biggest.patch.module, &ProcessTypes(server.process()))
                .expect("verifies")
        });
    });
}

fn bench_patchgen(c: &mut Criterion) {
    let all = versions::all();
    let mut group = c.benchmark_group("patchgen");
    group.sample_size(20);
    group.bench_function("v3-to-v4", |b| {
        b.iter(|| {
            PatchGen::new()
                .generate(&all[2].1, &all[3].1, "v3", "v4")
                .expect("generates")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_apply, bench_verify, bench_patchgen);
criterion_main!(benches);
