//! Dynamic-update machinery costs. Plain timing harness.
//!
//! * `apply/*` — end-to-end patch application per FlashEd patch (fresh
//!   warmed server per iteration).
//! * `verify_only` — bytecode re-verification of the largest patch.
//! * `patchgen/*` — source-diff patch generation.

use dsu_bench::measure::{fmt_dur, time_median};
use dsu_core::{apply_patch, PatchGen, UpdatePolicy};
use flashed::{patch_stream, versions, Server, SimFs, Workload};
use vm::{LinkMode, ProcessTypes};

fn warmed(version_idx: usize) -> Server {
    let all = versions::all();
    let (name, src) = &all[version_idx];
    let fs = SimFs::generate_fixed(16, 512, 5);
    let mut wl = Workload::new(fs.paths(), 1.0, 100);
    let mut server = Server::start(LinkMode::Updateable, src, name, fs).expect("boot");
    server.push_requests(wl.batch(100));
    server.serve().expect("warm");
    server
}

fn bench_apply() {
    let stream = patch_stream().expect("stream");
    println!("apply: end-to-end patch application on a warmed server (median of 30)");
    for (i, gen) in stream.iter().enumerate() {
        // Warming happens outside the timed region: each sample warms a
        // fresh server, then times only the apply.
        let mut samples: Vec<std::time::Duration> = (0..30)
            .map(|_| {
                let mut s = warmed(i);
                let t = std::time::Instant::now();
                apply_patch(s.process_mut(), &gen.patch, UpdatePolicy::default()).expect("apply");
                t.elapsed()
            })
            .collect();
        samples.sort();
        println!(
            "  {}-to-{}: {}",
            gen.patch.from_version,
            gen.patch.to_version,
            fmt_dur(samples[samples.len() / 2]),
        );
    }
}

fn bench_verify() {
    let stream = patch_stream().expect("stream");
    let biggest = stream
        .iter()
        .max_by_key(|g| g.patch.size_bytes())
        .expect("non-empty");
    let server = warmed(0);
    let t = time_median(50, || {
        tal::verify_module(&biggest.patch.module, &ProcessTypes(server.process()))
            .expect("verifies");
    });
    println!("verify_only/largest_patch: {}", fmt_dur(t));
}

fn bench_patchgen() {
    let all = versions::all();
    let t = time_median(20, || {
        PatchGen::new()
            .generate(&all[2].1, &all[3].1, "v3", "v4")
            .expect("generates");
    });
    println!("patchgen/v3-to-v4: {}", fmt_dur(t));
}

fn main() {
    bench_apply();
    bench_verify();
    bench_patchgen();
}
