//! Criterion: end-to-end serving throughput, static vs updateable, and
//! serving across a live update.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flashed::{patch_stream, versions, Server, SimFs, Workload};
use vm::LinkMode;

const REQS: usize = 300;

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(30);
    for mode in [LinkMode::Static, LinkMode::Updateable] {
        let fs = SimFs::generate_fixed(32, 1024, 3);
        let mut wl = Workload::new(fs.paths(), 1.0, 17);
        let mut server = Server::start(mode, &versions::v2(), "v2", fs).expect("boot");
        group.bench_function(format!("{mode:?}/v2/{REQS}req"), |b| {
            b.iter(|| {
                server.push_requests(wl.batch(REQS));
                let served = server.serve().expect("serve");
                // Drain responses so iterations don't accumulate memory.
                server.take_completions();
                served
            });
        });
    }
    group.finish();
}

fn bench_serve_across_update(c: &mut Criterion) {
    let stream = patch_stream().expect("stream");
    let v3v4 = stream[2].patch.clone();
    let mut group = c.benchmark_group("serve_across_update");
    group.sample_size(20);
    group.bench_function(format!("v3-to-v4/{REQS}req"), |b| {
        b.iter_batched(
            || {
                let fs = SimFs::generate_fixed(32, 1024, 3);
                let mut wl = Workload::new(fs.paths(), 1.0, 17);
                let mut server =
                    Server::start(LinkMode::Updateable, &versions::v3(), "v3", fs).expect("boot");
                server.push_requests(wl.batch(REQS));
                server.queue_patch(v3v4.clone());
                server
            },
            |mut server| {
                server.serve().expect("serve");
                server
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_serve, bench_serve_across_update);
criterion_main!(benches);
