//! End-to-end serving throughput, static vs updateable, and serving
//! across a live update. Plain timing harness (no external framework).

use dsu_bench::measure::{fmt_dur, time_median};
use flashed::{patch_stream, versions, Server, SimFs, Workload};
use vm::LinkMode;

const REQS: usize = 300;

fn bench_serve() {
    println!("serve: {REQS} requests per iteration (median of 30)");
    for mode in [LinkMode::Static, LinkMode::Updateable] {
        let fs = SimFs::generate_fixed(32, 1024, 3);
        let mut wl = Workload::new(fs.paths(), 1.0, 17);
        let mut server = Server::start(mode, &versions::v2(), "v2", fs).expect("boot");
        let t = time_median(30, || {
            server.push_requests(wl.batch(REQS));
            server.serve().expect("serve");
            // Drain responses so iterations don't accumulate memory.
            server.take_completions();
        });
        let rps = REQS as f64 / t.as_secs_f64();
        println!("  {mode:?}/v2: {} per batch ({rps:.0} req/s)", fmt_dur(t));
    }
}

fn bench_serve_across_update() {
    let stream = patch_stream().expect("stream");
    let v3v4 = stream[2].patch.clone();
    println!("serve_across_update: v3-to-v4 mid-batch (median of 20)");
    let t = time_median(20, || {
        let fs = SimFs::generate_fixed(32, 1024, 3);
        let mut wl = Workload::new(fs.paths(), 1.0, 17);
        let mut server =
            Server::start(LinkMode::Updateable, &versions::v3(), "v3", fs).expect("boot");
        server.push_requests(wl.batch(REQS));
        server.queue_patch(v3v4.clone());
        server.serve().expect("serve");
    });
    println!(
        "  v3-to-v4/{REQS}req: {} (boot + serve + update)",
        fmt_dur(t)
    );
}

fn main() {
    bench_serve();
    bench_serve_across_update();
}
