//! Call-dispatch cost, static vs updateable linking.
//!
//! The narrowest view of the paper's overhead experiment: the same
//! call-dense kernel under direct binding and under indirection-table
//! binding. Plain timing harness (no external bench framework).

use dsu_bench::kernels::{boot_kernel, kernels, run_kernel};
use dsu_bench::measure::{fmt_dur, overhead_percent, time_interleaved_iters};
use vm::LinkMode;

fn main() {
    println!("dispatch: static vs updateable (min of 20 interleaved samples)");
    for k in kernels() {
        let mut ps = boot_kernel(&k, LinkMode::Static);
        let mut pu = boot_kernel(&k, LinkMode::Updateable);
        let (ts, tu) = time_interleaved_iters(
            20,
            5,
            || {
                run_kernel(&mut ps, &k);
            },
            || {
                run_kernel(&mut pu, &k);
            },
        );
        println!(
            "  {:<16} static {:>10}  updateable {:>10}  overhead {:+.2}%",
            k.name,
            fmt_dur(ts),
            fmt_dur(tu),
            overhead_percent(ts, tu),
        );
    }
}
