//! Call-dispatch cost: static vs updateable-cold vs updateable-cached.
//!
//! The narrowest view of the paper's overhead experiment, in three
//! variants of the same call-dense kernels:
//!
//! * **static** — calls bound directly to code (the paper's baseline);
//! * **updateable-cold** — every call through a Global Indirection Table
//!   slot, inline caching disabled (the pre-cache dispatch cost);
//! * **updateable-cached** — slot calls answered by per-site inline
//!   caches validated against the bind generation (table traffic only on
//!   the first call after a rebind).
//!
//! Plain timing harness (no external bench framework). Flags:
//! `--quick` shrinks samples/iters for CI smoke runs; `--json <path>`
//! writes the measurements for trend tracking.

use std::io::Write as _;

use dsu_bench::kernels::{boot_kernel, kernels, run_kernel};
use dsu_bench::measure::{fmt_dur, overhead_percent, time_interleaved3};
use vm::LinkMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (samples, iters) = if quick { (5, 2) } else { (20, 5) };

    println!(
        "dispatch: static vs updateable-cold vs updateable-cached \
         (min of {samples} interleaved samples x {iters})"
    );
    let mut entries = Vec::new();
    for k in kernels() {
        let mut ps = boot_kernel(&k, LinkMode::Static);
        let mut pc = boot_kernel(&k, LinkMode::Updateable);
        pc.set_inline_caching(false);
        let mut pu = boot_kernel(&k, LinkMode::Updateable);
        let (ts, tcold, tcached) = time_interleaved3(
            samples,
            iters,
            || {
                run_kernel(&mut ps, &k);
            },
            || {
                run_kernel(&mut pc, &k);
            },
            || {
                run_kernel(&mut pu, &k);
            },
        );
        println!(
            "  {:<10} static {:>9}  cold {:>9} ({:+.2}%)  cached {:>9} ({:+.2}%)",
            k.name,
            fmt_dur(ts),
            fmt_dur(tcold),
            overhead_percent(ts, tcold),
            fmt_dur(tcached),
            overhead_percent(ts, tcached),
        );
        entries.push(format!(
            "{{\"kernel\":\"{}\",\"static_ns\":{},\"cold_ns\":{},\"cached_ns\":{},\
             \"cold_overhead_pct\":{},\"cached_overhead_pct\":{}}}",
            dsu_obs::json::escape(k.name),
            ts.as_nanos(),
            tcold.as_nanos(),
            tcached.as_nanos(),
            dsu_obs::json::num(overhead_percent(ts, tcold)),
            dsu_obs::json::num(overhead_percent(ts, tcached)),
        ));
    }

    if let Some(path) = json_path {
        let doc = format!(
            "{{\"bench\":\"dispatch\",\"quick\":{quick},\"kernels\":[{}]}}\n",
            entries.join(",")
        );
        // `cargo bench` runs this binary with the package dir as CWD, so
        // anchor relative paths at the workspace root — artifacts land in
        // the same `target/telemetry/` the other bench bins write to.
        let path = std::path::Path::new(&path);
        let path = if path.is_absolute() {
            path.to_path_buf()
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(path)
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create json dir");
        }
        let mut f = std::fs::File::create(&path).expect("create json file");
        f.write_all(doc.as_bytes()).expect("write json");
        println!("  wrote {}", path.display());
    }
}
