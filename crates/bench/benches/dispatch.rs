//! Criterion: call-dispatch cost, static vs updateable linking.
//!
//! The narrowest view of the paper's overhead experiment: the same
//! call-dense kernel under direct binding and under indirection-table
//! binding.

use criterion::{criterion_group, criterion_main, Criterion};
use dsu_bench::kernels::{boot_kernel, kernels, run_kernel};
use vm::LinkMode;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    for k in kernels() {
        let mut ps = boot_kernel(&k, LinkMode::Static);
        group.bench_function(format!("{}/static", k.name), |b| {
            b.iter(|| run_kernel(&mut ps, &k));
        });
        let mut pu = boot_kernel(&k, LinkMode::Updateable);
        group.bench_function(format!("{}/updateable", k.name), |b| {
            b.iter(|| run_kernel(&mut pu, &k));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
