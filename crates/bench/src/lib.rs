//! # dsu-bench — the evaluation harness
//!
//! One binary per table/figure of the reproduced evaluation (see
//! `EXPERIMENTS.md` at the repository root for the experiment index and
//! recorded results):
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table1_patch_stats` | FlashEd patch-stream statistics |
//! | `table2_update_time` | patch application cost breakdown + state-size sweep |
//! | `table3_indirection` | updateable-compilation overhead on kernels |
//! | `table4_code_size` | code/metadata size of static vs updateable images |
//! | `figure1_throughput` | Flash vs FlashEd throughput across file sizes |
//! | `figure2_timeline` | throughput timeline across live updates |
//! | `ablation_policies` | verify on/off, activeness policies, transformer scaling |
//!
//! Criterion benches (`cargo bench`) cover call dispatch, patch
//! application and end-to-end serving.

pub mod kernels;
pub mod loadgen;
pub mod measure;

pub use kernels::{boot_kernel, kernels, run_kernel, Kernel};
pub use loadgen::{
    decorrelated_backoff, observe_sojourns, sojourn_stats, ClosedLoop, GenReport, OpenLoop,
    SojournStats,
};
