//! Telemetry self-overhead: what does observability cost the fleet?
//!
//! Runs the disk-bound fleet workload (the regime of the scaling
//! experiment: v1, no response cache, simulated per-read device latency)
//! twice per round — once on a plain fleet, once on an identical fleet
//! with full telemetry (lifecycle journal attached to every updater,
//! per-request counters/histograms, queue-depth gauge, VM-stat
//! publishing) — interleaved, taking the per-side minimum to suppress
//! scheduler noise. The claim under test: instrumentation costs **under
//! 2%** of throughput.
//!
//! Also exports the telemetry fleet's journal (JSONL) and merged metric
//! scrapes (Prometheus text + JSON) under `target/telemetry/`, so a CI
//! run leaves the artifacts behind.
//!
//! Run with: `cargo run --release -p dsu-bench --bin telemetry_overhead`
//! (pass `smoke` for a fast CI-sized run that reports but does not
//! enforce the threshold).

use std::time::Duration;

use dsu_bench::measure::{fmt_dur, overhead_percent, row, rule, time_interleaved};
use flashed::{versions, Fleet, SimFs, Workload};
use vm::LinkMode;

const WORKERS: usize = 4;
const FILES: usize = 32;
const DOC_SIZE: usize = 1024;
/// Simulated device latency per read — the disk-bound regime.
const READ_LATENCY: Duration = Duration::from_micros(150);
const THRESHOLD_PERCENT: f64 = 2.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "smoke");
    let (requests, samples) = if smoke { (400, 2) } else { (3000, 5) };

    let fs = SimFs::generate_fixed(FILES, DOC_SIZE, 3).with_read_latency(READ_LATENCY);
    let mut wl = Workload::new(fs.paths(), 1.0, 17);

    let plain = Fleet::start(WORKERS, LinkMode::Updateable, &versions::v1(), "v1", &fs)?;
    let telemetry =
        Fleet::start_telemetry(WORKERS, LinkMode::Updateable, &versions::v1(), "v1", &fs)?;

    // Warm both fleets outside the timed region.
    for fleet in [&plain, &telemetry] {
        fleet.push_requests(wl.batch(100 * WORKERS));
        fleet.drain(100 * WORKERS)?;
        fleet.shared().take_completions();
    }

    let batch: Vec<String> = wl.batch(requests);
    let run = |fleet: &Fleet| {
        fleet.push_requests(batch.iter().cloned());
        fleet.drain(requests).expect("fleet drains");
        fleet.shared().take_completions();
    };
    let (base, instrumented) = time_interleaved(samples, || run(&plain), || run(&telemetry));
    let overhead = overhead_percent(base, instrumented);

    println!(
        "Telemetry self-overhead: {WORKERS} workers, {requests} requests/side x {samples} rounds,\n\
         {READ_LATENCY:?} simulated device latency per read{}\n",
        if smoke { " (smoke mode)" } else { "" }
    );
    let widths = [14, 12, 12];
    row(&["fleet", "elapsed", "req/s"], &widths);
    rule(&widths);
    for (name, d) in [("plain", base), ("telemetry", instrumented)] {
        row(
            &[
                name,
                &fmt_dur(d),
                &format!("{:.0}", requests as f64 / d.as_secs_f64()),
            ],
            &widths,
        );
    }
    println!("\noverhead: {overhead:+.2}% (budget: {THRESHOLD_PERCENT}%)");

    // Leave the telemetry artifacts behind for scraping/upload.
    let tel = telemetry.telemetry().expect("telemetry fleet");
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("overhead_journal.jsonl"), tel.journal().to_jsonl())?;
    std::fs::write(dir.join("overhead_metrics.prom"), tel.scrape_text())?;
    std::fs::write(dir.join("overhead_metrics.json"), tel.scrape_json())?;
    println!("exported target/telemetry/overhead_{{journal.jsonl,metrics.prom,metrics.json}}");

    plain.shutdown()?;
    telemetry.shutdown()?;

    if smoke {
        println!("smoke mode: threshold reported, not enforced");
    } else if overhead < THRESHOLD_PERCENT {
        println!("PASS: telemetry overhead under {THRESHOLD_PERCENT}%");
    } else {
        println!("FAIL: telemetry overhead above {THRESHOLD_PERCENT}%");
        std::process::exit(1);
    }
    Ok(())
}
