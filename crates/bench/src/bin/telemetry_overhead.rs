//! Telemetry and tracing self-overhead: what does observability cost
//! the fleet?
//!
//! Runs the disk-bound fleet workload (the regime of the scaling
//! experiment: v1, no response cache, simulated per-read device latency)
//! four times per round on otherwise-identical fleets — interleaved
//! round-robin, taking the per-side minimum to suppress scheduler noise:
//!
//! * **plain** — no instrumentation at all (the baseline);
//! * **telemetry** — lifecycle journal attached to every updater,
//!   per-request counters/histograms, queue-depth gauge, VM-stat
//!   publishing;
//! * **traced** — telemetry plus causal tracing with every request
//!   sampled (a root span + AMPED phase children per response);
//! * **traced 1/16** — the same tracer sampling 1 request in 16, the
//!   configuration meant to stay on in production.
//!
//! The claims under test: telemetry costs **under 2%** of throughput,
//! and so does sampled tracing. Full-rate tracing is reported but not
//! enforced — it is a debugging mode, not a default.
//!
//! Also exports the telemetry fleet's journal (JSONL), merged metric
//! scrapes (Prometheus text + JSON) and the traced fleet's Chrome trace
//! under `target/telemetry/`, so a CI run leaves the artifacts behind.
//!
//! Run with: `cargo run --release -p dsu-bench --bin telemetry_overhead`
//! (pass `smoke` for a fast CI-sized run that reports but does not
//! enforce the thresholds).

use std::time::Duration;

use dsu_bench::measure::{fmt_dur, overhead_percent, row, rule, time_interleaved_n};
use flashed::{versions, Fleet, FleetConfig, SimFs, Workload};
use vm::LinkMode;

const WORKERS: usize = 4;
const FILES: usize = 32;
const DOC_SIZE: usize = 1024;
/// Simulated device latency per read — the disk-bound regime.
const READ_LATENCY: Duration = Duration::from_micros(150);
const THRESHOLD_PERCENT: f64 = 2.0;
/// The production sampling rate: record 1 request in 16.
const SAMPLE_EVERY: u64 = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "smoke");
    let (requests, samples) = if smoke { (400, 2) } else { (3000, 5) };

    let fs = SimFs::generate_fixed(FILES, DOC_SIZE, 3).with_read_latency(READ_LATENCY);
    let mut wl = Workload::new(fs.paths(), 1.0, 17);

    let plain = Fleet::start(WORKERS, LinkMode::Updateable, &versions::v1(), "v1", &fs)?;
    let telemetry =
        Fleet::start_telemetry(WORKERS, LinkMode::Updateable, &versions::v1(), "v1", &fs)?;
    let traced_cfg = FleetConfig::new(WORKERS).with_tracing();
    let traced = Fleet::start_cfg(&traced_cfg, &versions::v1(), "v1", &fs)?;
    let sampled = Fleet::start_cfg(&traced_cfg, &versions::v1(), "v1", &fs)?;
    sampled
        .telemetry()
        .expect("traced fleet")
        .tracer()
        .expect("tracer on")
        .set_sampling(SAMPLE_EVERY);

    // Warm every fleet outside the timed region.
    for fleet in [&plain, &telemetry, &traced, &sampled] {
        fleet.push_requests(wl.batch(100 * WORKERS));
        fleet.drain(100 * WORKERS)?;
        fleet.shared().take_completions();
    }

    let batch: Vec<String> = wl.batch(requests);
    let run = |fleet: &Fleet| {
        fleet.push_requests(batch.iter().cloned());
        fleet.drain(requests).expect("fleet drains");
        fleet.shared().take_completions();
    };
    let mut run_plain = || run(&plain);
    let mut run_telemetry = || run(&telemetry);
    let mut run_traced = || run(&traced);
    let mut run_sampled = || run(&sampled);
    let best = time_interleaved_n(
        samples,
        &mut [
            &mut run_plain,
            &mut run_telemetry,
            &mut run_traced,
            &mut run_sampled,
        ],
    );
    let base = best[0];
    let sampled_name = format!("traced 1/{SAMPLE_EVERY}");
    let sides = [
        ("plain", best[0]),
        ("telemetry", best[1]),
        ("traced 1/1", best[2]),
        (sampled_name.as_str(), best[3]),
    ];

    println!(
        "Observability self-overhead: {WORKERS} workers, {requests} requests/side x {samples} rounds,\n\
         {READ_LATENCY:?} simulated device latency per read{}\n",
        if smoke { " (smoke mode)" } else { "" }
    );
    let widths = [14, 12, 12, 10];
    row(&["fleet", "elapsed", "req/s", "overhead"], &widths);
    rule(&widths);
    for (name, d) in sides {
        row(
            &[
                name,
                &fmt_dur(d),
                &format!("{:.0}", requests as f64 / d.as_secs_f64()),
                &format!("{:+.2}%", overhead_percent(base, d)),
            ],
            &widths,
        );
    }
    let tel_overhead = overhead_percent(base, best[1]);
    let sampled_overhead = overhead_percent(base, best[3]);
    println!(
        "\nenforced (budget {THRESHOLD_PERCENT}%): telemetry {tel_overhead:+.2}%, \
         {sampled_name} {sampled_overhead:+.2}%"
    );

    // Leave the telemetry artifacts behind for scraping/upload.
    let tel = telemetry.telemetry().expect("telemetry fleet");
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("overhead_journal.jsonl"), tel.journal().to_jsonl())?;
    std::fs::write(dir.join("overhead_metrics.prom"), tel.scrape_text())?;
    std::fs::write(dir.join("overhead_metrics.json"), tel.scrape_json())?;
    let traced_tel = traced.telemetry().expect("traced fleet");
    let spans = traced_tel.tracer().expect("tracer on").take_spans();
    std::fs::write(
        dir.join("overhead_trace.json"),
        dsu_obs::to_chrome_trace(&spans),
    )?;
    println!(
        "exported target/telemetry/overhead_{{journal.jsonl,metrics.prom,metrics.json,trace.json}} \
         ({} spans in the full-rate trace)",
        spans.len()
    );

    plain.shutdown()?;
    telemetry.shutdown()?;
    traced.shutdown()?;
    sampled.shutdown()?;

    if smoke {
        println!("smoke mode: thresholds reported, not enforced");
    } else if tel_overhead < THRESHOLD_PERCENT && sampled_overhead < THRESHOLD_PERCENT {
        println!("PASS: telemetry and sampled tracing both under {THRESHOLD_PERCENT}%");
    } else {
        println!("FAIL: observability overhead above {THRESHOLD_PERCENT}%");
        std::process::exit(1);
    }
    Ok(())
}
