//! Table 3 — overhead of updateable compilation (indirection) on compute
//! kernels.
//!
//! Each kernel runs under static linking (direct call targets) and
//! updateable linking (every call through a Global Indirection Table
//! slot). The overhead should track call density: call-dense kernels
//! (`pingpong`, `fib`) pay the most, loop/array kernels the least.
//!
//! Run with: `cargo run --release -p dsu-bench --bin table3_indirection`

use dsu_bench::kernels::{boot_kernel, kernels, run_kernel};
use dsu_bench::measure::{fmt_dur, overhead_percent, row, rule, time_interleaved_iters};
use vm::LinkMode;

const SAMPLES: usize = 25;
const ITERS: usize = 8;

fn main() {
    println!(
        "Table 3: updateable-compilation overhead \
         (min of {SAMPLES} interleaved samples x {ITERS} runs)\n"
    );
    let widths = [9, 11, 11, 9, 10, 11, 13];
    row(
        &[
            "kernel",
            "static",
            "updateable",
            "overhead",
            "calls",
            "instrs",
            "calls/kinstr",
        ],
        &widths,
    );
    rule(&widths);

    for k in kernels() {
        let mut ps = boot_kernel(&k, LinkMode::Static);
        let mut pu = boot_kernel(&k, LinkMode::Updateable);
        let (t_static, t_upd) = time_interleaved_iters(
            SAMPLES,
            ITERS,
            || run_kernel(&mut ps, &k),
            || run_kernel(&mut pu, &k),
        );

        // Per-run instruction/call profile (from one clean run).
        let mut probe = boot_kernel(&k, LinkMode::Static);
        run_kernel(&mut probe, &k);
        let calls = probe.stats.calls;
        let instrs = probe.stats.instrs;
        let density = calls as f64 / instrs as f64 * 1000.0;

        row(
            &[
                k.name,
                &fmt_dur(t_static),
                &fmt_dur(t_upd),
                &format!("{:+.1}%", overhead_percent(t_static, t_upd)),
                &calls.to_string(),
                &instrs.to_string(),
                &format!("{density:.1}"),
            ],
            &widths,
        );
    }
    println!(
        "\n(expected shape: small single-digit-percent overhead, concentrated in\n\
         call-dense kernels — one extra dependent load per call through the\n\
         rebindable slot. On this interpreter substrate the per-call dispatch\n\
         cost is a few ns against ~200ns of interpretation, so call-sparse\n\
         kernels sit at the measurement noise floor.)"
    );
}
