//! Table 3 — overhead of updateable compilation (indirection) on compute
//! kernels.
//!
//! Each kernel runs in three variants: static linking (direct call
//! targets), updateable linking with inline caching disabled ("cold":
//! every call pays the Global Indirection Table lookup, the pre-cache
//! behaviour), and updateable linking with per-site inline caches
//! ("cached": table traffic only on the first call after a rebind).
//! The overhead should track call density: call-dense kernels
//! (`pingpong`, `fib`) pay the most, loop/array kernels the least.
//!
//! Run with: `cargo run --release -p dsu-bench --bin table3_indirection`
//!
//! Flags: `--quick` (CI-sized sampling), `--json <path>` (write the
//! measurements), `--max-cached-overhead <pct>` (exit non-zero when the
//! mean cached overhead across kernels exceeds the bound — the CI
//! regression gate).

use std::io::Write as _;
use std::time::Duration;

use dsu_bench::kernels::{boot_kernel, kernels, run_kernel};
use dsu_bench::measure::{fmt_dur, overhead_percent, row, rule, time_interleaved3};
use vm::LinkMode;

struct Measurement {
    name: &'static str,
    t_static: Duration,
    t_cold: Duration,
    t_cached: Duration,
    calls: u64,
    instrs: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let max_cached: Option<f64> = args
        .iter()
        .position(|a| a == "--max-cached-overhead")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--max-cached-overhead takes a percent"));
    let (samples, iters) = if quick { (6, 2) } else { (25, 8) };

    println!(
        "Table 3: updateable-compilation overhead \
         (min of {samples} interleaved samples x {iters} runs)\n"
    );
    let widths = [9, 11, 11, 9, 11, 9, 10, 11];
    row(
        &[
            "kernel",
            "static",
            "upd-cold",
            "overhead",
            "upd-cached",
            "overhead",
            "calls",
            "instrs",
        ],
        &widths,
    );
    rule(&widths);

    let mut results = Vec::new();
    for k in kernels() {
        let mut ps = boot_kernel(&k, LinkMode::Static);
        let mut pc = boot_kernel(&k, LinkMode::Updateable);
        pc.set_inline_caching(false);
        let mut pu = boot_kernel(&k, LinkMode::Updateable);
        let (t_static, t_cold, t_cached) = time_interleaved3(
            samples,
            iters,
            || run_kernel(&mut ps, &k),
            || run_kernel(&mut pc, &k),
            || run_kernel(&mut pu, &k),
        );

        // Per-run instruction/call profile (from one clean run).
        let mut probe = boot_kernel(&k, LinkMode::Static);
        run_kernel(&mut probe, &k);

        let m = Measurement {
            name: k.name,
            t_static,
            t_cold,
            t_cached,
            calls: probe.stats.calls,
            instrs: probe.stats.instrs,
        };
        row(
            &[
                m.name,
                &fmt_dur(m.t_static),
                &fmt_dur(m.t_cold),
                &format!("{:+.1}%", overhead_percent(m.t_static, m.t_cold)),
                &fmt_dur(m.t_cached),
                &format!("{:+.1}%", overhead_percent(m.t_static, m.t_cached)),
                &m.calls.to_string(),
                &m.instrs.to_string(),
            ],
            &widths,
        );
        results.push(m);
    }

    let mean =
        |f: &dyn Fn(&Measurement) -> f64| results.iter().map(f).sum::<f64>() / results.len() as f64;
    let mean_cold = mean(&|m| overhead_percent(m.t_static, m.t_cold));
    let mean_cached = mean(&|m| overhead_percent(m.t_static, m.t_cached));
    println!(
        "\nmean overhead vs static: cold {mean_cold:+.2}%, cached {mean_cached:+.2}%\n\
         (cold = every call re-resolves through the indirection table; cached =\n\
         per-site inline caches validated against the bind generation, so a warm\n\
         site skips the rebindable slot entirely — one generation compare, then\n\
         a direct code-store fetch. The paper's Table 3 predicts overhead\n\
         concentrated in call-dense kernels; on this substrate both updateable\n\
         variants sit within ~1-3% of static because the GIT is a flat dense\n\
         table and the decoded dispatch loop dominates.)"
    );

    if let Some(path) = json_path {
        let entries: Vec<String> = results
            .iter()
            .map(|m| {
                format!(
                    "{{\"kernel\":\"{}\",\"static_ns\":{},\"cold_ns\":{},\"cached_ns\":{},\
                     \"cold_overhead_pct\":{},\"cached_overhead_pct\":{},\
                     \"calls\":{},\"instrs\":{}}}",
                    dsu_obs::json::escape(m.name),
                    m.t_static.as_nanos(),
                    m.t_cold.as_nanos(),
                    m.t_cached.as_nanos(),
                    dsu_obs::json::num(overhead_percent(m.t_static, m.t_cold)),
                    dsu_obs::json::num(overhead_percent(m.t_static, m.t_cached)),
                    m.calls,
                    m.instrs,
                )
            })
            .collect();
        let doc = format!(
            "{{\"bench\":\"table3_indirection\",\"quick\":{quick},\
             \"mean_cold_overhead_pct\":{},\"mean_cached_overhead_pct\":{},\
             \"kernels\":[{}]}}\n",
            dsu_obs::json::num(mean_cold),
            dsu_obs::json::num(mean_cached),
            entries.join(",")
        );
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create json dir");
        }
        let mut f = std::fs::File::create(&path).expect("create json file");
        f.write_all(doc.as_bytes()).expect("write json");
        println!("wrote {path}");
    }

    if let Some(bound) = max_cached {
        if mean_cached > bound {
            eprintln!("FAIL: mean cached overhead {mean_cached:+.2}% exceeds bound {bound:+.2}%");
            std::process::exit(1);
        }
        println!("gate: mean cached overhead {mean_cached:+.2}% within bound {bound:+.2}%");
    }
}
