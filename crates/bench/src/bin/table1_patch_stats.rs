//! Table 1 — FlashEd patch-stream statistics.
//!
//! For each version-to-version patch of the FlashEd development history:
//! functions changed / carried by safety rules / added / removed, types
//! changed, globals added, state transformers (and how many were
//! synthesised automatically), and patch size.
//!
//! Run with: `cargo run --release -p dsu-bench --bin table1_patch_stats`

use dsu_bench::measure::{row, rule};
use flashed::patch_stream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let widths = [8, 7, 7, 5, 7, 5, 7, 11, 6, 7];
    println!("Table 1: FlashEd patch stream statistics\n");
    row(
        &[
            "patch", "changed", "carried", "added", "removed", "types", "globals", "xformers",
            "auto", "bytes",
        ],
        &widths,
    );
    rule(&widths);
    for gen in patch_stream()? {
        let s = &gen.stats;
        row(
            &[
                &format!("{}->{}", gen.patch.from_version, gen.patch.to_version),
                &s.functions_changed.to_string(),
                &s.functions_carried.to_string(),
                &s.functions_added.to_string(),
                &s.functions_removed.to_string(),
                &s.types_changed.to_string(),
                &s.globals_added.to_string(),
                &s.transformers.to_string(),
                &s.transformers_auto.to_string(),
                &gen.patch.size_bytes().to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\n(carried = functions whose text is unchanged but that the update-safety\n\
         analysis pulls into the patch: they touch a changed type or call a\n\
         signature-changed function)"
    );
    Ok(())
}
