//! Figure 3 — per-request service-time distribution.
//!
//! Complements the throughput figures with the client-visible view:
//! service-time percentiles for the static and updateable servers, and
//! for the updateable server across a live update — showing that the
//! update pause affects (at most) the handful of requests served at the
//! update point and leaves the distribution otherwise untouched.
//!
//! Run with: `cargo run --release -p dsu-bench --bin figure3_latency`

use dsu_bench::measure::{fmt_dur, row, rule};
use flashed::{latency_stats, patch_stream, versions, Server, SimFs, Workload};
use vm::LinkMode;

const REQUESTS: usize = 3000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 3: per-request service time ({REQUESTS} requests, v3, 1KiB docs)\n");
    let widths = [26, 10, 10, 10];
    row(&["configuration", "p50", "p99", "max"], &widths);
    rule(&widths);

    // Static baseline.
    let stats = run(LinkMode::Static, false)?;
    print_row("static (Flash)", stats, &widths);

    // Updateable, no update.
    let stats = run(LinkMode::Updateable, false)?;
    print_row("updateable (FlashEd)", stats, &widths);

    // Updateable with the v3->v4 type-changing update mid-stream.
    let stats = run(LinkMode::Updateable, true)?;
    print_row("updateable + live update", stats, &widths);

    println!(
        "\n(expected shape: the three distributions coincide — updateable\n\
         dispatch does not inflate per-request service time, and the update\n\
         pause falls *between* requests (an inter-arrival gap, figure 2),\n\
         never inside one. No residual post-update inflation: unlike\n\
         proxy-based DSU, updated code runs at full speed.)"
    );
    Ok(())
}

fn run(
    mode: LinkMode,
    update_mid_stream: bool,
) -> Result<flashed::LatencyStats, Box<dyn std::error::Error>> {
    let fs = SimFs::generate_fixed(32, 1024, 3);
    let mut wl = Workload::new(fs.paths(), 1.0, 17);
    let mut server = Server::start(mode, &versions::v3(), "v3", fs)?;
    // Warm up (cache population, allocator).
    server.push_requests(wl.batch(300));
    server.serve().map_err(|e| e.to_string())?;
    server.take_completions();

    server.push_requests(wl.batch(REQUESTS));
    if update_mid_stream {
        let gen = &patch_stream()?[2]; // v3 -> v4
        server.queue_patch(gen.patch.clone());
    }
    server.serve().map_err(|e| e.to_string())?;
    Ok(latency_stats(&server.completions()))
}

fn print_row(label: &str, s: flashed::LatencyStats, widths: &[usize]) {
    row(
        &[label, &fmt_dur(s.p50), &fmt_dur(s.p99), &fmt_dur(s.max)],
        widths,
    );
}
