//! Table 2 — patch application cost breakdown.
//!
//! Part A: per-phase wall-clock cost of each FlashEd patch, applied to a
//! warmed server (populated cache), averaged over repetitions.
//!
//! Part B: state-transformation cost as a function of live state size —
//! a synthetic guest with N records undergoes a representation change.
//!
//! Run with: `cargo run --release -p dsu-bench --bin table2_update_time`

use std::time::Duration;

use dsu_bench::measure::{fmt_dur, row, rule};
use dsu_core::{apply_patch, PatchGen, PhaseTimings, UpdatePolicy};
use flashed::{patch_stream, versions, Server, SimFs, Workload};
use vm::{LinkMode, Process, Value};

const REPS: usize = 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    part_a()?;
    part_b()?;
    Ok(())
}

/// Applies each FlashEd patch to a freshly warmed server, REPS times, and
/// reports mean per-phase costs.
fn part_a() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 2a: FlashEd patch application cost (mean of {REPS} runs)\n");
    let widths = [8, 10, 10, 10, 10, 10, 10, 11];
    row(
        &[
            "patch", "verify", "compat", "link", "bind", "init", "xform", "total",
        ],
        &widths,
    );
    rule(&widths);

    let all = versions::all();
    let stream = patch_stream()?;
    for (i, gen) in stream.iter().enumerate() {
        let (from_name, from_src) = &all[i];
        let mut sum = PhaseSums::default();
        for rep in 0..REPS {
            // Fresh, warmed server per repetition.
            let fs = SimFs::generate_fixed(32, 1024, 5);
            let mut wl = Workload::new(fs.paths(), 1.0, 100 + rep as u64);
            let mut server = Server::start(LinkMode::Updateable, from_src, from_name, fs)?;
            server.push_requests(wl.batch(200));
            server.serve().map_err(|e| e.to_string())?;
            let report = apply_patch(server.process_mut(), &gen.patch, UpdatePolicy::default())?;
            sum.add(&report.timings);
        }
        let mean = sum.mean(REPS);
        row(
            &[
                &format!("{}->{}", gen.patch.from_version, gen.patch.to_version),
                &fmt_dur(mean.verify),
                &fmt_dur(mean.compat),
                &fmt_dur(mean.link),
                &fmt_dur(mean.bind),
                &fmt_dur(mean.init),
                &fmt_dur(mean.transform),
                &fmt_dur(mean.total()),
            ],
            &widths,
        );
    }
    println!();
    Ok(())
}

/// Synthetic state-size sweep: transform cost over N live records.
fn part_b() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 2b: state-transformation cost vs live state size\n");
    let widths = [9, 12, 12, 12];
    row(&["records", "xform", "total pause", "per record"], &widths);
    rule(&widths);

    let v1 = r#"
        struct rec { id: int, tag: string }
        global data: [rec] = new [rec];
        fun fill(n: int): int {
            var i: int = 0;
            while (i < n) {
                push(data, rec { id: i, tag: "r" + itoa(i) });
                i = i + 1;
            }
            return len(data);
        }
        fun total(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(data)) { s = s + data[i].id; i = i + 1; }
            return s;
        }
    "#;
    let v2 = r#"
        struct rec { id: int, tag: string, dirty: bool }
        global data: [rec] = new [rec];
        fun fill(n: int): int {
            var i: int = 0;
            while (i < n) {
                push(data, rec { id: i, tag: "r" + itoa(i), dirty: false });
                i = i + 1;
            }
            return len(data);
        }
        fun total(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(data)) { s = s + data[i].id; i = i + 1; }
            return s;
        }
    "#;
    let gen = PatchGen::new().generate(v1, v2, "v1", "v2")?;

    for n in [100i64, 1_000, 10_000, 100_000] {
        let module = popcorn::compile(v1, "sweep", "v1", &popcorn::Interface::new())?;
        let mut proc = Process::new(LinkMode::Updateable);
        proc.load_module(&module)?;
        proc.call("fill", vec![Value::Int(n)])?;
        let before = proc.call("total", vec![])?;
        let report = apply_patch(&mut proc, &gen.patch, UpdatePolicy::default())?;
        assert_eq!(proc.call("total", vec![])?, before, "state preserved");
        let per = report.timings.transform.as_secs_f64() / n as f64 * 1e9;
        row(
            &[
                &n.to_string(),
                &fmt_dur(report.timings.transform),
                &fmt_dur(report.timings.total()),
                &format!("{per:.0}ns"),
            ],
            &widths,
        );
    }
    println!(
        "\n(expected shape: transform grows linearly with live state and dominates\n\
         the pause at large N; verify/link costs are state-independent)"
    );
    Ok(())
}

#[derive(Default)]
struct PhaseSums {
    verify: Duration,
    compat: Duration,
    link: Duration,
    bind: Duration,
    init: Duration,
    transform: Duration,
}

impl PhaseSums {
    fn add(&mut self, t: &PhaseTimings) {
        self.verify += t.verify;
        self.compat += t.compat;
        self.link += t.link;
        self.bind += t.bind;
        self.init += t.init;
        self.transform += t.transform;
    }

    fn mean(&self, n: usize) -> PhaseTimings {
        let n = n as u32;
        PhaseTimings {
            verify: self.verify / n,
            compat: self.compat / n,
            link: self.link / n,
            bind: self.bind / n,
            init: self.init / n,
            transform: self.transform / n,
            // Direct applies never wait on in-flight host work.
            ..PhaseTimings::default()
        }
    }
}
