//! Guarded rollouts under fault injection: breach, rollback, converge.
//!
//! Drives the self-healing rollout pipeline end to end, twice:
//!
//! 1. **Healthy rollout** — a clean v1 -> v2 guarded rollout (canary
//!    first, health gate after every step). Every step passes, the fleet
//!    converges on v2, and the report card says `completed`.
//! 2. **Breach -> rollback** — the canary's update pause is inflated by
//!    an injected [`FaultPlan`] well past a tight p99 pause SLO. The
//!    health gate trips on the canary, the rollout rolls the canary back
//!    through the inverse (v2 -> v1) patch, and the fleet converges on
//!    the *prior* version while still serving.
//!
//! Both runs cross-check the fleet journal against the report card: every
//! lifecycle validates, and each rollback lifecycle's phase sum equals
//! that report's pipeline total exactly. The breach run also measures
//! forward-apply vs rollback latency (EXPERIMENTS R1) — the rollback is
//! the same seven-phase pipeline in reverse, so the two should sit within
//! the same order of magnitude.
//!
//! Artifacts (CI's fault-smoke job uploads these):
//! `target/telemetry/rollout_guard_card.json` — the breach run's report
//! card; `target/telemetry/rollout_guard.jsonl` — its journal.
//!
//! Run with: `cargo run --release -p dsu-bench --bin rollout_guard`

use std::time::Duration;

use dsu_bench::measure::fmt_dur;
use flashed::{
    patch_stream, versions, BreachAction, FaultPlan, Fleet, FleetConfig, HealthBreach, PauseSlo,
    RolloutOutcome, RolloutReportCard, SimFs, WorkerOverride, Workload,
};

const WORKERS: usize = 3;
const REQUESTS: usize = 300;
const FILES: usize = 16;
const DOC_SIZE: usize = 256;

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(FILES, DOC_SIZE, 7);
    let wl = Workload::new(fs.paths(), 1.0, 53);
    (fs, wl)
}

fn forward_patch() -> Result<dsu_core::Patch, Box<dyn std::error::Error>> {
    Ok(patch_stream()?[0].patch.clone()) // v1 -> v2
}

fn inverse_patch() -> Result<dsu_core::Patch, Box<dyn std::error::Error>> {
    Ok(dsu_core::PatchGen::new()
        .generate(&versions::v2(), &versions::v1(), "v2", "v1")?
        .patch)
}

/// Re-derives each journal lifecycle and checks its phase sum against the
/// matching report in the card — the "journal-backed" guarantee.
fn check_journal(
    fleet: &Fleet,
    card: &RolloutReportCard,
) -> Result<(), Box<dyn std::error::Error>> {
    let tel = fleet.telemetry().expect("fleet started with telemetry");
    for id in tel.journal().update_ids() {
        dsu_obs::journal::validate_lifecycle(&tel.journal().events_for(id))?;
    }
    let timeline = tel.timeline();
    for (worker, r) in card.forward.iter().chain(&card.rollbacks) {
        let row = timeline
            .iter()
            .find(|row| {
                row.worker == Some(*worker)
                    && row.to_version == r.to_version
                    && (row.committed || row.rolled_back)
            })
            .unwrap_or_else(|| panic!("no journal row for worker {worker} -> {}", r.to_version));
        assert_eq!(
            row.phase_total,
            r.timings.total(),
            "worker {worker}: journal phase sum != report total"
        );
    }
    Ok(())
}

/// A clean guarded rollout: every step passes its gate, the fleet
/// converges on the new version.
fn healthy() -> Result<(), Box<dyn std::error::Error>> {
    println!("Guarded rollout, healthy fleet ({WORKERS} workers, v1 -> v2, canary worker 0)\n");
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(WORKERS).with_telemetry();
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).map_err(|e| e.to_string())?;
    fleet.push_requests(wl.batch(REQUESTS));

    let (_, card) = fleet
        .rollout_guarded(
            &forward_patch()?,
            0,
            PauseSlo::p99(Duration::from_millis(50)),
            BreachAction::RollBack { inverse: None },
        )
        .map_err(|e| e.to_string())?;
    fleet.drain(REQUESTS).map_err(|e| e.to_string())?;

    assert_eq!(card.outcome, RolloutOutcome::Completed);
    assert!(
        card.converged(),
        "fleet diverged: {:?}",
        card.final_versions
    );
    assert!(fleet.live_versions().iter().all(|v| v == "v2"));
    check_journal(&fleet, &card)?;
    print!("{}", card.render());
    println!();
    fleet.shutdown().map_err(|e| e.to_string())?;
    Ok(())
}

/// The self-healing path: an injected pause fault breaches the SLO on the
/// canary, and the rollout rolls the fleet back through the inverse patch.
fn breach_and_rollback() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Guarded rollout, faulted canary ({WORKERS} workers, v1 -> v2, \
         8 ms injected pause vs 2 ms p99 budget)\n"
    );
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(WORKERS).with_telemetry().override_worker(
        0,
        WorkerOverride {
            fault: FaultPlan {
                pause_delay: Some(Duration::from_millis(8)),
                ..FaultPlan::default()
            },
            ..WorkerOverride::default()
        },
    );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).map_err(|e| e.to_string())?;
    fleet.push_requests(wl.batch(REQUESTS));

    let (_, card) = fleet
        .rollout_guarded(
            &forward_patch()?,
            0,
            PauseSlo::p99(Duration::from_millis(2)),
            BreachAction::RollBack {
                inverse: Some(Box::new(inverse_patch()?)),
            },
        )
        .map_err(|e| e.to_string())?;
    fleet.drain(REQUESTS).map_err(|e| e.to_string())?;

    // The breach names the canary's pause, the fleet is back on v1, and
    // the journal backs every number on the card.
    assert!(
        matches!(
            card.outcome,
            RolloutOutcome::RolledBack(HealthBreach::PauseSlo { worker: 0, .. })
        ),
        "expected a pause-SLO rollback, got {:?}",
        card.outcome
    );
    assert!(
        card.converged(),
        "fleet diverged: {:?}",
        card.final_versions
    );
    assert!(fleet.live_versions().iter().all(|v| v == "v1"));
    check_journal(&fleet, &card)?;
    print!("{}", card.render());

    // R1: forward apply vs rollback, same pipeline both directions. The
    // forward total includes the injected 8 ms pause (charged to drain);
    // the transform-onward phases are the honest comparison.
    let fwd = &card.forward[0].1;
    let rb = &card.rollbacks[0].1;
    println!("\n  R1: forward apply vs rollback (canary, one update each way)");
    println!(
        "    forward  v1 -> v2: total {} (drain {} holds the injected fault), transform {}",
        fmt_dur(fwd.timings.total()),
        fmt_dur(fwd.timings.drain),
        fmt_dur(fwd.timings.transform),
    );
    println!(
        "    rollback v2 -> v1: total {} (reverse transformers), transform {}",
        fmt_dur(rb.timings.total()),
        fmt_dur(rb.timings.transform),
    );
    let fwd_pipeline = fwd.timings.total() - fwd.timings.drain;
    let rb_pipeline = rb.timings.total() - rb.timings.drain;
    println!(
        "    pipeline excl. drain: forward {} vs rollback {} (ratio {:.2}x)",
        fmt_dur(fwd_pipeline),
        fmt_dur(rb_pipeline),
        rb_pipeline.as_secs_f64() / fwd_pipeline.as_secs_f64().max(f64::EPSILON),
    );

    // Artifacts for CI.
    let tel = fleet.telemetry().expect("fleet started with telemetry");
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("rollout_guard_card.json"), card.to_json())?;
    std::fs::write(dir.join("rollout_guard.jsonl"), tel.journal().to_jsonl())?;
    println!("\n  exported target/telemetry/rollout_guard_card.json and rollout_guard.jsonl\n");
    fleet.shutdown().map_err(|e| e.to_string())?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    healthy()?;
    breach_and_rollback()?;
    Ok(())
}
