//! Fleet serving: multi-worker throughput scaling and coordinated
//! live-update rollouts.
//!
//! Scales the paper's single-server live-update experiment out to a
//! sharded fleet: N worker threads, each its own FlashEd process, one
//! shared request queue. Three measurements:
//!
//! 1. **Scaling** — fleet throughput at 1, 2 and 4 workers over a
//!    disk-bound workload (v1, no response cache, simulated per-read
//!    device latency — Flash's own regime); 4 workers should clear 2x a
//!    single worker by overlapping reads.
//! 2. **Rolling rollout** — the v3->v4 type-changing patch applied one
//!    worker at a time while the fleet serves: completions never stop,
//!    so the largest fleet-wide completion gap stays at workload scale.
//! 3. **Simultaneous rollout** — the same patch applied to all workers
//!    at once behind a barrier: the aggregated report shows the
//!    fleet-wide pause, and the completion timeline shows a matching gap.
//!
//! Rollouts run with telemetry on: the update-lifecycle journal is
//! cross-checked against the rollout report (phase sums must match
//! exactly) and exported, with the merged Prometheus/JSON scrapes, under
//! `target/telemetry/`.
//!
//! On top of the blocking fleet, two AMPED measurements (event-loop
//! serve mode, helper pool + buffer cache per worker):
//!
//! 4. **AMPED vs blocking** — the same disk-bound workload at a 1 ms
//!    device latency, blocking and event-loop fleets side by side; a
//!    single AMPED worker must clear 1.5x a single blocking worker.
//! 5. **AMPED rollout** — a rolling update over an event-loop fleet with
//!    reads in flight: every worker drains its parked reads before
//!    binding (the report's `drain` phase), and the journal still
//!    reconciles with the report timings exactly.
//!
//! Run with: `cargo run --release -p dsu-bench --bin fleet_throughput`
//! (pass `amped` to run only the AMPED sections, as CI's smoke job does;
//! pass `--trace-out <path>` to run the AMPED rollout with causal
//! tracing on and write the Chrome trace — loadable in Perfetto /
//! `chrome://tracing` — to `<path>`)

use std::time::{Duration, Instant};

use dsu_bench::measure::{fmt_dur, row, rule};
use flashed::{
    patch_stream, versions, Completion, EventLoopConfig, Fleet, FleetConfig, RolloutPolicy,
    ServeMode, ServerTelemetry, SimFs, Workload,
};
use vm::LinkMode;

const REQUESTS: usize = 6000;
const FILES: usize = 32;
const DOC_SIZE: usize = 1024;
const WORKERS: usize = 4;
/// Simulated device latency per (uncached) read in the scaling runs.
const READ_LATENCY: Duration = Duration::from_micros(150);
/// Requests and device latency for the AMPED-vs-blocking comparison —
/// slow enough that a blocking worker is clearly disk-bound.
const AMPED_REQUESTS: usize = 2000;
const AMPED_LATENCY: Duration = Duration::from_millis(1);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let only_amped = args.iter().any(|a| a == "amped");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).expect("--trace-out needs a path").clone());
    if !only_amped {
        scaling()?;
    }
    amped_scaling()?;
    if !only_amped {
        rollouts()?;
    }
    amped_rollout(trace_out.as_deref())?;
    Ok(())
}

/// Throughput at 1, 2 and 4 workers over the same workload.
fn scaling() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Fleet scaling: {REQUESTS} requests, {FILES} files x {DOC_SIZE} B, zipf(1.0), v1,\n\
         {READ_LATENCY:?} simulated device latency per read\n"
    );
    let widths = [9, 12, 12, 9];
    row(&["workers", "elapsed", "req/s", "speedup"], &widths);
    rule(&widths);

    let mut base = 0.0f64;
    for n in [1usize, 2, 4] {
        let fs = SimFs::generate_fixed(FILES, DOC_SIZE, 3).with_read_latency(READ_LATENCY);
        let mut wl = Workload::new(fs.paths(), 1.0, 17);
        let fleet = Fleet::start(n, LinkMode::Updateable, &versions::v1(), "v1", &fs)
            .map_err(|e| e.to_string())?;
        // Warm every worker's cache and code path outside the timed region.
        fleet.push_requests(wl.batch(200 * n));
        fleet.drain(200 * n).map_err(|e| e.to_string())?;
        fleet.shared().take_completions();

        let t0 = Instant::now();
        fleet.push_requests(wl.batch(REQUESTS));
        fleet.drain(REQUESTS).map_err(|e| e.to_string())?;
        let elapsed = t0.elapsed();
        fleet.shutdown().map_err(|e| e.to_string())?;

        let rps = REQUESTS as f64 / elapsed.as_secs_f64();
        if n == 1 {
            base = rps;
        }
        row(
            &[
                &n.to_string(),
                &fmt_dur(elapsed),
                &format!("{rps:.0}"),
                &format!("{:.2}x", rps / base),
            ],
            &widths,
        );
    }
    println!();
    Ok(())
}

/// Blocking vs AMPED fleets over the same disk-bound workload: the
/// event loop overlaps device waits within one worker, so it beats the
/// blocking fleet at every size — acceptance requires >1.5x at a single
/// worker.
fn amped_scaling() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "AMPED vs blocking: {AMPED_REQUESTS} requests, {FILES} files x {DOC_SIZE} B, zipf(1.0), v1,\n\
         {AMPED_LATENCY:?} simulated device latency per read\n"
    );
    let widths = [10, 9, 12, 12, 9, 11];
    row(
        &[
            "mode",
            "workers",
            "elapsed",
            "req/s",
            "speedup",
            "cache hit%",
        ],
        &widths,
    );
    rule(&widths);

    let mut base = 0.0f64;
    let mut single_blocking = 0.0f64;
    let mut single_amped = 0.0f64;
    let modes = [
        ("blocking", ServeMode::Blocking),
        ("amped", ServeMode::EventLoop(EventLoopConfig::default())),
    ];
    for (label, serve_mode) in modes {
        for n in [1usize, 2, 4] {
            let mut fs = SimFs::generate_fixed(FILES, DOC_SIZE, 3);
            fs.set_read_latency(AMPED_LATENCY);
            let mut wl = Workload::new(fs.paths(), 1.0, 17);
            let cfg = FleetConfig::new(n).serve_mode(serve_mode).with_telemetry();
            let fleet =
                Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).map_err(|e| e.to_string())?;
            // Keep worker telemetry handles; shutdown consumes the fleet.
            let tels: Vec<ServerTelemetry> = (0..n)
                .map(|i| fleet.telemetry().expect("telemetry on").worker(i).clone())
                .collect();

            let t0 = Instant::now();
            fleet.push_requests(wl.batch(AMPED_REQUESTS));
            fleet.drain(AMPED_REQUESTS).map_err(|e| e.to_string())?;
            let elapsed = t0.elapsed();
            fleet.shutdown().map_err(|e| e.to_string())?;

            let rps = AMPED_REQUESTS as f64 / elapsed.as_secs_f64();
            if label == "blocking" && n == 1 {
                base = rps;
                single_blocking = rps;
            }
            if label == "amped" && n == 1 {
                single_amped = rps;
            }
            let (hits, misses) = tels.iter().fold((0u64, 0u64), |(h, m), t| {
                (h + t.cache_hits(), m + t.cache_misses())
            });
            let hit_pct = if hits + misses == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64)
            };
            row(
                &[
                    label,
                    &n.to_string(),
                    &fmt_dur(elapsed),
                    &format!("{rps:.0}"),
                    &format!("{:.2}x", rps / base),
                    &hit_pct,
                ],
                &widths,
            );
        }
    }
    let ratio = single_amped / single_blocking;
    assert!(
        ratio > 1.5,
        "acceptance: one AMPED worker must clear 1.5x one blocking worker, got {ratio:.2}x"
    );
    println!("\n(single-worker AMPED speedup over blocking: {ratio:.2}x — the event\n loop overlaps device waits the blocking server serializes)\n");
    Ok(())
}

/// A rolling update over an AMPED fleet with reads in flight: parked
/// requests drain before each worker binds (the `drain` phase), the
/// journal reconciles with the report exactly, and everything exports.
fn amped_rollout(trace_out: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    println!("Live update over an AMPED fleet (v3 -> v4, rolling, reads in flight)\n");
    let mut fs = SimFs::generate_fixed(FILES, DOC_SIZE, 3);
    fs.set_read_latency(Duration::from_micros(300));
    let mut wl = Workload::new(fs.paths(), 1.0, 17);
    let gen = &patch_stream()?[2]; // v3 -> v4 (cache representation change)

    let mut cfg = FleetConfig::new(WORKERS)
        .serve_mode(ServeMode::EventLoop(EventLoopConfig::default()))
        .with_telemetry();
    if trace_out.is_some() {
        cfg = cfg.with_tracing();
    }
    let fleet = Fleet::start_cfg(&cfg, &versions::v3(), "v3", &fs).map_err(|e| e.to_string())?;

    fleet.push_requests(wl.batch(REQUESTS));
    let report = fleet
        .rollout(&gen.patch, RolloutPolicy::Rolling)
        .map_err(|e| e.to_string())?;
    fleet.drain(REQUESTS).map_err(|e| e.to_string())?;

    let tel = fleet.telemetry().expect("fleet started with telemetry");
    let timeline = tel.timeline();
    for (worker, r) in &report.applied {
        let row = timeline
            .iter()
            .find(|row| row.worker == Some(*worker) && row.committed)
            .unwrap_or_else(|| panic!("no committed journal row for worker {worker}"));
        assert_eq!(
            row.phase_total,
            r.timings.total(),
            "worker {worker}: journal phase sum != report total"
        );
    }
    for id in tel.journal().update_ids() {
        dsu_obs::journal::validate_lifecycle(&tel.journal().events_for(id))?;
    }

    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("fleet_amped.jsonl"), tel.journal().to_jsonl())?;
    std::fs::write(dir.join("fleet_amped.prom"), tel.scrape_text())?;
    std::fs::write(dir.join("fleet_amped.json"), tel.scrape_json())?;
    if let Some(path) = trace_out {
        let spans = tel.tracer().expect("tracing on").spans();
        dsu_obs::validate_spans(&spans).map_err(|e| format!("trace invariants: {e}"))?;
        std::fs::write(path, dsu_obs::to_chrome_trace(&spans))?;
        println!(
            "  wrote {} ({} spans; load it in Perfetto or chrome://tracing)",
            path,
            spans.len()
        );
    }

    println!("  {report}");
    let drains: Vec<String> = report
        .applied
        .iter()
        .map(|(w, r)| format!("w{w}={}", fmt_dur(r.timings.drain)))
        .collect();
    println!(
        "  drain (parked-read wait before bind) per worker: {}",
        drains.join(" ")
    );
    println!(
        "  journal: {} events, phase sums (drain included) match report timings exactly",
        tel.journal().len()
    );
    println!("  exported target/telemetry/fleet_amped.{{jsonl,prom,json}}\n");
    fleet.shutdown().map_err(|e| e.to_string())?;
    Ok(())
}

/// The largest gap between consecutive fleet-wide completions.
fn max_completion_gap(completions: &[Completion]) -> Duration {
    let mut ats: Vec<Duration> = completions.iter().map(|c| c.at).collect();
    ats.sort();
    ats.windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .unwrap_or(Duration::ZERO)
}

/// One rollout of the v3->v4 type-changing patch mid-traffic, with
/// telemetry on: the journal's per-patch phase sums are checked against
/// the rollout report's timings (they must match exactly — the journal
/// copies them), and the journal/metrics are exported for scraping.
fn rollout_once(policy: RolloutPolicy) -> Result<(), Box<dyn std::error::Error>> {
    let fs = SimFs::generate_fixed(FILES, DOC_SIZE, 3);
    let mut wl = Workload::new(fs.paths(), 1.0, 17);
    let gen = &patch_stream()?[2]; // v3 -> v4 (cache representation change)

    let tag = format!("{policy:?}").to_lowercase();
    let fleet = Fleet::start_telemetry(WORKERS, LinkMode::Updateable, &versions::v3(), "v3", &fs)
        .map_err(|e| e.to_string())?;
    // Warm up, then discard pre-rollout history.
    fleet.push_requests(wl.batch(200 * WORKERS));
    fleet.drain(200 * WORKERS).map_err(|e| e.to_string())?;
    fleet.shared().take_completions();

    fleet.push_requests(wl.batch(REQUESTS));
    let report = fleet
        .rollout(&gen.patch, policy.clone())
        .map_err(|e| e.to_string())?;
    fleet.drain(REQUESTS).map_err(|e| e.to_string())?;
    let completions = fleet.completions();

    // Did every worker pause at the same time (barrier) or staggered?
    let windows: Vec<(Instant, Instant)> = (0..fleet.worker_count())
        .filter_map(|i| {
            fleet
                .remote(i)
                .pauses()
                .last()
                .map(|p| (p.at, p.at + p.dur))
        })
        .collect();
    let overlap = windows.len() == fleet.worker_count()
        && windows.iter().map(|w| w.0).max() <= windows.iter().map(|w| w.1).min();

    // Cross-check the journal against the rollout report: every committed
    // lifecycle's phase sum equals that worker's report total, exactly.
    let tel = fleet.telemetry().expect("fleet started with telemetry");
    let timeline = tel.timeline();
    for (worker, r) in &report.applied {
        let row = timeline
            .iter()
            .find(|row| row.worker == Some(*worker) && row.committed)
            .unwrap_or_else(|| panic!("no committed journal row for worker {worker}"));
        assert_eq!(
            row.phase_total,
            r.timings.total(),
            "worker {worker}: journal phase sum != report total"
        );
    }
    for id in tel.journal().update_ids() {
        dsu_obs::journal::validate_lifecycle(&tel.journal().events_for(id))?;
    }
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    let journal_path = dir.join(format!("fleet_{tag}.jsonl"));
    let prom_path = dir.join(format!("fleet_{tag}.prom"));
    let json_path = dir.join(format!("fleet_{tag}.json"));
    std::fs::write(&journal_path, tel.journal().to_jsonl())?;
    std::fs::write(&prom_path, tel.scrape_text())?;
    std::fs::write(&json_path, tel.scrape_json())?;
    let skew = tel.version_skew();
    let journal_events = tel.journal().len();
    fleet.shutdown().map_err(|e| e.to_string())?;

    println!("{policy:?} rollout ({WORKERS} workers, {REQUESTS} requests in flight):");
    println!("  {report}");
    println!(
        "  completions: {} (all served); largest fleet-wide gap: {}; \
         all pause windows overlap: {}",
        completions.len(),
        fmt_dur(max_completion_gap(&completions)),
        if overlap {
            "yes (one synchronized fleet pause)"
        } else {
            "no (staggered pauses)"
        },
    );
    println!(
        "  journal: {journal_events} events, phase sums match report timings exactly; \
         version skew now {skew}"
    );
    println!(
        "  exported {} / {} / {}",
        journal_path.display(),
        prom_path.display(),
        json_path.display()
    );
    println!();
    Ok(())
}

fn rollouts() -> Result<(), Box<dyn std::error::Error>> {
    println!("Coordinated live update (v3 -> v4, state transformation over warm caches)\n");
    rollout_once(RolloutPolicy::Rolling)?;
    rollout_once(RolloutPolicy::Simultaneous)?;
    println!(
        "(expected shape: Rolling staggers the pauses — workers apply one at\n\
         a time, the fleet keeps completing requests throughout — while\n\
         Simultaneous lines every worker up behind a barrier: one synchronized\n\
         fleet-wide pause, visible in the aggregated max/mean pause. Same\n\
         patch, same total work; the policies trade version skew against a\n\
         full-fleet service gap.)"
    );
    Ok(())
}
