//! Attribution demo: who paid for the pause?
//!
//! Runs a guarded canary rollout (v1 -> v2) over an AMPED event-loop
//! fleet under open-loop load with causal tracing and the VM hot-path
//! profiler on, then joins the request spans against the update phase
//! spans into a per-update **stall report**: which requests were
//! delayed, by which phase, for how long — attributed vs. intrinsic
//! latency, p50/p99.
//!
//! Acceptance (enforced outside smoke mode): the per-request attributed
//! pause time sums to within 1% of the journal's pause+drain phase
//! totals — the trace and the journal tell the same story about where
//! the update's cost went. The span forest must also be invariant-clean
//! (`validate_spans`), and every journalled lifecycle well-formed.
//!
//! Artifacts land under `target/telemetry/`: the Chrome trace
//! (`stall_trace.json`, loadable in Perfetto / `chrome://tracing`), the
//! stall report (JSON + rendered text), and each worker's collapsed
//! VM profile (`vm_profile_w<N>.collapsed`, flamegraph-ready).
//!
//! Run with: `cargo run --release -p dsu-bench --bin stall_report`
//! (pass `smoke` for a fast CI-sized run that reports the
//! reconciliation gap but only enforces non-emptiness and invariants).

use std::time::Duration;

use dsu_obs::journal::validate_lifecycle;
use dsu_obs::{stall_report, to_chrome_trace, validate_spans, Stage};
use flashed::{
    versions, BreachAction, EventLoopConfig, Fleet, FleetConfig, PauseSlo, ServeMode,
    ServerTelemetry, SimFs, Workload,
};

const WORKERS: usize = 4;
const FILES: usize = 32;
const DOC_SIZE: usize = 1024;
/// Simulated device latency per read — keeps reads parked in the event
/// loop, so every pause has requests in flight to attribute to.
const READ_LATENCY: Duration = Duration::from_micros(300);
const THRESHOLD_PERCENT: f64 = 1.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "smoke");
    let requests = if smoke { 2500 } else { 6000 };

    let mut fs = SimFs::generate_fixed(FILES, DOC_SIZE, 3);
    fs.set_read_latency(READ_LATENCY);
    let mut wl = Workload::new(fs.paths(), 1.0, 17);

    let cfg = FleetConfig::new(WORKERS)
        .serve_mode(ServeMode::EventLoop(EventLoopConfig::default()))
        .with_tracing()
        .with_vm_profile();
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).map_err(|e| e.to_string())?;
    let worker_tels: Vec<ServerTelemetry> = (0..WORKERS)
        .map(|i| fleet.telemetry().expect("telemetry on").worker(i).clone())
        .collect();

    println!(
        "Stall attribution: guarded rollout (v1 -> v2, canary 0) over a {WORKERS}-worker\n\
         AMPED fleet, {requests} open-loop requests, {READ_LATENCY:?} device latency{}\n",
        if smoke { " (smoke mode)" } else { "" }
    );

    // Open loop: the whole burst is queued before the rollout starts, so
    // the in-flight window stays saturated through every pause.
    fleet.push_requests(wl.batch(requests));
    let (report, card) = fleet
        .rollout_guarded(
            &flashed::patch_stream()?[0].patch,
            0,
            PauseSlo::p99(Duration::from_millis(500)),
            BreachAction::Hold,
        )
        .map_err(|e| e.to_string())?;
    assert_eq!(report.applied.len(), WORKERS, "every worker applied");
    assert!(card.converged(), "{:?}", card.final_versions);
    fleet.drain(requests).map_err(|e| e.to_string())?;

    let tel = fleet.telemetry().expect("telemetry on");
    let tracer = tel.tracer().expect("tracing on").clone();
    let journal = tel.journal().clone();
    fleet.shutdown().map_err(|e| e.to_string())?;

    // Invariants first: the whole span forest must be well-formed, and
    // so must every journalled lifecycle.
    let spans = tracer.spans();
    validate_spans(&spans).map_err(|e| format!("trace invariants: {e}"))?;
    for id in journal.update_ids() {
        validate_lifecycle(&journal.events_for(id))?;
    }

    let stalls = stall_report(&spans);
    assert!(!stalls.updates.is_empty(), "stall report has update rows");
    assert!(stalls.requests_seen > 0, "request spans were sampled");
    assert!(
        stalls.requests_delayed > 0,
        "some requests overlapped a pause"
    );
    println!("{}", stalls.render());

    // Reconciliation: the trace's attributed pause time vs. the
    // journal's pause+drain phase totals (the same `PhaseTimings`, via
    // two independent paths).
    let journal_total: Duration = journal
        .events()
        .iter()
        .filter(|e| e.stage == Stage::Drain || Stage::PHASES.contains(&e.stage))
        .filter_map(|e| e.dur)
        .sum();
    let attributed = stalls.attributed_total;
    let gap_pct = if journal_total > Duration::ZERO {
        100.0 * (journal_total.as_secs_f64() - attributed.as_secs_f64()).abs()
            / journal_total.as_secs_f64()
    } else {
        0.0
    };
    println!(
        "reconciliation: attributed {:.3}ms vs journal pause+drain {:.3}ms (gap {gap_pct:.2}%, budget {THRESHOLD_PERCENT}%)",
        attributed.as_secs_f64() * 1e3,
        journal_total.as_secs_f64() * 1e3,
    );

    // Artifacts: Chrome trace, stall report (JSON + text), VM profiles.
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("stall_trace.json"), to_chrome_trace(&spans))?;
    std::fs::write(dir.join("stall_report.json"), stalls.to_json())?;
    std::fs::write(dir.join("stall_report.txt"), stalls.render())?;
    let mut profiled = 0;
    for (i, t) in worker_tels.iter().enumerate() {
        if let Some(p) = t.vm_profile() {
            std::fs::write(dir.join(format!("vm_profile_w{i}.collapsed")), p)?;
            profiled += 1;
        }
    }
    assert_eq!(profiled, WORKERS, "every worker published a VM profile");
    println!(
        "exported target/telemetry/stall_{{trace.json,report.json,report.txt}} \
         and {profiled} collapsed VM profiles ({} spans)",
        spans.len()
    );

    if smoke {
        println!("smoke mode: reconciliation reported, not enforced");
    } else if gap_pct < THRESHOLD_PERCENT {
        println!("PASS: attributed pause within {THRESHOLD_PERCENT}% of journal totals");
    } else {
        println!("FAIL: attribution gap {gap_pct:.2}% above {THRESHOLD_PERCENT}%");
        std::process::exit(1);
    }
    Ok(())
}
