//! Staged-cohort orchestration across shard fleets: cohort pauses, skew
//! exposure, and chain rollback under breach.
//!
//! Drives a 3-fleet × 4-worker topology (12 workers, one shared
//! write-ahead journal) through [`RolloutPlan::staged`] twice:
//!
//! 1. **Healthy staged rollout** — v1 -> v2 through 1 worker -> 25% ->
//!    100% cohorts with a soak window between them. Measures each
//!    cohort's pooled pause at the p99 SLO quantile, its wall-clock, and
//!    the cross-fleet mixed-version exposure window.
//! 2. **Breach -> chain rollback** — the fleet first takes v1 -> v2
//!    ungated, then a staged v2 -> v3 rollout meets an 8 ms injected
//!    pause fault in the 25% cohort against a 2 ms p99 budget. The
//!    reaction is [`BreachAction::ChainRollBack`] to v1: the three v3
//!    workers walk two snapshot hops each, the nine v2 workers one —
//!    fifteen restores converging the whole topology on v1 under a
//!    cross-fleet skew bound of 2.
//!
//! Both runs validate every journal lifecycle; the second recovers the
//! write-ahead journal from disk afterwards, proving the persisted
//! stream reconstructs the run (EXPERIMENTS R2).
//!
//! Artifacts (CI's orchestrator-smoke job uploads these):
//! `target/telemetry/orchestrator_report.json` — the breach run's merged
//! report; `target/telemetry/orchestrator_journal.jsonl` — its journal,
//! re-serialized after a `Journal::recover` round trip from the WAL.
//!
//! Run with: `cargo run --release -p dsu-bench --bin orchestrator_bench`

use std::time::Duration;

use dsu_bench::measure::fmt_dur;
use dsu_obs::Journal;
use flashed::{
    patch_stream, versions, BreachAction, FaultPlan, Fleet, FleetConfig, HealthBreach,
    Orchestrator, PauseSlo, RolloutOutcome, RolloutPlan, SimFs, WorkerOverride, Workload,
};

const SHARDS: usize = 3;
const PER_SHARD: usize = 4;
const REQUESTS: usize = 200; // per shard, per rollout
const FILES: usize = 16;
const DOC_SIZE: usize = 256;

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(FILES, DOC_SIZE, 7);
    let wl = Workload::new(fs.paths(), 1.0, 53);
    (fs, wl)
}

/// Boots the shard fleets over one shared journal, global worker ids.
fn topology(
    fs: &SimFs,
    journal: &Journal,
    fault: Option<(usize, usize)>, // (shard, local worker): 8 ms pause fault
) -> Result<Vec<Fleet>, String> {
    (0..SHARDS)
        .map(|s| {
            let mut cfg = FleetConfig::new(PER_SHARD)
                .with_journal(journal.clone())
                .worker_base(s * PER_SHARD);
            if fault == Some((s, 1)) {
                cfg = cfg.override_worker(
                    1,
                    WorkerOverride {
                        fault: FaultPlan {
                            pause_delay: Some(Duration::from_millis(8)),
                            ..FaultPlan::default()
                        },
                        ..WorkerOverride::default()
                    },
                );
            }
            Fleet::start_cfg(&cfg, &versions::v1(), "v1", fs).map_err(|e| e.to_string())
        })
        .collect()
}

fn validate_journal(journal: &Journal) -> Result<(), Box<dyn std::error::Error>> {
    for id in journal.update_ids() {
        dsu_obs::journal::validate_lifecycle(&journal.events_for(id))?;
    }
    Ok(())
}

fn print_cohorts(report: &flashed::OrchestratorReport) {
    println!("  cohort  workers                       pause@p99   wall-clock");
    for c in &report.cohorts {
        let workers = c
            .workers
            .iter()
            .map(|w| format!("w{w}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  {:>6}  {:<28}  {:>9}  {:>10}{}",
            c.index,
            workers,
            c.pause_at_quantile
                .map(fmt_dur)
                .unwrap_or_else(|| "-".into()),
            fmt_dur(c.dur),
            if c.soaked { "  +soak" } else { "" },
        );
    }
    println!(
        "  skew: peak {}, mixed-version window {}",
        report.max_skew,
        fmt_dur(report.skew_window)
    );
}

/// A clean staged rollout: three cohorts, every step gated and passing.
fn staged_healthy() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Staged rollout, healthy topology ({SHARDS} fleets x {PER_SHARD} workers, \
         v1 -> v2, 1 -> 25% -> 100%)\n"
    );
    let (fs, mut wl) = fixture();
    let journal = Journal::new();
    let fleets = topology(&fs, &journal, None)?;
    for f in &fleets {
        f.push_requests(wl.batch(REQUESTS));
    }

    let plan = RolloutPlan::staged(
        0,
        PauseSlo::p99(Duration::from_millis(50)),
        BreachAction::Hold,
    )
    .with_soak(Duration::from_millis(5));
    let orch = Orchestrator::new(&fleets).skew_bound(1);
    let report = orch
        .rollout(&patch_stream()?[0].patch, &plan)
        .map_err(|e| e.to_string())?;
    for f in &fleets {
        f.drain(REQUESTS).map_err(|e| e.to_string())?;
    }

    assert!(matches!(report.card.outcome, RolloutOutcome::Completed));
    assert!(report.card.final_versions.iter().all(|v| v == "v2"));
    validate_journal(&journal)?;
    print_cohorts(&report);
    println!();
    for f in fleets {
        f.shutdown().map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// The self-healing path at orchestrator scale: a 25%-cohort breach
/// walks the whole topology's rollback chains down to v1.
fn breach_chain_rollback() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Staged rollout, faulted 25% cohort ({SHARDS} fleets x {PER_SHARD} workers, \
         v2 -> v3, 8 ms injected pause vs 2 ms p99 budget, chain rollback to v1)\n"
    );
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    let wal = dir.join("orchestrator_wal.jsonl");

    let (fs, mut wl) = fixture();
    let journal = Journal::with_wal(&wal)?;
    let fleets = topology(&fs, &journal, Some((0, 1)))?;
    let stream = patch_stream()?;
    let orch = Orchestrator::new(&fleets).skew_bound(2);

    // Seed every snapshot ring with one hop: v1 -> v2, ungated.
    for f in &fleets {
        f.push_requests(wl.batch(REQUESTS));
    }
    orch.rollout(&stream[0].patch, &RolloutPlan::simultaneous())
        .map_err(|e| e.to_string())?;

    // Staged v2 -> v3: canary passes, global worker 1 breaches the gate.
    for f in &fleets {
        f.push_requests(wl.batch(REQUESTS));
    }
    let report = orch
        .rollout(
            &stream[1].patch,
            &RolloutPlan::staged(
                0,
                PauseSlo::p99(Duration::from_millis(2)),
                BreachAction::ChainRollBack {
                    to_version: "v1".to_string(),
                },
            ),
        )
        .map_err(|e| e.to_string())?;
    for f in &fleets {
        f.drain(2 * REQUESTS).map_err(|e| e.to_string())?;
    }

    assert!(
        matches!(
            report.card.outcome,
            RolloutOutcome::RolledBack(HealthBreach::PauseSlo { worker: 1, .. })
        ),
        "expected a pause-SLO chain rollback, got {:?}",
        report.card.outcome
    );
    assert_eq!(report.card.rollbacks.len(), 15, "3×2 + 9×1 restore hops");
    assert!(report.card.final_versions.iter().all(|v| v == "v1"));
    assert!(report.max_skew <= 2);
    print!("{}", report.render());

    // R2: what the rollback chain cost, per hop and end to end.
    let hop_total: Duration = report
        .card
        .rollbacks
        .iter()
        .map(|(_, r)| r.timings.total())
        .sum();
    println!("\n  R2: chain rollback (15 restore hops across 3 fleets)");
    print_cohorts(&report);
    println!(
        "  restores: {} hops, pipeline total {}, mean {}/hop",
        report.card.rollbacks.len(),
        fmt_dur(hop_total),
        fmt_dur(hop_total / report.card.rollbacks.len() as u32),
    );

    // The WAL round trip: everything the run journaled survives recovery.
    let recovered = Journal::recover(&wal).map_err(|e| e.to_string())?;
    assert_eq!(recovered.len(), journal.len(), "WAL lost events");
    validate_journal(&recovered)?;

    std::fs::write(dir.join("orchestrator_report.json"), report.to_json())?;
    std::fs::write(dir.join("orchestrator_journal.jsonl"), recovered.to_jsonl())?;
    println!(
        "\n  exported target/telemetry/orchestrator_report.json and \
         orchestrator_journal.jsonl ({} events, recovered from the WAL)\n",
        recovered.len()
    );
    for f in fleets {
        f.shutdown().map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    staged_healthy()?;
    breach_chain_rollback()?;
    Ok(())
}
