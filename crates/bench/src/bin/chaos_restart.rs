//! Worker supervision under injected crashes: restart anatomy and
//! request-loss accounting during a failover under load.
//!
//! Two measurements:
//!
//! 1. **Restart anatomy** — a supervised fleet walks two forward
//!    rollouts (so every worker carries a two-hop replay chain), then a
//!    rotating victim is killed N times. Each cycle reports the
//!    supervisor's phase timings: detect (death noticed → reaped,
//!    failed over, patches withdrawn), reboot (backoff + compile/link
//!    boot), replay (re-applying the persisted chain + installing the
//!    saved snapshot ring). Acceptance: every restart lands back on the
//!    pre-crash version and completes within the bound.
//! 2. **Failover under load** — closed-loop clients sized for roughly
//!    70% of the fleet's measured capacity hold traffic through the
//!    routed edge while one worker is killed mid-stream. The generator
//!    only returns once every admitted request's completion (and every
//!    shed's synthesized 503) is observed, so the run *finishing* is
//!    the zero-loss proof; a watchdog turns a lost request into a loud
//!    failure instead of a hang. Acceptance: no requests lost, the
//!    death failed over exactly once, and the dead worker's queued
//!    requests were rerouted, not dropped.
//!
//! Run with: `cargo run --release -p dsu-bench --bin chaos_restart`
//! (pass `--quick` for the smaller CI smoke shape: fewer workers,
//! fewer kill cycles, less load)

use std::time::{Duration, Instant};

use dsu_bench::loadgen::ClosedLoop;
use dsu_bench::measure::{fmt_dur, row, rule};
use flashed::{
    patch_stream, versions, CrashPoint, EdgeConfig, FaultPlan, Fleet, FleetConfig, RestartReport,
    RolloutPolicy, RoutePolicy, SimFs, SupervisorConfig, Workload,
};

const FILES: usize = 64;
const DOC_SIZE: usize = 256;
/// Simulated device latency per read: with the blocking serve mode this
/// sets the service time, so capacity is `workers / READ_LATENCY` and
/// the closed-loop window maps onto a load fraction by Little's law.
const READ_LATENCY: Duration = Duration::from_millis(1);
/// Per-restart wall-clock bound (detect → serving again). Generous: a
/// debug-build compile-heavy reboot stays well under it.
const RESTART_BOUND: Duration = Duration::from_secs(2);

/// Full-run vs `--quick` (CI smoke) shape.
struct Shape {
    workers: usize,
    /// Kill/restart cycles in the anatomy measurement.
    cycles: usize,
    /// Calibration batch for the load measurement.
    calibrate: usize,
    /// Closed-loop requests pushed through the failover window.
    load_requests: usize,
}

const FULL: Shape = Shape {
    workers: 4,
    cycles: 6,
    calibrate: 3000,
    load_requests: 2500,
};

const QUICK: Shape = Shape {
    workers: 3,
    cycles: 2,
    calibrate: 800,
    load_requests: 600,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let shape = if quick { QUICK } else { FULL };
    let cycles = restart_anatomy(&shape)?;
    let load = failover_under_load(&shape)?;

    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("chaos_restart.json"),
        to_json(&shape, &cycles, &load),
    )?;
    println!("exported target/telemetry/chaos_restart.json");
    Ok(())
}

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(FILES, DOC_SIZE, 5).with_read_latency(READ_LATENCY);
    let wl = Workload::new(fs.paths(), 1.0, 17);
    (fs, wl)
}

fn supervised(workers: usize) -> FleetConfig {
    FleetConfig::new(workers)
        .with_supervision(SupervisorConfig {
            max_restarts: 64,
            ..SupervisorConfig::default()
        })
        .with_telemetry()
}

/// Arms a serving-seam crash on `victim` and blocks until the
/// supervisor's respawn bumps its epoch, then returns the restart report
/// that respawn logged.
fn kill_and_await(fleet: &Fleet, victim: usize) -> RestartReport {
    let epoch0 = fleet.worker_epoch(victim);
    let logged0 = fleet.restart_reports().len();
    fleet.inject_worker_fault(
        victim,
        FaultPlan {
            crash_at: Some(CrashPoint::Serving),
            ..FaultPlan::default()
        },
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    while fleet.worker_epoch(victim) == epoch0 || fleet.restart_reports().len() == logged0 {
        assert!(
            Instant::now() < deadline,
            "supervised restart of worker {victim} never completed"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    let report = fleet.restart_reports().pop().expect("a restart was logged");
    assert_eq!(report.worker, victim, "restart attributed to the victim");
    report
}

/// Measurement 1: N kill/restart cycles on a rotating victim, each
/// recovering a two-hop replay chain.
fn restart_anatomy(shape: &Shape) -> Result<Vec<RestartReport>, Box<dyn std::error::Error>> {
    let (fs, mut wl) = fixture();
    let fleet = Fleet::start_cfg(&supervised(shape.workers), &versions::v1(), "v1", &fs)
        .map_err(|e| e.to_string())?;

    // Two forward hops so every restart replays a real chain (v1 -> v2
    // -> v3) instead of rebooting into the boot version.
    let stream = patch_stream()?;
    fleet.push_requests(wl.batch(60));
    fleet
        .rollout(&stream[0].patch, RolloutPolicy::Rolling)
        .map_err(|e| e.to_string())?;
    fleet
        .rollout(&stream[1].patch, RolloutPolicy::Rolling)
        .map_err(|e| e.to_string())?;
    fleet.drain(60).map_err(|e| e.to_string())?;

    println!(
        "Restart anatomy: {} workers, {} kill/restart cycles, two-hop replay chain\n",
        shape.workers, shape.cycles
    );
    let widths = [7, 8, 10, 10, 10, 10, 12];
    row(
        &[
            "cycle",
            "worker",
            "detect",
            "reboot",
            "replay",
            "total",
            "replayed to",
        ],
        &widths,
    );
    rule(&widths);

    let mut cycles = Vec::with_capacity(shape.cycles);
    for c in 0..shape.cycles {
        let victim = c % shape.workers;
        let report = kill_and_await(&fleet, victim);
        assert_eq!(
            report.replayed_to, "v3",
            "cycle {c}: replay must recover the pre-crash version"
        );
        assert!(
            report.total < RESTART_BOUND,
            "cycle {c}: restart took {:?}, bound {RESTART_BOUND:?}",
            report.total
        );
        row(
            &[
                &c.to_string(),
                &victim.to_string(),
                &fmt_dur(report.detect),
                &fmt_dur(report.reboot),
                &fmt_dur(report.replay),
                &fmt_dur(report.total),
                &report.replayed_to,
            ],
            &widths,
        );
        cycles.push(report);
    }

    // The fleet serves correctly after the whole gauntlet: v3 responses
    // carry the Content-Type header v1's guest never emits.
    let before = fleet.completions().len();
    fleet.push_requests(wl.batch(40));
    fleet.drain(before + 40).map_err(|e| e.to_string())?;
    let done = fleet.completions();
    assert!(
        done[before..]
            .iter()
            .all(|c| c.response.contains("Content-Type:")),
        "post-gauntlet responses must come from the recovered v3"
    );

    let mean = |f: fn(&RestartReport) -> Duration| -> Duration {
        cycles.iter().map(f).sum::<Duration>() / u32::try_from(cycles.len()).expect("bounded")
    };
    let max_total = cycles.iter().map(|r| r.total).max().unwrap_or_default();
    println!(
        "\n  mean: detect {} reboot {} replay {} total {}; worst total {} (bound {})\n",
        fmt_dur(mean(|r| r.detect)),
        fmt_dur(mean(|r| r.reboot)),
        fmt_dur(mean(|r| r.replay)),
        fmt_dur(mean(|r| r.total)),
        fmt_dur(max_total),
        fmt_dur(RESTART_BOUND),
    );
    fleet.shutdown().map_err(|e| e.to_string())?;
    Ok(cycles)
}

struct LoadPhase {
    capacity_rps: f64,
    achieved_rps: f64,
    clients: usize,
    offered: usize,
    admitted: usize,
    shed: usize,
    completions: usize,
    rerouted: usize,
    failovers: u64,
    restart: RestartReport,
}

/// Measurement 2: closed-loop clients hold ~70% of measured capacity
/// through the routed edge while one worker dies and is restarted.
fn failover_under_load(shape: &Shape) -> Result<LoadPhase, Box<dyn std::error::Error>> {
    let (fs, mut wl) = fixture();
    let cfg = supervised(shape.workers).with_edge(
        EdgeConfig::new(RoutePolicy::ConsistentHash)
            .queue_capacity(4096)
            .shed_responses(true),
    );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).map_err(|e| e.to_string())?;
    let edge = fleet.edge().expect("routed fleet has an edge").clone();

    // Calibrate this fleet's capacity, then size the closed-loop window
    // for ~70% of it: each worker serves one request at a time, so by
    // Little's law the in-flight window is the load fraction times the
    // worker count.
    let t0 = Instant::now();
    fleet.push_requests(wl.batch(shape.calibrate));
    fleet.drain(shape.calibrate).map_err(|e| e.to_string())?;
    let capacity_rps = shape.calibrate as f64 / t0.elapsed().as_secs_f64();
    fleet.shared().take_completions();

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let clients = ((0.7 * shape.workers as f64).round() as usize).max(2);
    println!(
        "Failover under load: {} workers, {} closed-loop clients (~70% of {capacity_rps:.0} req/s),\n\
         {} requests, worker {} killed mid-stream\n",
        shape.workers,
        clients,
        shape.load_requests,
        shape.workers - 1
    );

    let shared = fleet.shared();
    let gen_thread = {
        let edge = std::sync::Arc::clone(&edge);
        let shared = shared.clone();
        let texts = wl.batch(2048);
        let requests = shape.load_requests;
        std::thread::spawn(move || {
            let mut next = texts.iter().cycle().cloned();
            ClosedLoop {
                clients,
                requests,
                backoff: Duration::from_micros(500),
                backoff_cap: Duration::from_millis(10),
                seed: 31,
            }
            .run(&edge, &shared, || next.next().expect("cycled"))
        })
    };

    // Let the window fill, then kill the last worker (a consistent-hash
    // ring member with real vnode ownership) under live traffic.
    std::thread::sleep(Duration::from_millis(5));
    let restart = kill_and_await(&fleet, shape.workers - 1);

    // The generator returns only when every admitted request's
    // completion — and every shed's synthesized 503 — arrived. A lost
    // request would hang it; the watchdog makes that a failure, not a
    // wedge.
    let watchdog = Instant::now() + Duration::from_secs(120);
    let report = loop {
        if gen_thread.is_finished() {
            break gen_thread.join().expect("generator thread panicked");
        }
        assert!(
            Instant::now() < watchdog,
            "closed loop never drained: a request was lost in the failover"
        );
        std::thread::sleep(Duration::from_millis(1));
    };
    let completions = shared.completions_len();
    let lost = (report.admitted + report.shed).saturating_sub(completions);
    assert_eq!(lost, 0, "every admitted request must complete");
    assert_eq!(edge.failovers(), 1, "exactly one down transition");
    let achieved_rps = report.offered as f64 / report.elapsed.as_secs_f64();

    println!(
        "  offered {} ({achieved_rps:.0} req/s, {:.0}% of capacity), admitted {}, shed-retried {}",
        report.offered,
        100.0 * achieved_rps / capacity_rps,
        report.admitted,
        report.shed
    );
    println!(
        "  restart: detect {} reboot {} replay {} total {}; {} queued requests rerouted, 0 lost\n",
        fmt_dur(restart.detect),
        fmt_dur(restart.reboot),
        fmt_dur(restart.replay),
        fmt_dur(restart.total),
        restart.rerouted,
    );

    let phase = LoadPhase {
        capacity_rps,
        achieved_rps,
        clients,
        offered: report.offered,
        admitted: report.admitted,
        shed: report.shed,
        completions,
        rerouted: restart.rerouted,
        failovers: edge.failovers(),
        restart,
    };
    fleet.shutdown().map_err(|e| e.to_string())?;
    Ok(phase)
}

fn restart_json(r: &RestartReport) -> String {
    format!(
        "{{\"worker\":{},\"detect_us\":{},\"reboot_us\":{},\"replay_us\":{},\
         \"total_us\":{},\"replayed_to\":\"{}\",\"rerouted\":{}}}",
        r.worker,
        r.detect.as_micros(),
        r.reboot.as_micros(),
        r.replay.as_micros(),
        r.total.as_micros(),
        r.replayed_to,
        r.rerouted,
    )
}

fn to_json(shape: &Shape, cycles: &[RestartReport], load: &LoadPhase) -> String {
    let cycle_rows: Vec<String> = cycles.iter().map(restart_json).collect();
    format!(
        "{{\"workers\":{},\"cycles\":[{}],\
         \"failover_under_load\":{{\"capacity_rps\":{:.1},\"achieved_rps\":{:.1},\
         \"clients\":{},\"offered\":{},\"admitted\":{},\"shed\":{},\"completions\":{},\
         \"lost\":0,\"rerouted\":{},\"failovers\":{},\"restart\":{}}}}}",
        shape.workers,
        cycle_rows.join(","),
        load.capacity_rps,
        load.achieved_rps,
        load.clients,
        load.offered,
        load.admitted,
        load.shed,
        load.completions,
        load.rerouted,
        load.failovers,
        restart_json(&load.restart),
    )
}
