//! Ablation — design-choice experiments called out in DESIGN.md.
//!
//! 1. **Verification on/off**: verification's share of the update pause
//!    (the price of the "nothing unverified is ever linked" guarantee).
//! 2. **Activeness policy**: paper semantics (old frames finish under old
//!    code) vs Ginseng-style strict refusal, measured as how many of the
//!    FlashEd patches remain applicable while `serve` is live.
//! 3. **Transformer staging**: cost of the staged (atomic) commit vs
//!    state size, isolating the eager-transform design point.
//! 4. **Eager vs lazy transformation**: update pause, first-read latency
//!    and steady-state read cost of the two designs — the central
//!    trade-off between this paper's eager model and later lazy systems
//!    (Javelus, Ginseng's lazy types).
//!
//! Run with: `cargo run --release -p dsu-bench --bin ablation_policies`

use std::time::Instant;

use dsu_bench::measure::{fmt_dur, row, rule};
use dsu_core::{apply_patch, PatchGen, TransformTiming, UpdatePolicy};
use flashed::{patch_stream, versions, Server, SimFs, Workload};
use vm::{LinkMode, Process, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    verification_share()?;
    activeness_policies()?;
    transformer_scaling()?;
    eager_vs_lazy()?;
    Ok(())
}

fn warmed_server(version_idx: usize) -> Result<Server, Box<dyn std::error::Error>> {
    let all = versions::all();
    let (name, src) = &all[version_idx];
    let fs = SimFs::generate_fixed(32, 1024, 5);
    let mut wl = Workload::new(fs.paths(), 1.0, 100);
    let mut server = Server::start(LinkMode::Updateable, src, name, fs)?;
    server.push_requests(wl.batch(200));
    server.serve().map_err(|e| e.to_string())?;
    Ok(server)
}

fn verification_share() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation 1: patch verification share of the update pause\n");
    let widths = [8, 12, 12, 9];
    row(&["patch", "verified", "unverified", "share"], &widths);
    rule(&widths);
    for (i, gen) in patch_stream()?.iter().enumerate() {
        let mut with = std::time::Duration::ZERO;
        let mut without = std::time::Duration::ZERO;
        const REPS: usize = 15;
        for _ in 0..REPS {
            let mut s = warmed_server(i)?;
            let r = apply_patch(
                s.process_mut(),
                &gen.patch,
                UpdatePolicy {
                    verify: true,
                    refuse_active: false,
                    ..UpdatePolicy::default()
                },
            )?;
            with += r.timings.total();
            let mut s = warmed_server(i)?;
            let r = apply_patch(
                s.process_mut(),
                &gen.patch,
                UpdatePolicy {
                    verify: false,
                    refuse_active: false,
                    ..UpdatePolicy::default()
                },
            )?;
            without += r.timings.total();
        }
        let share = 1.0 - without.as_secs_f64() / with.as_secs_f64();
        row(
            &[
                &format!("{}->{}", gen.patch.from_version, gen.patch.to_version),
                &fmt_dur(with / REPS as u32),
                &fmt_dur(without / REPS as u32),
                &format!("{:.0}%", share * 100.0),
            ],
            &widths,
        );
    }
    println!();
    Ok(())
}

fn activeness_policies() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation 2: activeness policy — mid-traffic applicability\n");
    let all = versions::all();
    let stream = patch_stream()?;
    for refuse_active in [false, true] {
        let mut applied = 0;
        let mut refused = 0;
        // The four development patches: none replaces the suspended
        // `serve` function itself.
        for (i, gen) in stream.iter().enumerate() {
            let (name, src) = &all[i];
            if run_mid_traffic(src, name, gen.patch.clone(), refuse_active)? {
                applied += 1;
            } else {
                refused += 1;
            }
        }
        // A fifth patch that DOES replace the live `serve` loop.
        let serve_patch = serve_replacing_patch()?;
        if run_mid_traffic(&all[4].1, "v5", serve_patch, refuse_active)? {
            applied += 1;
        } else {
            refused += 1;
        }
        println!(
            "  refuse_active = {refuse_active:<5} -> {applied} applied, {refused} refused \
             (4 handler patches + 1 patch replacing the live `serve` loop)"
        );
    }
    println!(
        "\n(only the patch touching the suspended `serve` frame separates the\n\
         policies: the paper's semantics applies it — the in-flight loop\n\
         iteration finishes under old code — while strict Ginseng-style\n\
         refusal rejects it; the compat rules refuse the genuinely unsafe\n\
         cases under both policies.)\n"
    );
    Ok(())
}

/// Runs one batch with `patch` queued mid-traffic; returns whether it
/// applied.
fn run_mid_traffic(
    src: &str,
    name: &str,
    patch: dsu_core::Patch,
    refuse_active: bool,
) -> Result<bool, Box<dyn std::error::Error>> {
    let fs = SimFs::generate_fixed(16, 512, 5);
    let mut wl = Workload::new(fs.paths(), 1.0, 9);
    let mut server = Server::start(LinkMode::Updateable, src, name, fs)?;
    server.updater = dsu_core::Updater::with_policy(UpdatePolicy {
        verify: true,
        refuse_active,
        ..UpdatePolicy::default()
    });
    server.push_requests(wl.batch(50));
    server.queue_patch(patch);
    Ok(server.serve().is_ok())
}

/// A patch against v5 that replaces the `serve` loop itself (adding a
/// request budget), so the suspended frame is among the replaced code.
fn serve_replacing_patch() -> Result<dsu_core::Patch, Box<dyn std::error::Error>> {
    let fs = SimFs::generate_fixed(4, 128, 5);
    let probe = Server::start(LinkMode::Updateable, &versions::v5(), "v5", fs)?;
    let patch = dsu_core::compile_patch(
        r#"
        fun serve(): int {
            var served: int = 0;
            while (served < 100000) {
                var req: string = next_request();
                if (len(req) == 0) { break; }
                send_response(handle(req));
                served = served + 1;
                served_total = served_total + 1;
                update;
            }
            return served;
        }
        "#,
        "v5",
        "v6",
        &dsu_core::interface_of(probe.process()),
        dsu_core::Manifest {
            replaces: vec!["serve".into()],
            ..dsu_core::Manifest::default()
        },
    )?;
    Ok(patch)
}

fn transformer_scaling() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation 3: eager (staged) state transformation cost vs state size\n");
    let v1 = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun fill(n: int): int {
            var i: int = 0;
            while (i < n) { push(data, rec { id: i }); i = i + 1; }
            return len(data);
        }
    "#;
    let v2 = r#"
        struct rec { id: int, gen: int }
        global data: [rec] = new [rec];
        fun fill(n: int): int {
            var i: int = 0;
            while (i < n) { push(data, rec { id: i, gen: 0 }); i = i + 1; }
            return len(data);
        }
    "#;
    let gen = PatchGen::new().generate(v1, v2, "v1", "v2")?;
    let widths = [9, 12, 14];
    row(&["records", "xform", "heap after"], &widths);
    rule(&widths);
    for n in [1_000i64, 10_000, 50_000] {
        let module = popcorn::compile(v1, "abl", "v1", &popcorn::Interface::new())?;
        let mut proc = Process::new(LinkMode::Updateable);
        proc.load_module(&module)?;
        proc.call("fill", vec![Value::Int(n)])?;
        let report = apply_patch(&mut proc, &gen.patch, UpdatePolicy::default())?;
        row(
            &[
                &n.to_string(),
                &fmt_dur(report.timings.transform),
                &format!("{}B", report.heap_after),
            ],
            &widths,
        );
    }
    println!(
        "\n(the eager design pays the whole cost inside the pause; a lazy design\n\
         would amortise it over first accesses at the price of permanent\n\
         per-access checks — the trade-off discussed in the paper's related work)"
    );
    Ok(())
}

/// Ablation 4: eager (paper) vs lazy (Javelus-style) state transformation.
fn eager_vs_lazy() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "\nAblation 4: eager vs lazy state transformation ({} records)\n",
        50_000
    );
    let v1 = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun fill(n: int): int {
            var i: int = 0;
            while (i < n) { push(data, rec { id: i }); i = i + 1; }
            return len(data);
        }
        fun total(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(data)) { s = s + data[i].id; i = i + 1; }
            return s;
        }
    "#;
    let v2 = r#"
        struct rec { id: int, gen: int }
        global data: [rec] = new [rec];
        fun fill(n: int): int {
            var i: int = 0;
            while (i < n) { push(data, rec { id: i, gen: 0 }); i = i + 1; }
            return len(data);
        }
        fun total(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(data)) { s = s + data[i].id; i = i + 1; }
            return s;
        }
    "#;
    let gen = PatchGen::new().generate(v1, v2, "v1", "v2")?;
    let widths = [8, 13, 14, 14];
    row(
        &["mode", "update pause", "first read", "later reads"],
        &widths,
    );
    rule(&widths);
    for timing in [TransformTiming::Eager, TransformTiming::Lazy] {
        let module = popcorn::compile(v1, "abl", "v1", &popcorn::Interface::new())?;
        let mut proc = Process::new(LinkMode::Updateable);
        proc.load_module(&module)?;
        proc.call("fill", vec![Value::Int(50_000)])?;
        let report = apply_patch(
            &mut proc,
            &gen.patch,
            UpdatePolicy {
                transform: timing,
                ..UpdatePolicy::default()
            },
        )?;
        let t = Instant::now();
        proc.call("total", vec![])?;
        let first_read = t.elapsed();
        let t = Instant::now();
        for _ in 0..5 {
            proc.call("total", vec![])?;
        }
        let later = t.elapsed() / 5;
        row(
            &[
                &format!("{timing:?}"),
                &fmt_dur(report.timings.total()),
                &fmt_dur(first_read),
                &fmt_dur(later),
            ],
            &widths,
        );
    }
    println!(
        "\n(the lazy design moves the whole transformation cost out of the pause\n\
         and into the first access; steady-state reads converge once the\n\
         migration has run. The paper's eager design keeps failures confined\n\
         to the update — a lazy transformer that traps does so at some later\n\
         read, long after the update \"succeeded\".)"
    );
    Ok(())
}
