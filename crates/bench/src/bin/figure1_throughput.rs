//! Figure 1 — Flash vs FlashEd throughput across document sizes.
//!
//! The paper's server experiment: the same server code, linked statically
//! ("Flash", not updateable) and updateably ("FlashEd"), serving the same
//! workload. The updateable server should stay within a small margin of
//! the static one, shrinking as per-request work (document size) grows.
//!
//! A second table isolates the serve *architecture* on one updateable
//! server: blocking vs AMPED event loop across in-flight windows, on a
//! disk-bound workload — Flash's original argument, reproduced on the
//! updateable runtime.
//!
//! Run with: `cargo run --release -p dsu-bench --bin figure1_throughput`

use std::time::{Duration, Instant};

use dsu_bench::measure::{overhead_percent, row, rule, time_interleaved};
use flashed::{versions, EventLoopConfig, ServeMode, Server, ServerShared, SimFs, Workload};
use vm::LinkMode;

const REQUESTS: usize = 1500;
const FILES: usize = 32;
const REPS: usize = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    static_vs_updateable()?;
    blocking_vs_amped()?;
    Ok(())
}

fn static_vs_updateable() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Figure 1: throughput vs document size ({REQUESTS} requests, {FILES} files,\n\
         zipf(1.0), min of {REPS} interleaved runs)\n"
    );
    let widths = [10, 14, 14, 10];
    row(
        &["doc size", "static req/s", "updtbl req/s", "overhead"],
        &widths,
    );
    rule(&widths);

    for size in [256usize, 1024, 4096, 16384, 65536] {
        let fs = SimFs::generate_fixed(FILES, size, 3);
        // Identical request sequences for both servers.
        let mut wl_s = Workload::new(fs.paths(), 1.0, 17);
        let mut wl_u = Workload::new(fs.paths(), 1.0, 17);
        let mut flash = Server::start(LinkMode::Static, &versions::v2(), "v2", fs.clone())?;
        let mut flashed = Server::start(LinkMode::Updateable, &versions::v2(), "v2", fs)?;
        let (t_static, t_upd) = time_interleaved(
            REPS,
            || {
                flash.push_requests(wl_s.batch(REQUESTS));
                flash.serve().expect("serve");
                // Drain so repeated batches don't accumulate gigabytes.
                flash.take_completions();
            },
            || {
                flashed.push_requests(wl_u.batch(REQUESTS));
                flashed.serve().expect("serve");
                flashed.take_completions();
            },
        );
        row(
            &[
                &format!("{size}B"),
                &format!("{:.0}", REQUESTS as f64 / t_static.as_secs_f64()),
                &format!("{:.0}", REQUESTS as f64 / t_upd.as_secs_f64()),
                &format!("{:+.1}%", overhead_percent(t_static, t_upd)),
            ],
            &widths,
        );
    }
    println!(
        "\n(expected shape: updateable within a small percentage of static, the\n\
         gap narrowing as documents grow and per-request copying dominates\n\
         dispatch cost)\n"
    );
    Ok(())
}

/// One updateable server, disk-bound workload: the blocking loop pays
/// every device wait serially; the AMPED event loop overlaps them, with
/// throughput growing in the in-flight window until the helper pool
/// saturates.
fn blocking_vs_amped() -> Result<(), Box<dyn std::error::Error>> {
    const AMPED_REQUESTS: usize = 400;
    const LATENCY: Duration = Duration::from_micros(500);
    println!(
        "Figure 1b: serve architecture on one updateable server\n\
         ({AMPED_REQUESTS} requests, {FILES} files x 1024 B, {LATENCY:?} device latency per read)\n"
    );
    let widths = [22, 12, 12, 9];
    row(&["mode", "elapsed", "req/s", "speedup"], &widths);
    rule(&widths);

    let mut fs = SimFs::generate_fixed(FILES, 1024, 3);
    fs.set_read_latency(LATENCY);

    let run = |mode: ServeMode| -> Result<Duration, String> {
        let mut wl = Workload::new(fs.paths(), 1.0, 17);
        let mut server = Server::start_full(
            LinkMode::Updateable,
            mode,
            &versions::v1(),
            "v1",
            fs.clone(),
            ServerShared::new(),
            None,
        )
        .map_err(|e| e.to_string())?;
        let t0 = Instant::now();
        server.push_requests(wl.batch(AMPED_REQUESTS));
        server.serve().map_err(|e| e.to_string())?;
        Ok(t0.elapsed())
    };

    let blocking = run(ServeMode::Blocking)?;
    let base_rps = AMPED_REQUESTS as f64 / blocking.as_secs_f64();
    row(
        &[
            "blocking",
            &dsu_bench::measure::fmt_dur(blocking),
            &format!("{base_rps:.0}"),
            "1.00x",
        ],
        &widths,
    );
    for window in [2usize, 4, 8, 16] {
        let elapsed = run(ServeMode::EventLoop(EventLoopConfig {
            helpers: window,
            cache_entries: 256,
            max_in_flight: window,
        }))?;
        let rps = AMPED_REQUESTS as f64 / elapsed.as_secs_f64();
        row(
            &[
                &format!("amped (window {window})"),
                &dsu_bench::measure::fmt_dur(elapsed),
                &format!("{rps:.0}"),
                &format!("{:.2}x", rps / base_rps),
            ],
            &widths,
        );
    }
    println!(
        "\n(expected shape: throughput grows with the in-flight window while\n\
         device waits dominate, then flattens once the buffer cache absorbs\n\
         the popular documents)"
    );
    Ok(())
}
