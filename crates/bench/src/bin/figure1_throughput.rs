//! Figure 1 — Flash vs FlashEd throughput across document sizes.
//!
//! The paper's server experiment: the same server code, linked statically
//! ("Flash", not updateable) and updateably ("FlashEd"), serving the same
//! workload. The updateable server should stay within a small margin of
//! the static one, shrinking as per-request work (document size) grows.
//!
//! Run with: `cargo run --release -p dsu-bench --bin figure1_throughput`

use dsu_bench::measure::{overhead_percent, row, rule, time_interleaved};
use flashed::{versions, Server, SimFs, Workload};
use vm::LinkMode;

const REQUESTS: usize = 1500;
const FILES: usize = 32;
const REPS: usize = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Figure 1: throughput vs document size ({REQUESTS} requests, {FILES} files,\n\
         zipf(1.0), min of {REPS} interleaved runs)\n"
    );
    let widths = [10, 14, 14, 10];
    row(
        &["doc size", "static req/s", "updtbl req/s", "overhead"],
        &widths,
    );
    rule(&widths);

    for size in [256usize, 1024, 4096, 16384, 65536] {
        let fs = SimFs::generate_fixed(FILES, size, 3);
        // Identical request sequences for both servers.
        let mut wl_s = Workload::new(fs.paths(), 1.0, 17);
        let mut wl_u = Workload::new(fs.paths(), 1.0, 17);
        let mut flash = Server::start(LinkMode::Static, &versions::v2(), "v2", fs.clone())?;
        let mut flashed = Server::start(LinkMode::Updateable, &versions::v2(), "v2", fs)?;
        let (t_static, t_upd) = time_interleaved(
            REPS,
            || {
                flash.push_requests(wl_s.batch(REQUESTS));
                flash.serve().expect("serve");
                // Drain so repeated batches don't accumulate gigabytes.
                flash.take_completions();
            },
            || {
                flashed.push_requests(wl_u.batch(REQUESTS));
                flashed.serve().expect("serve");
                flashed.take_completions();
            },
        );
        row(
            &[
                &format!("{size}B"),
                &format!("{:.0}", REQUESTS as f64 / t_static.as_secs_f64()),
                &format!("{:.0}", REQUESTS as f64 / t_upd.as_secs_f64()),
                &format!("{:+.1}%", overhead_percent(t_static, t_upd)),
            ],
            &widths,
        );
    }
    println!(
        "\n(expected shape: updateable within a small percentage of static, the\n\
         gap narrowing as documents grow and per-request copying dominates\n\
         dispatch cost)"
    );
    Ok(())
}
