//! Figure 2 — throughput timeline across live updates.
//!
//! FlashEd serves a continuous request stream while the full patch stream
//! (v1→…→v5) is applied mid-traffic. Completions are bucketed over time;
//! update events are marked. The paper's shape: throughput dips only for
//! the duration of the update pause, with no residual degradation after —
//! the type-changing v3→v4 patch shows the largest pause (state
//! transformation).
//!
//! Run with: `cargo run --release -p dsu-bench --bin figure2_timeline`

use std::time::Duration;

use dsu_bench::measure::{fmt_dur, row, rule};
use flashed::{parse_response, patch_stream, versions, Server, SimFs, Workload};
use vm::LinkMode;

const BATCH: usize = 1200;
const BUCKET: Duration = Duration::from_millis(2);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = SimFs::generate_fixed(48, 2048, 9);
    let mut wl = Workload::new(fs.paths(), 1.0, 31);
    let mut server = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs)?;
    let stream = patch_stream()?;

    // Phase 0: v1 alone, then one batch per patch with the patch applying
    // at the first update point inside the batch.
    let mut update_marks: Vec<(Duration, String, Duration)> = Vec::new();
    server.push_requests(wl.batch(BATCH));
    server.serve().map_err(|e| e.to_string())?;
    for gen in stream {
        let label = format!("{}->{}", gen.patch.from_version, gen.patch.to_version);
        server.push_requests(wl.batch(BATCH));
        server.queue_patch(gen.patch);
        let before = server.elapsed();
        server.serve().map_err(|e| e.to_string())?;
        let pause = server
            .updater
            .log()
            .last()
            .expect("applied")
            .timings
            .total();
        update_marks.push((before, label, pause));
    }

    let completions = server.completions();
    let ok = completions
        .iter()
        .filter(|c| {
            parse_response(&c.response)
                .map(|r| r.status == 200)
                .unwrap_or(false)
        })
        .count();

    // Bucket completions.
    let end = completions.iter().map(|c| c.at).max().unwrap_or_default();
    let buckets = (end.as_nanos() / BUCKET.as_nanos() + 1) as usize;
    let mut counts = vec![0usize; buckets];
    for c in &completions {
        counts[(c.at.as_nanos() / BUCKET.as_nanos()) as usize] += 1;
    }

    println!(
        "Figure 2: completions per {} bucket, {} requests total ({} OK)\n",
        fmt_dur(BUCKET),
        completions.len(),
        ok
    );
    let widths = [10, 8];
    row(&["t", "req"], &widths);
    rule(&[10, 8, 44]);
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, n) in counts.iter().enumerate() {
        let t = BUCKET * i as u32;
        let bar = "#".repeat(n * 40 / max);
        let marks: Vec<String> = update_marks
            .iter()
            .filter(|(at, _, _)| *at >= t && *at < t + BUCKET)
            .map(|(_, label, pause)| format!("<- update {label} (pause {})", fmt_dur(*pause)))
            .collect();
        println!("{:>10}  {:>8}  {bar} {}", fmt_dur(t), n, marks.join(" "));
    }

    println!("\nupdate events:");
    for (at, label, pause) in &update_marks {
        println!(
            "  {label:8} at {:>9} pause {:>9}",
            fmt_dur(*at),
            fmt_dur(*pause)
        );
    }
    println!(
        "\n(expected shape: steady buckets before and after each mark; the pause\n\
         is orders of magnitude shorter than a stop/restart and there is no\n\
         residual post-update slowdown — unlike proxy-based DSU designs)"
    );
    Ok(())
}
