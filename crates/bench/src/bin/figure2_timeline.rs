//! Figure 2 — throughput timeline across live updates.
//!
//! FlashEd serves a continuous request stream while the full patch stream
//! (v1→…→v5) is applied mid-traffic. Completions are bucketed over time;
//! update events are marked. The paper's shape: throughput dips only for
//! the duration of the update pause, with no residual degradation after —
//! the type-changing v3→v4 patch shows the largest pause (state
//! transformation).
//!
//! Update marks are read out of the telemetry journal (one committed
//! lifecycle per patch) rather than the updater's report log, and
//! cross-checked against it.
//!
//! Run with: `cargo run --release -p dsu-bench --bin figure2_timeline`

use std::time::Duration;

use dsu_bench::measure::{fmt_dur, row, rule};
use dsu_obs::fleet::rollout_timeline;
use flashed::{
    parse_response, patch_stream, versions, Server, ServerShared, ServerTelemetry, SimFs, Workload,
};
use vm::LinkMode;

const BATCH: usize = 1200;
const BUCKET: Duration = Duration::from_millis(2);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = SimFs::generate_fixed(48, 2048, 9);
    let mut wl = Workload::new(fs.paths(), 1.0, 31);
    // Shared state and journal are created back-to-back, so completion
    // timestamps and journal offsets share an epoch (within microseconds)
    // and the journal's update marks land in the right buckets.
    let telemetry = ServerTelemetry::new();
    let mut server = Server::start_with(
        LinkMode::Updateable,
        &versions::v1(),
        "v1",
        fs,
        ServerShared::new(),
        Some(telemetry.clone()),
    )?;
    let stream = patch_stream()?;

    // Phase 0: v1 alone, then one batch per patch with the patch applying
    // at the first update point inside the batch.
    server.push_requests(wl.batch(BATCH));
    server.serve().map_err(|e| e.to_string())?;
    for gen in stream {
        server.push_requests(wl.batch(BATCH));
        server.queue_patch(gen.patch);
        server.serve().map_err(|e| e.to_string())?;
    }

    // The update marks come straight out of the lifecycle journal: one
    // committed row per patch, pause = its recorded phase sum (identical
    // to the updater's report timings by construction).
    let timeline = rollout_timeline(&telemetry.journal().events());
    let update_marks: Vec<(Duration, String, Duration)> = timeline
        .iter()
        .filter(|r| r.committed)
        .map(|r| {
            (
                r.enqueued_at,
                format!("{}->{}", r.from_version, r.to_version),
                r.phase_total,
            )
        })
        .collect();
    assert_eq!(update_marks.len(), 4, "all four patches committed");
    for (r, (_, _, pause)) in server.updater.log().iter().zip(&update_marks) {
        assert_eq!(r.timings.total(), *pause, "journal disagrees with report");
    }

    let completions = server.completions();
    let ok = completions
        .iter()
        .filter(|c| {
            parse_response(&c.response)
                .map(|r| r.status == 200)
                .unwrap_or(false)
        })
        .count();

    // Bucket completions.
    let end = completions.iter().map(|c| c.at).max().unwrap_or_default();
    let buckets = (end.as_nanos() / BUCKET.as_nanos() + 1) as usize;
    let mut counts = vec![0usize; buckets];
    for c in &completions {
        counts[(c.at.as_nanos() / BUCKET.as_nanos()) as usize] += 1;
    }

    println!(
        "Figure 2: completions per {} bucket, {} requests total ({} OK)\n",
        fmt_dur(BUCKET),
        completions.len(),
        ok
    );
    let widths = [10, 8];
    row(&["t", "req"], &widths);
    rule(&[10, 8, 44]);
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, n) in counts.iter().enumerate() {
        let t = BUCKET * i as u32;
        let bar = "#".repeat(n * 40 / max);
        let marks: Vec<String> = update_marks
            .iter()
            .filter(|(at, _, _)| *at >= t && *at < t + BUCKET)
            .map(|(_, label, pause)| format!("<- update {label} (pause {})", fmt_dur(*pause)))
            .collect();
        println!("{:>10}  {:>8}  {bar} {}", fmt_dur(t), n, marks.join(" "));
    }

    println!("\nupdate events:");
    for (at, label, pause) in &update_marks {
        println!(
            "  {label:8} at {:>9} pause {:>9}",
            fmt_dur(*at),
            fmt_dur(*pause)
        );
    }
    println!(
        "\n(expected shape: steady buckets before and after each mark; the pause\n\
         is orders of magnitude shorter than a stop/restart and there is no\n\
         residual post-update slowdown — unlike proxy-based DSU designs)"
    );
    Ok(())
}
