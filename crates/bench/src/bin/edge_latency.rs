//! Network-edge latency and throughput: sharded routed inboxes vs the
//! shared ingress queue, a routing-policy latency sweep under open-loop
//! load, and a staged guarded rollout under peak load.
//!
//! Three measurements:
//!
//! 1. **Shared vs routed throughput** — the same cache-affinity-bound
//!    AMPED workload (more distinct files than one worker's buffer cache
//!    holds, 1 ms simulated device latency per miss) pushed through the
//!    legacy shared queue and through a consistent-hash routed edge at
//!    `WORKERS` workers. The shared queue sprays every path across every
//!    worker, so each small cache thrashes over the full file set; the
//!    routed edge pins each path to one worker, whose cache then holds
//!    its shard. Acceptance: the routed edge must beat the shared queue.
//! 2. **Routing-policy sweep** — an open-loop generator (deterministic
//!    exponential inter-arrivals) offers fractions of the measured
//!    routed capacity against each [`RoutePolicy`]; exact sojourn
//!    percentiles (queue wait + service) per policy and rate, exported
//!    as JSON.
//! 3. **Rollout under load** — the v3 -> v4 type-changing patch rolled
//!    out with the canonical staged plan (canary → 25% → 100%, each
//!    cohort gated on a pause SLO) while the open-loop generator holds
//!    peak load. Acceptance: the rollout completes and converges, and
//!    p99 sojourn across the whole run holds the request-latency SLO.
//!    The report card and lifecycle journal export for the CI artifact.
//!
//! Run with: `cargo run --release -p dsu-bench --bin edge_latency`
//! (pass `--quick` for the smaller CI smoke shape: fewer workers,
//! fewer requests, one sweep rate)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsu_bench::loadgen::{sojourn_stats, GenReport, OpenLoop, SojournStats};
use dsu_bench::measure::{fmt_dur, row, rule};
use flashed::telemetry::names;
use flashed::{
    patch_stream, versions, BreachAction, EdgeConfig, EventLoopConfig, Fleet, FleetConfig,
    PauseSlo, RolloutOutcome, RolloutPlan, RoutePolicy, ServeMode, SimFs, Workload,
};

/// More distinct files than one worker's buffer cache holds: the regime
/// where routing for affinity pays.
const FILES: usize = 512;
const DOC_SIZE: usize = 512;
/// Per-worker buffer cache, in entries. Routed, each worker owns
/// `FILES / workers` paths and its cache covers them; shared, every
/// worker sees all `FILES` and thrashes.
const CACHE_ENTRIES: usize = 96;
/// Simulated device latency per (uncached) read.
const READ_LATENCY: Duration = Duration::from_millis(1);
/// Flatter-than-default Zipf so the head of the distribution does not
/// fit any single cache.
const ZIPF_ALPHA: f64 = 0.7;
/// Request-latency SLO asserted over the rollout-under-load run.
const SOJOURN_SLO_P99: Duration = Duration::from_millis(250);
/// Update-pause budget each staged cohort is gated on.
const PAUSE_SLO: PauseSlo = PauseSlo {
    quantile: 0.99,
    max: Duration::from_millis(250),
};

/// Full-run vs `--quick` (CI smoke) shape.
struct Shape {
    workers: usize,
    requests: usize,
    trials: usize,
    sweep_fractions: &'static [f64],
    sweep_requests: usize,
    rollout_min_requests: usize,
    quick: bool,
}

const FULL: Shape = Shape {
    workers: 8,
    requests: 6000,
    trials: 3,
    sweep_fractions: &[0.4, 0.7, 0.9],
    sweep_requests: 3000,
    rollout_min_requests: 4000,
    quick: false,
};

const QUICK: Shape = Shape {
    workers: 4,
    requests: 1500,
    trials: 2,
    sweep_fractions: &[0.6],
    sweep_requests: 800,
    rollout_min_requests: 1200,
    quick: true,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let shape = if quick { QUICK } else { FULL };
    let routed_rps = throughput(&shape)?;
    let sweep = sweep(&shape, routed_rps)?;
    rollout_under_load(&shape, routed_rps, &sweep)?;
    Ok(())
}

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(FILES, DOC_SIZE, 3).with_read_latency(READ_LATENCY);
    let wl = Workload::new(fs.paths(), ZIPF_ALPHA, 17);
    (fs, wl)
}

fn amped() -> ServeMode {
    // A narrow disk pipe: misses overlap only 4 deep, so the miss rate —
    // not raw CPU — governs throughput, and cache affinity shows up.
    ServeMode::EventLoop(EventLoopConfig {
        helpers: 2,
        cache_entries: CACHE_ENTRIES,
        max_in_flight: 4,
    })
}

/// Boots, warms (outside the timed region), times one full batch, and
/// returns requests/second. With an edge, asserts nothing was shed —
/// a shed 503 completes instantly and would flatter the routed number.
fn one_trial(shape: &Shape, edge: Option<EdgeConfig>) -> Result<f64, Box<dyn std::error::Error>> {
    let (fs, mut wl) = fixture();
    let mut cfg = FleetConfig::new(shape.workers).serve_mode(amped());
    let routed = edge.is_some();
    if let Some(ec) = edge {
        cfg = cfg.with_edge(ec);
    }
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).map_err(|e| e.to_string())?;
    // Warm every worker's buffer cache through the same routing the
    // timed region uses (push_requests feeds the acceptor on a routed
    // fleet, so consistent-hash warms exactly the right shards).
    let warm = 400 * shape.workers;
    fleet.push_requests(wl.batch(warm));
    fleet.drain(warm).map_err(|e| e.to_string())?;
    fleet.shared().take_completions();

    let t0 = Instant::now();
    fleet.push_requests(wl.batch(shape.requests));
    fleet.drain(shape.requests).map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    if routed {
        let shed = fleet.edge().expect("routed fleet has an edge").shed();
        assert_eq!(shed, 0, "throughput trial must not shed (got {shed})");
    }
    fleet.shutdown().map_err(|e| e.to_string())?;
    Ok(shape.requests as f64 / elapsed.as_secs_f64())
}

/// Measurement 1: shared queue vs consistent-hash routed edge.
/// Returns the routed capacity (req/s) the other measurements scale to.
fn throughput(shape: &Shape) -> Result<f64, Box<dyn std::error::Error>> {
    println!(
        "Shared queue vs routed edge: {} workers, {} requests, {FILES} files x {DOC_SIZE} B,\n\
         zipf({ZIPF_ALPHA}), per-worker cache {CACHE_ENTRIES} entries, {READ_LATENCY:?}/miss, \
         best of {} trials\n",
        shape.workers, shape.requests, shape.trials
    );
    let widths = [24, 12, 9];
    row(&["ingress", "req/s", "speedup"], &widths);
    rule(&widths);

    let best = |edge: fn() -> Option<EdgeConfig>| -> Result<f64, Box<dyn std::error::Error>> {
        let mut best = 0.0f64;
        for _ in 0..shape.trials {
            best = best.max(one_trial(shape, edge())?);
        }
        Ok(best)
    };
    let shared = best(|| None)?;
    let routed =
        best(|| Some(EdgeConfig::new(RoutePolicy::ConsistentHash).queue_capacity(1 << 15)))?;

    row(&["shared queue", &format!("{shared:.0}"), "1.00x"], &widths);
    row(
        &[
            "routed (consistent-hash)",
            &format!("{routed:.0}"),
            &format!("{:.2}x", routed / shared),
        ],
        &widths,
    );
    let ratio = routed / shared;
    if shape.quick {
        // CI smoke on noisy shared runners: require parity, not a win.
        assert!(
            ratio > 0.85,
            "quick acceptance: routed must stay within noise of shared, got {ratio:.2}x"
        );
    } else {
        assert!(
            ratio > 1.0,
            "acceptance: routed inboxes must beat the shared queue at {} workers, got {ratio:.2}x",
            shape.workers
        );
    }
    println!(
        "\n(consistent-hash pins each path to one worker, so its {CACHE_ENTRIES}-entry cache\n\
         holds its shard; the shared queue sprays all {FILES} paths across every cache)\n"
    );
    Ok(routed)
}

struct SweepRow {
    policy: RoutePolicy,
    rate: f64,
    report: GenReport,
    stats: SojournStats,
}

/// Measurement 2: open-loop sojourn percentiles per routing policy at
/// fractions of the measured routed capacity.
fn sweep(shape: &Shape, routed_rps: f64) -> Result<Vec<SweepRow>, Box<dyn std::error::Error>> {
    println!(
        "Open-loop routing-policy sweep: exponential inter-arrivals at fractions of the\n\
         measured routed capacity ({routed_rps:.0} req/s), {} requests per point\n",
        shape.sweep_requests
    );
    let widths = [17, 9, 9, 7, 9, 9, 9, 9];
    row(
        &[
            "policy", "rate", "offered", "shed", "p50", "p99", "p999", "max",
        ],
        &widths,
    );
    rule(&widths);

    let policies = [
        RoutePolicy::ConsistentHash,
        RoutePolicy::LeastLoaded,
        RoutePolicy::RoundRobin,
    ];
    let mut rows = Vec::new();
    for policy in policies {
        for (i, frac) in shape.sweep_fractions.iter().enumerate() {
            let rate = frac * routed_rps;
            let (fs, mut wl) = fixture();
            let cfg = FleetConfig::new(shape.workers)
                .serve_mode(amped())
                .with_edge(EdgeConfig::new(policy).queue_capacity(4096))
                .with_telemetry();
            let fleet =
                Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).map_err(|e| e.to_string())?;
            let warm = 400 * shape.workers;
            fleet.push_requests(wl.batch(warm));
            fleet.drain(warm).map_err(|e| e.to_string())?;
            fleet.shared().take_completions();

            // The generator bypasses the acceptor and stamps admission
            // itself, so queue wait is measured from the client's send.
            let texts = wl.batch(shape.sweep_requests);
            let mut next = texts.iter().cycle().cloned();
            let edge = Arc::clone(fleet.edge().expect("routed fleet has an edge"));
            let gen = OpenLoop {
                rate,
                requests: shape.sweep_requests,
                seed: 29 + i as u64,
            };
            let report = gen.run(&edge, || next.next().expect("cycled"));
            // Sheds synthesize 503 completions, so drain converges on
            // everything offered.
            fleet.drain(report.offered).map_err(|e| e.to_string())?;
            let completions = fleet.shared().take_completions();
            let stats = sojourn_stats(&completions);

            // The serve path fed the same distribution into the metrics
            // registry; a scrape after the run must carry it.
            let scrape = fleet.telemetry().expect("telemetry on").scrape_text();
            assert!(
                scrape.contains(names::SOJOURN_SECONDS),
                "sojourn histogram missing from scrape"
            );
            fleet.shutdown().map_err(|e| e.to_string())?;

            row(
                &[
                    &policy.to_string(),
                    &format!("{rate:.0}/s"),
                    &report.offered.to_string(),
                    &report.shed.to_string(),
                    &fmt_dur(stats.p50),
                    &fmt_dur(stats.p99),
                    &fmt_dur(stats.p999),
                    &fmt_dur(stats.max),
                ],
                &widths,
            );
            rows.push(SweepRow {
                policy,
                rate,
                report,
                stats,
            });
        }
    }

    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("edge_latency.json"),
        sweep_json(shape, routed_rps, &rows),
    )?;
    println!("\nexported target/telemetry/edge_latency.json\n");
    Ok(rows)
}

fn sweep_json(shape: &Shape, routed_rps: f64, rows: &[SweepRow]) -> String {
    let points: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"policy\":\"{}\",\"rate_rps\":{:.1},\"offered\":{},\"admitted\":{},\
                 \"shed\":{},\"offered_rps\":{:.1},\"p50_us\":{},\"p99_us\":{},\
                 \"p999_us\":{},\"max_us\":{}}}",
                r.policy,
                r.rate,
                r.report.offered,
                r.report.admitted,
                r.report.shed,
                r.report.offered_rps(),
                r.stats.p50.as_micros(),
                r.stats.p99.as_micros(),
                r.stats.p999.as_micros(),
                r.stats.max.as_micros(),
            )
        })
        .collect();
    format!(
        "{{\"workers\":{},\"routed_capacity_rps\":{:.1},\"points\":[{}]}}",
        shape.workers,
        routed_rps,
        points.join(",")
    )
}

/// Measurement 3: the staged guarded rollout (v3 -> v4) while an
/// open-loop generator holds ~70% of routed capacity.
fn rollout_under_load(
    shape: &Shape,
    _routed_rps: f64,
    _sweep: &[SweepRow],
) -> Result<(), Box<dyn std::error::Error>> {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(shape.workers)
        .serve_mode(amped())
        .with_edge(EdgeConfig::new(RoutePolicy::ConsistentHash).queue_capacity(4096))
        .with_telemetry();
    let fleet = Fleet::start_cfg(&cfg, &versions::v3(), "v3", &fs).map_err(|e| e.to_string())?;
    let warm = 400 * shape.workers;
    fleet.push_requests(wl.batch(warm));
    fleet.drain(warm).map_err(|e| e.to_string())?;
    fleet.shared().take_completions();

    // Calibrate peak against *this* fleet — v3's guest does different
    // work than v1's, so the measurement-1 capacity does not transfer.
    let t0 = Instant::now();
    fleet.push_requests(wl.batch(shape.requests));
    fleet.drain(shape.requests).map_err(|e| e.to_string())?;
    let v3_rps = shape.requests as f64 / t0.elapsed().as_secs_f64();
    fleet.shared().take_completions();

    let rate = 0.7 * v3_rps;
    println!(
        "Staged guarded rollout under load: v3 -> v4, canary -> 25% -> 100%, gated on a\n\
         {:?} p{:.0} pause SLO, open-loop load at {rate:.0} req/s\n\
         (70% of this fleet's measured {v3_rps:.0} req/s) throughout\n",
        PAUSE_SLO.max,
        PAUSE_SLO.quantile * 100.0
    );

    // Generator thread: open-loop chunks until the rollout settles, so
    // load covers every cohort and soak window.
    let stop = Arc::new(AtomicBool::new(false));
    let edge = Arc::clone(fleet.edge().expect("routed fleet has an edge"));
    let texts = wl.batch(4096);
    let min_requests = shape.rollout_min_requests;
    let gen_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> GenReport {
            let chunk = ((rate / 20.0) as usize).max(50);
            let mut next = texts.iter().cycle().cloned();
            let mut total = GenReport::default();
            let mut seed = 101u64;
            while !stop.load(Ordering::Relaxed) || total.offered < min_requests {
                let r = OpenLoop {
                    rate,
                    requests: chunk,
                    seed,
                }
                .run(&edge, || next.next().expect("cycled"));
                total.offered += r.offered;
                total.admitted += r.admitted;
                total.shed += r.shed;
                total.elapsed += r.elapsed;
                seed += 1;
            }
            total
        })
    };

    let gen_patch = &patch_stream()?[2]; // v3 -> v4 (cache representation change)
    let plan = RolloutPlan::staged(0, PAUSE_SLO, BreachAction::Hold)
        .with_soak(Duration::from_millis(if shape.quick { 50 } else { 150 }));
    let report = fleet
        .rollout_plan(&gen_patch.patch, &plan)
        .map_err(|e| e.to_string())?;
    stop.store(true, Ordering::Relaxed);
    let offered = gen_thread.join().expect("generator thread panicked");

    fleet.drain(offered.offered).map_err(|e| e.to_string())?;
    let completions = fleet.shared().take_completions();
    let stats = sojourn_stats(&completions);

    // Acceptance: the staged rollout completed and converged, and the
    // request-latency SLO held across the whole run.
    assert!(
        matches!(report.card.outcome, RolloutOutcome::Completed),
        "staged rollout did not complete: {:?}",
        report.card.outcome
    );
    assert!(report.card.converged(), "fleet did not converge");
    assert!(report.fleet_report.complete(), "a worker missed the patch");
    assert!(
        stats.p99 <= SOJOURN_SLO_P99,
        "p99 sojourn {} broke the {} SLO under rollout",
        fmt_dur(stats.p99),
        fmt_dur(SOJOURN_SLO_P99)
    );

    // The journal must close every lifecycle it opened.
    let tel = fleet.telemetry().expect("telemetry on");
    for id in tel.journal().update_ids() {
        dsu_obs::journal::validate_lifecycle(&tel.journal().events_for(id))?;
    }

    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("edge_rollout_card.json"), report.card.to_json())?;
    std::fs::write(dir.join("edge_rollout.jsonl"), tel.journal().to_jsonl())?;
    let journal_events = tel.journal().len();
    fleet.shutdown().map_err(|e| e.to_string())?;

    println!(
        "  offered {} ({:.0} req/s), admitted {}, shed {}",
        offered.offered,
        offered.offered_rps(),
        offered.admitted,
        offered.shed
    );
    println!(
        "  cohorts: {} ({} workers total); max pause {}",
        report.cohorts.len(),
        report.fleet_report.workers,
        fmt_dur(report.fleet_report.max_pause()),
    );
    println!(
        "  sojourn over the run: p50 {} p99 {} p999 {} max {} — p99 SLO ({}) held",
        fmt_dur(stats.p50),
        fmt_dur(stats.p99),
        fmt_dur(stats.p999),
        fmt_dur(stats.max),
        fmt_dur(SOJOURN_SLO_P99),
    );
    println!("  journal: {journal_events} events, every lifecycle closed");
    println!("  exported target/telemetry/edge_rollout_card.json / edge_rollout.jsonl");
    Ok(())
}
