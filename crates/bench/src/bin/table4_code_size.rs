//! Table 4 — code/metadata size of static vs updateable images.
//!
//! A statically linked executable can strip symbol tables and type
//! metadata after binding; an updateable program must retain them so
//! future patches can be verified and linked. This table reports that
//! space cost for the kernel suite and every FlashEd version.
//!
//! Run with: `cargo run --release -p dsu-bench --bin table4_code_size`

use dsu_bench::kernels::kernels;
use dsu_bench::measure::{row, rule};
use flashed::versions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 4: image size, static vs updateable (virtual encoding, bytes)\n");
    let widths = [12, 7, 9, 8, 7, 9, 11, 9];
    row(
        &[
            "module",
            "code",
            "symbols",
            "strings",
            "types",
            "static",
            "updateable",
            "overhead",
        ],
        &widths,
    );
    rule(&widths);

    let mut modules: Vec<(String, tal::Module)> = Vec::new();
    for k in kernels() {
        let m = popcorn::compile(k.src, k.name, "v1", &popcorn::Interface::new())?;
        modules.push((k.name.to_string(), m));
    }
    for (name, src) in versions::all() {
        let m = popcorn::compile(&src, "flashed", name, &popcorn::Interface::new())?;
        modules.push((format!("flashed-{name}"), m));
    }

    for (name, m) in &modules {
        let r = m.size_report();
        row(
            &[
                name,
                &r.code_bytes.to_string(),
                &r.symbol_bytes.to_string(),
                &r.string_bytes.to_string(),
                &r.type_bytes.to_string(),
                &r.static_total().to_string(),
                &r.updateable_total().to_string(),
                &format!("{:+.1}%", r.overhead_percent()),
            ],
            &widths,
        );
    }
    println!(
        "\n(expected shape: tens of percent of retained linking metadata — the\n\
         space price of updateability; richer interfaces cost more)"
    );

    // Companion: what the peephole optimiser recovers (it shrinks code,
    // not metadata, so it cannot offset updateability's cost — it shifts
    // both columns down together).
    println!("\nTable 4b: peephole-optimised code size\n");
    let widths = [12, 8, 8, 9, 8, 8];
    row(
        &["module", "code", "opt", "shrink", "folds", "removed"],
        &widths,
    );
    rule(&widths);
    for (name, m) in &modules {
        let mut opt = m.clone();
        let stats = tal::opt::optimize_module(&mut opt);
        row(
            &[
                name,
                &m.size_report().code_bytes.to_string(),
                &opt.size_report().code_bytes.to_string(),
                &format!("-{:.1}%", stats.shrink_percent()),
                &stats.folds.to_string(),
                &stats.removed.to_string(),
            ],
            &widths,
        );
    }
    Ok(())
}
