//! Open- and closed-loop load generators for the FlashEd edge.
//!
//! Both drive [`Edge::submit`] directly (bypassing the acceptor thread)
//! so every request's admission instant is stamped at the source and
//! end-to-end sojourn (`Completion::queue_wait + Completion::service`)
//! is measured per request.
//!
//! * [`OpenLoop`] — arrivals follow a deterministic Poisson process:
//!   exponential inter-arrival gaps drawn from the existing
//!   [`flashed::Rng`] (`-ln(1-U)/λ`), submitted on schedule whether or
//!   not earlier requests completed. This is the generator that exposes
//!   overload: when offered rate exceeds capacity, queues fill and the
//!   edge sheds — the generator counts the [`EdgeError::Overloaded`]
//!   backpressure signals rather than slowing down.
//! * [`ClosedLoop`] — N simulated clients, each with one request in
//!   flight: a new request is issued only when a completion frees a
//!   client. Offered load self-limits to `N / sojourn`, so a closed
//!   loop *cannot* overload the edge; on a shed it backs off and
//!   retries, which is the backpressure round-trip.
//!
//! Percentiles come in two forms: exact nearest-rank over the recorded
//! completions ([`sojourn_stats`]), and bucketed observations fed into
//! the existing [`dsu_obs::Histogram`] instruments
//! ([`observe_sojourns`]) so fleet scrapes carry the same distribution
//! the bench tables print.

use std::time::{Duration, Instant};

use dsu_obs::Histogram;
use flashed::{Completion, Edge, EdgeError, Rng, ServerShared};

/// What a generator run offered and what became of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenReport {
    /// Requests the generator offered (excluding closed-loop retries).
    pub offered: usize,
    /// Requests admitted into some inbox.
    pub admitted: usize,
    /// Requests shed at admission (open loop: dropped; closed loop:
    /// retried after backoff, counted once per backpressure signal).
    pub shed: usize,
    /// Wall-clock time spent offering.
    pub elapsed: Duration,
}

impl GenReport {
    /// Achieved offered rate in requests/second.
    pub fn offered_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.offered as f64 / self.elapsed.as_secs_f64()
    }
}

/// Exact sojourn percentiles (nearest-rank) over a completion set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SojournStats {
    /// Completions with a measured sojourn (pulled ones).
    pub count: usize,
    /// Median sojourn.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile.
    pub p999: Duration,
    /// Worst observed.
    pub max: Duration,
}

/// Computes exact sojourn percentiles over the completions that were
/// matched to a pull (shed 503s carry no sojourn and are skipped).
/// Sojourn is queue wait plus service — update pauses excluded, matching
/// the service-time convention.
///
/// # Panics
/// Panics when no completion has a measured sojourn.
pub fn sojourn_stats(completions: &[Completion]) -> SojournStats {
    let mut times: Vec<Duration> = completions
        .iter()
        .filter(|c| c.pulled)
        .map(|c| c.queue_wait + c.service)
        .collect();
    assert!(!times.is_empty(), "no pulled completions");
    times.sort();
    let rank = |p: f64| -> Duration {
        let idx = ((p * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[idx - 1]
    };
    SojournStats {
        count: times.len(),
        p50: rank(0.50),
        p99: rank(0.99),
        p999: rank(0.999),
        max: *times.last().expect("non-empty"),
    }
}

/// Feeds every pulled completion's sojourn into `hist` — the bridge from
/// a generator run into the existing metrics instruments, so a scrape
/// taken after a sweep carries the same distribution the tables print.
pub fn observe_sojourns(completions: &[Completion], hist: &Histogram) {
    for c in completions.iter().filter(|c| c.pulled) {
        hist.observe(c.queue_wait + c.service);
    }
}

/// Sleeps (coarsely) then spins (precisely) until `deadline` on the
/// clock that `t0` started. Arrival schedules need microsecond-ish
/// precision; bare `sleep` overshoots by a scheduler quantum.
fn wait_until(t0: Instant, deadline: Duration) {
    loop {
        let now = t0.elapsed();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(200) {
            std::thread::sleep(remaining - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// An open-loop (arrival-rate-driven) generator.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoop {
    /// Offered arrival rate, requests/second.
    pub rate: f64,
    /// Requests to offer.
    pub requests: usize,
    /// Seed for the inter-arrival draw (same seed, same schedule).
    pub seed: u64,
}

impl OpenLoop {
    /// Offers `requests` arrivals at exponential gaps, submitting each
    /// through `edge` on schedule. `next_req` supplies request texts
    /// (e.g. a [`flashed::Workload`] handle). Sheds are counted, never
    /// retried — open loops don't slow down for an overloaded server,
    /// which is exactly why they expose tail latency.
    pub fn run<F>(&self, edge: &Edge, mut next_req: F) -> GenReport
    where
        F: FnMut() -> String,
    {
        assert!(self.rate > 0.0, "open loop needs a positive rate");
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut report = GenReport::default();
        let t0 = Instant::now();
        let mut due = Duration::ZERO;
        for _ in 0..self.requests {
            // Exponential inter-arrival: -ln(1-U)/λ. gen_f64 is in
            // [0, 1), so 1-U is in (0, 1] and the log is finite.
            let gap = -(1.0_f64 - rng.gen_f64()).ln() / self.rate;
            due += Duration::from_secs_f64(gap);
            wait_until(t0, due);
            report.offered += 1;
            match edge.submit(next_req()) {
                Ok(_) => report.admitted += 1,
                Err(EdgeError::Overloaded { .. } | EdgeError::Unavailable) => report.shed += 1,
            }
        }
        report.elapsed = t0.elapsed();
        report
    }
}

/// One decorrelated-jitter backoff draw (the AWS "decorrelated jitter"
/// schedule): uniform in `[base, prev * 3]`, clamped to `cap`. Feeding
/// each draw back as the next `prev` grows the *expected* delay
/// geometrically while keeping every draw randomized — two clients shed
/// by the same 503 wave spread out instead of retrying in lockstep.
pub fn decorrelated_backoff(
    rng: &mut Rng,
    base: Duration,
    cap: Duration,
    prev: Duration,
) -> Duration {
    let cap = cap.max(base);
    let lo = base.as_nanos().min(u64::MAX as u128) as u64;
    let hi = prev
        .saturating_mul(3)
        .min(cap)
        .max(base)
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    let span = hi.saturating_sub(lo);
    Duration::from_nanos(lo + (rng.gen_f64() * span as f64) as u64)
}

/// A closed-loop (concurrency-driven) generator: at most `clients`
/// requests in flight at once.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoop {
    /// Simulated concurrent clients (the in-flight window).
    pub clients: usize,
    /// Total requests to complete.
    pub requests: usize,
    /// Minimum backoff after a shed. The *effective* floor is this
    /// value or the edge's `Retry-After` hint, whichever is larger;
    /// actual delays are decorrelated-jitter draws from there up to
    /// [`ClosedLoop::backoff_cap`].
    pub backoff: Duration,
    /// Ceiling the jittered backoff saturates at (clamped up to the
    /// floor when configured smaller).
    pub backoff_cap: Duration,
    /// Seed for the jitter draws — distinct clients should use distinct
    /// seeds so their retries decorrelate.
    pub seed: u64,
}

impl ClosedLoop {
    /// The backoff floor this generator would actually use against
    /// `edge`: the configured base, floored at the edge's synthesized
    /// `Retry-After` hint.
    pub fn backoff_floor(&self, edge: &Edge) -> Duration {
        self.backoff.max(edge.retry_after_hint())
    }

    /// Drives the window: submit while fewer than `clients` requests are
    /// outstanding, poll `shared` for completions, back off and retry on
    /// a shed — honoring the edge's 503 `Retry-After` hint as the floor
    /// and spreading retries with decorrelated jitter. Returns once
    /// every request has been admitted and its completion observed.
    pub fn run<F>(&self, edge: &Edge, shared: &ServerShared, mut next_req: F) -> GenReport
    where
        F: FnMut() -> String,
    {
        assert!(self.clients > 0, "closed loop needs at least one client");
        let base = shared.completions_len();
        let floor = self.backoff_floor(edge);
        let cap = self.backoff_cap.max(floor);
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut prev = floor;
        let mut report = GenReport::default();
        let t0 = Instant::now();
        // Completions expected so far: every admission produces exactly
        // one (sheds are retried, not abandoned, so they produce their
        // completion on the eventual successful admission; any shed
        // 503s the edge synthesizes arrive on top and are absorbed into
        // the outstanding count conservatively below).
        let mut pending: Option<String> = None;
        while report.admitted < self.requests {
            let completed = shared.completions_len() - base;
            let outstanding = (report.admitted + report.shed).saturating_sub(completed);
            if outstanding >= self.clients {
                std::thread::sleep(Duration::from_micros(20));
                continue;
            }
            let req = pending.take().unwrap_or_else(&mut next_req);
            match edge.submit(req.clone()) {
                Ok(_) => {
                    report.admitted += 1;
                    report.offered += 1;
                    prev = floor;
                }
                Err(EdgeError::Overloaded { .. } | EdgeError::Unavailable) => {
                    // Backpressure: hold the request, back off (jittered,
                    // Retry-After-floored), try again.
                    report.shed += 1;
                    pending = Some(req);
                    prev = decorrelated_backoff(&mut rng, floor, cap, prev);
                    std::thread::sleep(prev);
                }
            }
        }
        // Wait for the window to fully drain.
        let expected = report.admitted + report.shed;
        while shared.completions_len() - base < expected {
            std::thread::sleep(Duration::from_micros(50));
        }
        report.elapsed = t0.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashed::{EdgeConfig, RoutePolicy};

    fn completion(queue_wait_us: u64, service_us: u64, pulled: bool) -> Completion {
        Completion {
            at: Duration::ZERO,
            service: Duration::from_micros(service_us),
            update_pause: Duration::ZERO,
            queue_wait: Duration::from_micros(queue_wait_us),
            pulled,
            request_id: pulled.then_some(1),
            response: String::new(),
        }
    }

    #[test]
    fn sojourn_stats_sum_wait_and_service_and_skip_sheds() {
        let mut completions: Vec<Completion> =
            (1..=100).map(|i| completion(i, 100, true)).collect();
        completions.push(completion(0, 0, false)); // a shed 503
        let stats = sojourn_stats(&completions);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50, Duration::from_micros(150));
        assert_eq!(stats.p99, Duration::from_micros(199));
        assert_eq!(stats.p999, Duration::from_micros(200));
        assert_eq!(stats.max, Duration::from_micros(200));
    }

    #[test]
    fn open_loop_is_deterministic_and_sheds_on_overflow() {
        // Nobody consumes: an inbox of 8 admits 8 and sheds the rest.
        let edge = Edge::new(
            1,
            &EdgeConfig::new(RoutePolicy::RoundRobin)
                .queue_capacity(8)
                .shed_responses(false),
            ServerShared::new(),
            None,
        );
        let gen = OpenLoop {
            rate: 50_000.0,
            requests: 20,
            seed: 7,
        };
        let report = gen.run(&edge, || "GET /x HTTP/1.0".to_string());
        assert_eq!(report.offered, 20);
        assert_eq!(report.admitted, 8);
        assert_eq!(report.shed, 12);
        assert_eq!(edge.shed(), 12);
        // The schedule is seeded: a second identical run offers at the
        // same pace (same total gap, within scheduling noise).
        assert!(report.offered_rps() > 0.0);
    }

    #[test]
    fn decorrelated_backoff_stays_bounded_and_grows() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(50);
        let mut rng = Rng::seed_from_u64(3);
        let mut prev = base;
        for _ in 0..64 {
            prev = decorrelated_backoff(&mut rng, base, cap, prev);
            assert!(prev >= base, "draw {prev:?} under the floor");
            assert!(prev <= cap, "draw {prev:?} over the cap");
        }
        // A cap below the base clamps up, never panics.
        let d = decorrelated_backoff(&mut rng, base, Duration::ZERO, base);
        assert_eq!(d, base);
    }

    #[test]
    fn backoff_draws_decorrelate_across_seeds() {
        // Two clients shed by the same wave must not retry in lockstep:
        // distinct seeds produce distinct backoff schedules.
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(50);
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = Rng::seed_from_u64(seed);
            let mut prev = base;
            (0..16)
                .map(|_| {
                    prev = decorrelated_backoff(&mut rng, base, cap, prev);
                    prev
                })
                .collect()
        };
        let a = schedule(1);
        let b = schedule(2);
        assert_ne!(a, b, "seeds 1 and 2 drew identical backoff schedules");
        // Deterministic per seed (reproducible benches).
        assert_eq!(a, schedule(1));
        // And not a constant schedule — the jitter actually jitters.
        assert!(a.windows(2).any(|w| w[0] != w[1]), "schedule never varied");
    }

    #[test]
    fn closed_loop_floors_backoff_at_the_retry_after_hint() {
        let edge = Edge::new(
            1,
            &EdgeConfig::new(RoutePolicy::RoundRobin)
                .queue_capacity(1)
                .retry_after_hint(Duration::from_millis(5)),
            ServerShared::new(),
            None,
        );
        let gen = ClosedLoop {
            clients: 1,
            requests: 1,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            seed: 9,
        };
        assert_eq!(gen.backoff_floor(&edge), Duration::from_millis(5));
        // A base above the hint wins instead.
        let gen = ClosedLoop {
            backoff: Duration::from_millis(8),
            ..gen
        };
        assert_eq!(gen.backoff_floor(&edge), Duration::from_millis(8));
    }

    #[test]
    fn open_loop_paces_arrivals_near_the_nominal_rate() {
        let edge = Edge::new(
            1,
            &EdgeConfig::new(RoutePolicy::RoundRobin).queue_capacity(4096),
            ServerShared::new(),
            None,
        );
        let gen = OpenLoop {
            rate: 2000.0,
            requests: 200,
            seed: 11,
        };
        let report = gen.run(&edge, || "GET /x HTTP/1.0".to_string());
        let rps = report.offered_rps();
        // Mean of 200 exponential gaps at λ=2000: ~100ms total, sd ~7ms.
        // Accept a generous band — the assertion is about pacing, not
        // statistics.
        assert!(
            (1000.0..4000.0).contains(&rps),
            "offered {rps:.0} req/s, wanted ≈2000"
        );
    }
}
