//! Small measurement utilities shared by the table/figure regenerators.

use std::time::{Duration, Instant};

/// Times `f` over `reps` runs and returns the median duration. One warmup
/// run precedes the measured ones.
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    f(); // warmup
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Times two workloads interleaved (A, B, A, B, …) over `samples` rounds
/// and returns the *minimum* sample for each — interleaving cancels
/// frequency drift and the minimum suppresses scheduler noise, which
/// matters when the expected difference is a few percent.
pub fn time_interleaved<A, B>(samples: usize, mut a: A, mut b: B) -> (Duration, Duration)
where
    A: FnMut(),
    B: FnMut(),
{
    a();
    b(); // warmup
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        a();
        best_a = best_a.min(t.elapsed());
        let t = Instant::now();
        b();
        best_b = best_b.min(t.elapsed());
    }
    (best_a, best_b)
}

/// Like [`time_interleaved`], but each timed sample runs the workload
/// `iters` times — pushing per-sample duration far above timer jitter so
/// sub-percent differences resolve. Returned durations are per-iteration.
pub fn time_interleaved_iters<A, B>(
    samples: usize,
    iters: usize,
    mut a: A,
    mut b: B,
) -> (Duration, Duration)
where
    A: FnMut(),
    B: FnMut(),
{
    let (ta, tb) = time_interleaved(
        samples,
        || {
            for _ in 0..iters {
                a();
            }
        },
        || {
            for _ in 0..iters {
                b();
            }
        },
    );
    (ta / iters as u32, tb / iters as u32)
}

/// Three-way variant of [`time_interleaved_iters`]: workloads A, B and C
/// run round-robin (A, B, C, A, B, C, …), each timed sample covering
/// `iters` iterations; returns per-iteration minimum durations. Used for
/// static vs updateable-cold vs updateable-cached dispatch comparisons,
/// where all three must see the same thermal/frequency conditions.
pub fn time_interleaved3<A, B, C>(
    samples: usize,
    iters: usize,
    mut a: A,
    mut b: B,
    mut c: C,
) -> (Duration, Duration, Duration)
where
    A: FnMut(),
    B: FnMut(),
    C: FnMut(),
{
    a();
    b();
    c(); // warmup
    let mut best = [Duration::MAX; 3];
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        for _ in 0..iters {
            a();
        }
        best[0] = best[0].min(t.elapsed());
        let t = Instant::now();
        for _ in 0..iters {
            b();
        }
        best[1] = best[1].min(t.elapsed());
        let t = Instant::now();
        for _ in 0..iters {
            c();
        }
        best[2] = best[2].min(t.elapsed());
    }
    let n = iters.max(1) as u32;
    (best[0] / n, best[1] / n, best[2] / n)
}

/// N-way variant of [`time_interleaved`]: the workloads run round-robin
/// (side 0, side 1, …, side 0, …) so every side sees the same
/// thermal/frequency conditions; returns the per-side minimum durations.
pub fn time_interleaved_n(samples: usize, sides: &mut [&mut dyn FnMut()]) -> Vec<Duration> {
    for f in sides.iter_mut() {
        f(); // warmup
    }
    let mut best = vec![Duration::MAX; sides.len()];
    for _ in 0..samples.max(1) {
        for (i, f) in sides.iter_mut().enumerate() {
            let t = Instant::now();
            f();
            best[i] = best[i].min(t.elapsed());
        }
    }
    best
}

/// Relative overhead of `test` over `base`, in percent.
pub fn overhead_percent(base: Duration, test: Duration) -> f64 {
    if base.is_zero() {
        return 0.0;
    }
    (test.as_secs_f64() - base.as_secs_f64()) / base.as_secs_f64() * 100.0
}

/// Formats a duration with 3 significant-ish digits (µs/ms adaptive).
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

/// Prints one aligned table row.
pub fn row(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Prints a rule under a header of the given widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_monotone_in_work() {
        // `black_box` every iteration so no closed form survives.
        let spin = |n: u64| {
            for i in 0..n {
                std::hint::black_box(i);
            }
        };
        let fast = time_median(5, || spin(std::hint::black_box(100)));
        let slow = time_median(5, || spin(std::hint::black_box(2_000_000)));
        assert!(slow >= fast, "{slow:?} vs {fast:?}");
    }

    #[test]
    fn overhead_math() {
        let base = Duration::from_millis(100);
        assert!((overhead_percent(base, Duration::from_millis(110)) - 10.0).abs() < 1e-9);
        assert!((overhead_percent(base, Duration::from_millis(90)) + 10.0).abs() < 1e-9);
        assert_eq!(overhead_percent(Duration::ZERO, base), 0.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_micros(500)), "500.0µs");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.000s");
    }
}
