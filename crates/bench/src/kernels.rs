//! Compute micro-kernels for the updateable-compilation overhead
//! experiment (Table 3 / the paper's microbenchmarks).
//!
//! The kernels span the cost spectrum the paper's discussion predicts:
//! call-dense code (`pingpong`, `fib`) pays the most for per-call
//! indirection, loop/array code (`matmul`, `sort`) the least, string code
//! in between.

use vm::{LinkMode, Process, Value};

/// One benchmark kernel: Popcorn source, entry point and argument.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Display name.
    pub name: &'static str,
    /// Popcorn source.
    pub src: &'static str,
    /// Entry function (arity 1, int argument, int result).
    pub entry: &'static str,
    /// Argument (problem size).
    pub arg: i64,
    /// Expected result, as a correctness check.
    pub expect: i64,
}

/// The kernel suite.
pub fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "fib",
            src: r#"
                fun fib(n: int): int {
                    if (n < 2) { return n; }
                    return fib(n - 1) + fib(n - 2);
                }
            "#,
            entry: "fib",
            arg: 18,
            expect: 2584,
        },
        Kernel {
            name: "pingpong",
            src: r#"
                fun ping(n: int): int {
                    if (n == 0) { return 0; }
                    return pong(n - 1) + 1;
                }
                fun pong(n: int): int {
                    if (n == 0) { return 0; }
                    return ping(n - 1) + 1;
                }
            "#,
            entry: "ping",
            arg: 4000,
            expect: 4000,
        },
        Kernel {
            name: "matmul",
            src: r#"
                fun idx(i: int, j: int, n: int): int { return i * n + j; }
                fun matmul(n: int): int {
                    var a: [int] = new [int];
                    var b: [int] = new [int];
                    var c: [int] = new [int];
                    var i: int = 0;
                    while (i < n * n) {
                        push(a, i % 7);
                        push(b, i % 5);
                        push(c, 0);
                        i = i + 1;
                    }
                    i = 0;
                    while (i < n) {
                        var j: int = 0;
                        while (j < n) {
                            var acc: int = 0;
                            var k: int = 0;
                            while (k < n) {
                                acc = acc + a[idx(i, k, n)] * b[idx(k, j, n)];
                                k = k + 1;
                            }
                            c[idx(i, j, n)] = acc;
                            j = j + 1;
                        }
                        i = i + 1;
                    }
                    return c[idx(n - 1, n - 1, n)];
                }
            "#,
            entry: "matmul",
            arg: 16,
            expect: 97,
        },
        Kernel {
            name: "sort",
            src: r#"
                fun sort(n: int): int {
                    var a: [int] = new [int];
                    var seed: int = 12345;
                    var i: int = 0;
                    while (i < n) {
                        seed = (seed * 1103515245 + 12345) % 2147483648;
                        push(a, seed % 1000);
                        i = i + 1;
                    }
                    i = 0;
                    while (i < n) {
                        var j: int = 0;
                        while (j < n - i - 1) {
                            if (a[j] > a[j + 1]) {
                                var t: int = a[j];
                                a[j] = a[j + 1];
                                a[j + 1] = t;
                            }
                            j = j + 1;
                        }
                        i = i + 1;
                    }
                    return a[0] + a[n - 1];
                }
            "#,
            entry: "sort",
            arg: 150,
            expect: 995,
        },
        Kernel {
            name: "strhash",
            src: r#"
                fun hash(s: string): int {
                    var h: int = 5381;
                    var i: int = 0;
                    while (i < len(s)) {
                        h = (h * 33 + char_at(s, i)) % 1000000007;
                        i = i + 1;
                    }
                    return h;
                }
                fun strhash(n: int): int {
                    var acc: int = 0;
                    var i: int = 0;
                    while (i < n) {
                        acc = (acc + hash("request-" + itoa(i) + "-payload")) % 1000000007;
                        i = i + 1;
                    }
                    return acc;
                }
            "#,
            entry: "strhash",
            arg: 400,
            expect: 526479778,
        },
    ]
}

/// Boots a kernel into a fresh process.
///
/// # Panics
/// Panics when the kernel source fails to compile or link (suite bug).
pub fn boot_kernel(k: &Kernel, mode: LinkMode) -> Process {
    let m = popcorn::compile(k.src, k.name, "v1", &popcorn::Interface::new())
        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    let mut p = Process::new(mode);
    p.load_module(&m)
        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    p
}

/// Runs a kernel once, asserting the expected result; returns the process
/// for stats inspection.
///
/// # Panics
/// Panics when the kernel traps or returns the wrong result.
pub fn run_kernel(p: &mut Process, k: &Kernel) {
    let v = p
        .call(k.entry, vec![Value::Int(k.arg)])
        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    assert_eq!(v, Value::Int(k.expect), "{} result", k.name);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_run_correctly_in_both_modes() {
        for k in kernels() {
            for mode in [LinkMode::Static, LinkMode::Updateable] {
                let mut p = boot_kernel(&k, mode);
                run_kernel(&mut p, &k);
            }
        }
    }

    #[test]
    fn static_mode_performs_no_slot_calls() {
        for k in kernels() {
            let mut p = boot_kernel(&k, LinkMode::Static);
            run_kernel(&mut p, &k);
            assert_eq!(p.stats.slot_calls, 0, "{}", k.name);
            let mut p = boot_kernel(&k, LinkMode::Updateable);
            run_kernel(&mut p, &k);
            assert_eq!(p.stats.slot_calls, p.stats.calls, "{}", k.name);
        }
    }
}
