//! Causal-tracing invariants end to end: request spans nest inside
//! their roots, update spans nest under the fleet's rollout root, span
//! durations reconcile exactly with the reports' [`PhaseTimings`] sums,
//! and the latency-attribution report charges each delayed request to
//! exactly one update.

use std::time::Duration;

use dsu_obs::journal::validate_lifecycle;
use dsu_obs::{stall_report, to_chrome_trace, validate_spans, SpanKind};
use flashed::fault::FaultPlan;
use flashed::{
    versions, BreachAction, EventLoopConfig, Fleet, FleetConfig, PauseSlo, RolloutPolicy,
    ServeMode, SimFs, WorkerOverride, Workload,
};

fn fixture() -> (SimFs, Workload) {
    let mut fs = SimFs::generate_fixed(16, 256, 7);
    fs.set_read_latency(Duration::from_micros(200));
    let wl = Workload::new(fs.paths(), 1.0, 41);
    (fs, wl)
}

fn forward_patch() -> dsu_core::Patch {
    flashed::patch_stream().unwrap()[0].patch.clone() // v1 -> v2
}

fn inverse_patch() -> dsu_core::Patch {
    dsu_core::PatchGen::new()
        .generate(&versions::v2(), &versions::v1(), "v2", "v1")
        .unwrap()
        .patch
}

/// A traced guarded rollout over an AMPED fleet, mid-traffic: the span
/// forest validates, every update span parents under the one rollout
/// root, phase children sum exactly to the reports' `PhaseTimings`, the
/// journal cross-links resolve, and the stall report's books balance.
#[test]
fn guarded_rollout_spans_nest_and_reconcile() {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(2)
        .serve_mode(ServeMode::EventLoop(EventLoopConfig::default()))
        .with_tracing();
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(300));

    let (report, card) = fleet
        .rollout_guarded(
            &forward_patch(),
            0,
            PauseSlo::p99(Duration::from_millis(500)),
            BreachAction::Hold,
        )
        .unwrap();
    assert_eq!(report.applied.len(), 2);
    assert!(card.converged(), "{:?}", card.final_versions);
    fleet.drain(300).unwrap();

    let tel = fleet.telemetry().unwrap();
    let tracer = tel.tracer().unwrap().clone();
    let journal = tel.journal().clone();
    fleet.shutdown().unwrap();
    let spans = tracer.spans();

    // The whole forest is structurally sound: every parent exists, every
    // child starts and ends inside its parent, ids are unique.
    validate_spans(&spans).unwrap();

    // One rollout root; every update span nests directly under it, in
    // the same trace, inside its window.
    let roots: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Rollout)
        .collect();
    assert_eq!(roots.len(), 1);
    let root = roots[0];
    assert_eq!(root.detail.as_deref(), Some("v1->v2"));
    let updates: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Update)
        .collect();
    assert_eq!(updates.len(), 2);
    for u in &updates {
        assert_eq!(u.parent, Some(root.id));
        assert_eq!(u.trace, root.trace);
    }

    // Span durations reuse the reports' exact `Duration`s, so each update
    // span's phase children sum to its report's `PhaseTimings::total()`
    // exactly (gate-wait is coordination overlap, not pause work).
    for (wid, r) in &report.applied {
        let u = updates
            .iter()
            .find(|s| s.worker == Some(*wid))
            .expect("every applied update has a span");
        let phase_sum: Duration = spans
            .iter()
            .filter(|s| {
                s.kind == SpanKind::UpdatePhase && s.parent == Some(u.id) && s.name != "gate-wait"
            })
            .map(|s| s.dur)
            .sum();
        assert_eq!(phase_sum, r.timings.total(), "worker {wid}");
    }

    // Journal cross-links: every lifecycle validates, and the span ids
    // stamped on its events resolve to real spans in the same trace.
    for id in journal.update_ids() {
        let events = journal.events_for(id);
        validate_lifecycle(&events).unwrap();
        for e in &events {
            if let (Some(trace), Some(span)) = (e.trace, e.span) {
                let s = spans
                    .iter()
                    .find(|s| s.id == span)
                    .expect("journalled span id resolves");
                assert_eq!(s.trace, trace);
            }
        }
    }

    // Request spans exist (sampling defaults to 1-in-1) and each carries
    // its AMPED lifecycle children.
    let requests: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Request)
        .collect();
    assert!(!requests.is_empty());
    for r in requests.iter().take(10) {
        assert!(spans
            .iter()
            .any(|s| s.kind == SpanKind::RequestPhase && s.parent == Some(r.id)));
    }

    // Attribution: per update, attributed + unattributed covers the phase
    // total exactly, and every request charged pause time overlapped
    // exactly one update.
    let stalls = stall_report(&spans);
    assert!(stalls.requests_seen > 0);
    for u in &stalls.updates {
        assert_eq!(u.attributed + u.unattributed, u.phase_total);
    }
    for r in &stalls.requests {
        if r.attributed > Duration::ZERO {
            assert_eq!(r.overlapping_updates, 1, "request {}", r.request);
        }
    }

    // The Chrome export is loadable JSON with one complete event per
    // span (plus process/thread-name metadata).
    let chrome = to_chrome_trace(&spans);
    assert!(chrome.starts_with("{\"traceEvents\":[") && chrome.trim_end().ends_with("]}"));
    assert_eq!(chrome.matches("\"ph\":\"X\"").count(), spans.len());
}

/// Sampling `0` mutes request spans without touching update or rollout
/// spans — the knob that makes tracing cheap enough to leave on.
#[test]
fn sampling_zero_keeps_update_spans_only() {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(2)
        .serve_mode(ServeMode::EventLoop(EventLoopConfig::default()))
        .with_tracing();
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    let tracer = fleet.telemetry().unwrap().tracer().unwrap().clone();
    tracer.set_sampling(0);

    fleet.push_requests(wl.batch(120));
    fleet
        .rollout(&forward_patch(), RolloutPolicy::Rolling)
        .unwrap();
    fleet.drain(120).unwrap();
    fleet.shutdown().unwrap();

    let spans = tracer.spans();
    validate_spans(&spans).unwrap();
    assert!(spans
        .iter()
        .all(|s| s.kind != SpanKind::Request && s.kind != SpanKind::RequestPhase));
    assert_eq!(
        spans.iter().filter(|s| s.kind == SpanKind::Update).count(),
        2
    );
    assert_eq!(
        spans.iter().filter(|s| s.kind == SpanKind::Rollout).count(),
        1
    );
}

/// A breached guarded rollout that rolls back still leaves a clean
/// trace: forward and reverse update spans both nest under the rollout
/// root, the rollback span is named distinctly, and the stall report
/// flags it.
#[test]
fn rollback_spans_nest_under_the_rollout_root() {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(3).with_tracing().override_worker(
        0,
        WorkerOverride {
            fault: FaultPlan {
                pause_delay: Some(Duration::from_millis(8)),
                ..FaultPlan::default()
            },
            ..WorkerOverride::default()
        },
    );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(150));

    let (_, card) = fleet
        .rollout_guarded(
            &forward_patch(),
            0,
            PauseSlo::p99(Duration::from_millis(2)),
            BreachAction::RollBack {
                inverse: Some(Box::new(inverse_patch())),
            },
        )
        .unwrap();
    assert_eq!(card.rollbacks.len(), 1);
    fleet.drain(150).unwrap();

    let tel = fleet.telemetry().unwrap();
    let tracer = tel.tracer().unwrap().clone();
    let journal = tel.journal().clone();
    fleet.shutdown().unwrap();
    let spans = tracer.spans();
    validate_spans(&spans).unwrap();
    for id in journal.update_ids() {
        validate_lifecycle(&journal.events_for(id)).unwrap();
    }

    let root = spans
        .iter()
        .find(|s| s.kind == SpanKind::Rollout)
        .expect("rollout root span");
    let updates: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Update)
        .collect();
    // Forward apply on the canary plus its rollback, both under the root.
    assert_eq!(updates.len(), 2);
    assert!(updates.iter().all(|u| u.parent == Some(root.id)));
    let rollback = updates
        .iter()
        .find(|u| u.name == "rollback")
        .expect("the reverse apply records a rollback span");
    assert_eq!(rollback.detail.as_deref(), Some("v2->v1"));

    let stalls = stall_report(&spans);
    assert!(stalls.updates.iter().any(|u| u.rollback));
}
