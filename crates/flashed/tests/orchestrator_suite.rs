//! Orchestrated staged rollouts across shard fleets: cohort driving,
//! breach-triggered rollback chains, cross-fleet skew bounds, and crash
//! recovery from the write-ahead journal.

use std::time::Duration;

use dsu_obs::journal::validate_lifecycle;
use dsu_obs::{Journal, Stage};
use flashed::{
    patch_stream, versions, BreachAction, FaultPlan, Fleet, FleetConfig, FleetError, HealthBreach,
    Orchestrator, PauseSlo, RolloutOutcome, RolloutPlan, SimFs, WorkerOverride, Workload,
};

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(16, 256, 7);
    let wl = Workload::new(fs.paths(), 1.0, 41);
    (fs, wl)
}

/// Boots `shards` fleets of `per` workers each over one shared journal,
/// worker ids offset so journal tags and metric labels are global.
fn shard_fleets(
    shards: usize,
    per: usize,
    fs: &SimFs,
    journal: &Journal,
    fault: Option<(usize, usize, FaultPlan)>, // (shard, local worker, plan)
) -> Vec<Fleet> {
    (0..shards)
        .map(|s| {
            let mut cfg = FleetConfig::new(per)
                .with_journal(journal.clone())
                .worker_base(s * per);
            if let Some((fs_idx, w, plan)) = &fault {
                if *fs_idx == s {
                    cfg = cfg.override_worker(
                        *w,
                        WorkerOverride {
                            fault: *plan,
                            ..WorkerOverride::default()
                        },
                    );
                }
            }
            Fleet::start_cfg(&cfg, &versions::v1(), "v1", fs).unwrap()
        })
        .collect()
}

#[test]
fn staged_rollout_walks_cohorts_across_fleets() {
    let (fs, mut wl) = fixture();
    let journal = Journal::new();
    let fleets = shard_fleets(3, 4, &fs, &journal, None);
    for f in &fleets {
        f.push_requests(wl.batch(120));
    }

    let gen = &patch_stream().unwrap()[0]; // v1 -> v2
    let plan = RolloutPlan::staged(0, PauseSlo::p99(Duration::from_secs(5)), BreachAction::Hold)
        .with_soak(Duration::from_millis(10));
    let orch = Orchestrator::new(&fleets).skew_bound(1);
    let report = orch.rollout(&gen.patch, &plan).unwrap();

    // 1 worker -> 25% -> 100% over the 12-worker global set.
    assert_eq!(report.cohorts.len(), 3);
    assert_eq!(report.cohorts[0].workers, vec![0]);
    assert_eq!(report.cohorts[1].workers, vec![1, 2]);
    assert_eq!(report.cohorts[2].workers.len(), 9);
    // Soak windows separate cohorts but not the finish line.
    assert!(report.cohorts[0].soaked && report.cohorts[1].soaked);
    assert!(!report.cohorts[2].soaked);

    assert!(matches!(report.card.outcome, RolloutOutcome::Completed));
    assert!(report.card.converged(), "{:?}", report.card.final_versions);
    assert!(report.card.final_versions.iter().all(|v| v == "v2"));
    assert_eq!(report.fleet_report.applied.len(), 12);
    assert!(report.fleet_report.failed.is_empty());
    assert_eq!(report.fleets, 3);
    assert_eq!(report.resumed_from, 0);
    // At most two versions ever served at once, and the exposure window
    // is accounted for.
    assert!(report.max_skew <= 1);
    assert!(report.skew_window > Duration::ZERO);

    // The shared journal reconstructs full cohort progress, and every
    // update's lifecycle obeys the phase laws.
    assert_eq!(
        Orchestrator::completed_cohorts(&journal, &gen.patch, &plan, 12),
        3
    );
    for id in journal.update_ids() {
        validate_lifecycle(&journal.events_for(id)).unwrap();
    }

    // The machine- and human-readable summaries cover the run.
    let json = report.to_json();
    assert!(json.contains("\"fleets\":3"), "{json}");
    assert!(json.contains("\"cohorts\":["), "{json}");
    let text = report.render();
    assert!(text.contains("cohort"), "{text}");

    for f in &fleets {
        f.drain(120).unwrap();
    }
    for f in fleets {
        f.shutdown().unwrap();
    }
}

#[test]
fn breach_in_the_quarter_cohort_chain_rolls_back_to_v1() {
    let (fs, mut wl) = fixture();
    let journal = Journal::new();
    // Global worker 1 (fleet 0, local 1) sits in the 25% cohort and
    // pauses 50ms past any reasonable budget. The margin between the
    // fault and the budget is deliberately wide: an unfaulted worker's
    // genuine debug-mode apply pause must never read as the breach.
    let fleets = shard_fleets(
        3,
        4,
        &fs,
        &journal,
        Some((
            0,
            1,
            FaultPlan {
                pause_delay: Some(Duration::from_millis(50)),
                ..FaultPlan::default()
            },
        )),
    );
    for f in &fleets {
        f.push_requests(wl.batch(120));
    }
    let stream = patch_stream().unwrap();
    let orch = Orchestrator::new(&fleets).skew_bound(2);

    // First hop v1 -> v2, ungated (the faulty worker's slow pause is an
    // operator-accepted cost here) — this seeds every ring with one
    // rollback hop.
    let r1 = orch
        .rollout(&stream[0].patch, &RolloutPlan::simultaneous())
        .unwrap();
    assert!(r1.card.final_versions.iter().all(|v| v == "v2"));

    // Second hop v2 -> v3, staged and gated: the canary passes, the 25%
    // cohort breaches, and the reaction walks the whole fleet's rollback
    // chains down to v1 — undoing the *previous* rollout too.
    let plan = RolloutPlan::staged(
        0,
        PauseSlo::p99(Duration::from_millis(20)),
        BreachAction::ChainRollBack {
            to_version: "v1".to_string(),
        },
    );
    for f in &fleets {
        f.push_requests(wl.batch(120));
    }
    let report = orch.rollout(&stream[1].patch, &plan).unwrap();

    match &report.card.outcome {
        RolloutOutcome::RolledBack(HealthBreach::PauseSlo {
            worker, observed, ..
        }) => {
            assert_eq!(*worker, 1);
            assert!(*observed >= Duration::from_millis(50));
        }
        other => panic!("expected a pause-SLO chain rollback, got {other:?}"),
    }
    // The breach stopped the plan inside cohort 1; the 100% cohort never
    // ran.
    assert_eq!(report.cohorts.len(), 2);
    assert_eq!(report.cohorts[1].workers, vec![1, 2]);

    // Chain rollback: the three v3 workers walked two hops each, the
    // nine v2 workers one hop — fifteen restores, all converging on v1.
    assert_eq!(report.card.rollbacks.len(), 15);
    assert!(report.card.converged(), "{:?}", report.card.final_versions);
    assert!(report.card.final_versions.iter().all(|v| v == "v1"));
    assert!(orch.live_versions().iter().all(|v| v == "v1"));

    // Mid-rollback, v1, v2 and v3 all served at once — the skew bound of
    // 2 held exactly.
    assert_eq!(report.max_skew, 2);
    assert!(report.skew_window > Duration::ZERO);

    // Every restore is journaled as a RolledBack lifecycle, and every
    // lifecycle (forward and backward, across both rollouts) validates.
    let rolled_back = journal
        .events()
        .iter()
        .filter(|e| e.stage == Stage::RolledBack)
        .count();
    assert_eq!(rolled_back, 15);
    for id in journal.update_ids() {
        validate_lifecycle(&journal.events_for(id)).unwrap();
    }

    // Post-rollback traffic is served by v1 everywhere: v2+ responses
    // carry a Content-Type header, v1 responses do not.
    for f in &fleets {
        f.drain(240).unwrap();
        let before = f.completions().len();
        f.push_requests(wl.batch(40));
        f.drain(before + 40).unwrap();
        let done = f.completions();
        assert!(
            done[before..]
                .iter()
                .all(|c| !c.response.contains("Content-Type:")),
            "post-rollback responses must come from v1",
        );
    }
    for f in fleets {
        f.shutdown().unwrap();
    }
}

#[test]
fn orchestrator_resumes_from_the_persisted_journal() {
    let (fs, mut wl) = fixture();
    let dir = std::env::temp_dir().join(format!("dsu-orch-suite-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("journal.jsonl");
    let journal = Journal::with_wal(&wal).unwrap();

    let fleets = shard_fleets(2, 2, &fs, &journal, None);
    for f in &fleets {
        f.push_requests(wl.batch(60));
    }
    let gen = &patch_stream().unwrap()[0]; // v1 -> v2
    let plan = RolloutPlan {
        canary: 0,
        cohorts: vec![
            flashed::CohortSpec::Count(1),
            flashed::CohortSpec::Count(2),
            flashed::CohortSpec::Fraction(1.0),
        ],
        soak: Duration::ZERO,
        gate: Some(PauseSlo::p99(Duration::from_secs(5))),
        latency_slo: None,
        error_budget: None,
        on_breach: BreachAction::Hold,
    };

    // Drive exactly one cohort, then "crash" the orchestrator (drop it;
    // the worker fleets — separate processes in the deployment story —
    // keep serving).
    {
        let orch = Orchestrator::new(&fleets).skew_bound(1);
        let partial = orch.rollout_span(&gen.patch, &plan, 0, Some(1)).unwrap();
        assert_eq!(partial.cohorts.len(), 1);
        assert_eq!(partial.cohorts[0].workers, vec![0]);
    }

    // A fresh coordinator reads the WAL from disk and resumes at the
    // first incomplete cohort.
    let recovered = Journal::recover(&wal).unwrap();
    assert_eq!(
        Orchestrator::completed_cohorts(&recovered, &gen.patch, &plan, 4),
        1
    );
    let orch = Orchestrator::new(&fleets).skew_bound(1);
    let report = orch.resume(&gen.patch, &plan, &recovered).unwrap();
    assert_eq!(report.resumed_from, 1);
    assert_eq!(
        report.cohorts.iter().map(|c| c.index).collect::<Vec<_>>(),
        vec![1, 2]
    );
    assert!(matches!(report.card.outcome, RolloutOutcome::Completed));
    assert!(report.card.final_versions.iter().all(|v| v == "v2"));
    assert!(report.max_skew <= 1);

    // The persisted stream spans the crash: re-recovering from disk sees
    // all three cohorts committed and every lifecycle valid across the
    // restart boundary.
    let after = Journal::recover(&wal).unwrap();
    assert_eq!(
        Orchestrator::completed_cohorts(&after, &gen.patch, &plan, 4),
        3
    );
    assert!(!after.update_ids().is_empty());
    for id in after.update_ids() {
        validate_lifecycle(&after.events_for(id)).unwrap();
    }

    for f in &fleets {
        f.drain(60).unwrap();
    }
    for f in fleets {
        f.shutdown().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn skew_bound_violation_is_a_typed_error() {
    let (fs, mut wl) = fixture();
    let journal = Journal::new();
    let fleets = shard_fleets(2, 1, &fs, &journal, None);
    for f in &fleets {
        f.push_requests(wl.batch(40));
    }
    let gen = &patch_stream().unwrap()[0];

    // A zero bound forbids any version mix at all: the first worker's
    // apply necessarily crosses it.
    let orch = Orchestrator::new(&fleets).skew_bound(0);
    let err = orch
        .rollout(&gen.patch, &RolloutPlan::rolling())
        .unwrap_err();
    assert!(matches!(
        err,
        FleetError::SkewExceeded {
            observed: 1,
            bound: 0
        }
    ));
    assert_eq!(
        err.to_string(),
        "version skew 1 exceeded the configured bound 0"
    );

    for f in &fleets {
        f.drain(40).unwrap();
    }
    for f in fleets {
        f.shutdown().unwrap();
    }
}
