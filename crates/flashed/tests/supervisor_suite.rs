//! Worker supervision under injected crashes: typed crash failures,
//! restart-from-persisted-state recovery, edge failover and restore,
//! restart-budget degradation, and the full chaos acceptance run (staged
//! rollout across shard fleets with a mid-transform kill).

use std::time::{Duration, Instant};

use dsu_obs::journal::validate_lifecycle;
use dsu_obs::Journal;
use flashed::{
    patch_stream, versions, BreachAction, CrashPoint, EdgeConfig, ErrorRateWindow, FaultPlan,
    Fleet, FleetConfig, FleetError, Orchestrator, PauseSlo, RolloutOutcome, RolloutPlan,
    RolloutPolicy, RoutePolicy, SimFs, SupervisorConfig, WorkerFailure, Workload,
};

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(16, 256, 7);
    let wl = Workload::new(fs.paths(), 1.0, 53);
    (fs, wl)
}

/// Polls `cond` until it holds or `deadline` elapses; panics with `what`
/// on timeout so hung recovery paths fail fast instead of wedging CI.
fn await_cond<F: Fn() -> bool>(deadline: Duration, what: &str, cond: F) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[test]
fn injected_crash_surfaces_as_a_typed_failure() {
    let (fs, mut wl) = fixture();
    // No supervisor: the crash is terminal and shutdown must say exactly
    // what killed the worker (not a generic panic).
    let fleet = Fleet::start_cfg(&FleetConfig::new(2), &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(40));
    fleet.drain(40).unwrap();

    fleet.inject_worker_fault(
        0,
        FaultPlan {
            crash_at: Some(CrashPoint::Serving),
            ..FaultPlan::default()
        },
    );
    // The crash fires at the worker's next pass through the serving seam;
    // its heartbeat stops advancing once the thread is dead.
    await_cond(Duration::from_secs(5), "worker 0 to die", || {
        let a = fleet.worker_heartbeat(0);
        std::thread::sleep(Duration::from_millis(2));
        fleet.worker_heartbeat(0) == a
    });

    // The survivor keeps draining the shared queue alone.
    fleet.push_requests(wl.batch(40));
    fleet.drain(80).unwrap();

    let err = fleet.shutdown().unwrap_err();
    match err {
        FleetError::Worker {
            worker: 0,
            cause: WorkerFailure::Crashed(CrashPoint::Serving),
        } => {}
        other => panic!("expected a typed serving crash, got {other}"),
    }
}

#[test]
fn supervisor_restarts_a_serving_crash_and_the_worker_rejoins() {
    let (fs, mut wl) = fixture();
    let journal = Journal::new();
    let cfg = FleetConfig::new(2)
        .supervised()
        .with_telemetry()
        .with_journal(journal.clone());
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(40));
    fleet.drain(40).unwrap();

    fleet.inject_worker_fault(
        0,
        FaultPlan {
            crash_at: Some(CrashPoint::Serving),
            ..FaultPlan::default()
        },
    );
    await_cond(Duration::from_secs(10), "supervised restart", || {
        fleet.worker_epoch(0) >= 1
    });
    assert!(fleet.worker_up(0));

    // No updates had landed, so the replay had nothing to walk: the fresh
    // incarnation reboots straight onto the boot version.
    let reports = fleet.restart_reports();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.worker, 0);
    assert!(r.failure.contains("crashed (serving)"), "{}", r.failure);
    assert_eq!(r.replayed_to, "v1");
    assert!(r.total >= r.detect, "{:?} >= {:?}", r.total, r.detect);

    // The restarted incarnation serves again, and the telemetry layer saw
    // the whole arc: down, restarted, up.
    fleet.push_requests(wl.batch(40));
    fleet.drain(80).unwrap();
    let t = fleet.telemetry().unwrap();
    assert_eq!(t.worker_restarts(), 1);
    assert_eq!(t.worker_up(0), 1);
    fleet.shutdown().unwrap();
}

#[test]
fn mid_transform_crash_recovers_from_the_persisted_ring_and_redrives() {
    let (fs, mut wl) = fixture();
    let journal = Journal::new();
    let cfg = FleetConfig::new(2)
        .supervised()
        .with_telemetry()
        .with_journal(journal.clone());
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    let stream = patch_stream().unwrap();

    // Seed the crash-durable state: v1 -> v2 lands everywhere, so each
    // worker persists a one-hop chain plus its snapshot ring.
    fleet.push_requests(wl.batch(60));
    fleet
        .rollout(&stream[0].patch, RolloutPolicy::Rolling)
        .unwrap();

    // Kill worker 1 at the worst spot of the next hop: inside the
    // transform phase, bindings already flipped.
    fleet.inject_worker_fault(
        1,
        FaultPlan {
            crash_at: Some(CrashPoint::MidTransform),
            ..FaultPlan::default()
        },
    );
    fleet.push_requests(wl.batch(60));
    let report = fleet
        .rollout(&stream[1].patch, RolloutPolicy::Rolling)
        .unwrap();

    // The rollout healed itself: the supervisor replayed the persisted
    // chain back to the pre-crash version, the driver re-drove the patch
    // on the fresh incarnation, and the fleet converged.
    assert_eq!(report.applied.len(), 2);
    assert!(fleet.live_versions().iter().all(|v| v == "v3"));
    assert!(fleet.worker_up(1));
    assert!(fleet.worker_epoch(1) >= 1);
    let reports = fleet.restart_reports();
    assert!(!reports.is_empty());
    let r = reports.iter().find(|r| r.worker == 1).unwrap();
    assert!(r.failure.contains("mid-transform"), "{}", r.failure);
    assert_eq!(
        r.replayed_to, "v2",
        "replay must reach the persisted chain tip"
    );
    assert!(r.replay > Duration::ZERO);

    // Every lifecycle the crash touched closed: the interrupted apply is
    // Aborted, the re-driven one Committed — no dangling Enqueued.
    for id in journal.update_ids() {
        validate_lifecycle(&journal.events_for(id)).unwrap();
    }

    fleet.drain(120).unwrap();
    fleet.shutdown().unwrap();
}

#[test]
fn exhausted_restart_budget_degrades_instead_of_looping() {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(2).with_supervision(SupervisorConfig {
        max_restarts: 0,
        ..SupervisorConfig::default()
    });
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    fleet.inject_worker_fault(
        0,
        FaultPlan {
            crash_at: Some(CrashPoint::Serving),
            ..FaultPlan::default()
        },
    );
    // A zero budget means the first death is final: no restart, worker
    // marked failed, fleet degraded but serving.
    await_cond(Duration::from_secs(10), "the supervisor to give up", || {
        !fleet.worker_up(0)
    });
    std::thread::sleep(Duration::from_millis(5));
    assert!(fleet.restart_reports().is_empty());
    assert_eq!(fleet.worker_epoch(0), 0);

    fleet.push_requests(wl.batch(40));
    fleet.drain(40).unwrap();

    let err = fleet.shutdown().unwrap_err();
    match err {
        FleetError::Worker {
            worker: 0,
            cause: WorkerFailure::GaveUp { restarts: 0 },
        } => {}
        other => panic!("expected a give-up report, got {other}"),
    }
}

#[test]
fn edge_fails_over_a_dead_worker_and_restores_it_after_restart() {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(3).supervised().with_telemetry().with_edge(
        EdgeConfig::new(RoutePolicy::ConsistentHash)
            .queue_capacity(4096)
            .shed_responses(true),
    );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    let edge = fleet.edge().unwrap().clone();

    let warm = edge.submit_all(wl.batch(90));
    assert_eq!(warm.shed, 0);
    fleet.drain(90).unwrap();

    fleet.inject_worker_fault(
        2,
        FaultPlan {
            crash_at: Some(CrashPoint::Serving),
            ..FaultPlan::default()
        },
    );
    // Keep traffic flowing across the death window: routing must skip the
    // dead inbox (ring successors take its vnodes) rather than queue into
    // a worker that will never pull again.
    let mut admitted = 90usize;
    let end = Instant::now() + Duration::from_secs(10);
    while fleet.worker_epoch(2) == 0 {
        assert!(
            Instant::now() < end,
            "timed out waiting for failover restart"
        );
        admitted += edge.submit_all(wl.batch(10)).admitted;
        std::thread::sleep(Duration::from_micros(500));
    }
    // The down transition was failed over exactly once and the restart
    // restored the worker's vnode ownership.
    assert_eq!(edge.failovers(), 1);
    assert!(edge.is_alive(2));
    assert_eq!(fleet.telemetry().unwrap().edge_failovers(), 1);

    // Every admitted request is answered — rerouted, served by a
    // survivor, or 503'd — never silently dropped.
    admitted += edge.submit_all(wl.batch(30)).admitted;
    fleet.drain(admitted).unwrap();
    assert_eq!(fleet.completions().len(), admitted);
    fleet.shutdown().unwrap();
}

/// The chaos acceptance run: a staged rollout across three shard fleets
/// over one merged journal, with a mid-transform kill inside the 25%
/// cohort. The supervisor restarts the victim from its persisted ring,
/// replays it to the cohort's version, the driver re-drives the hop, the
/// edge fails traffic over and restores it — and the rollout still
/// finishes green under its latency SLO with zero lifecycle gaps.
#[test]
fn chaos_acceptance_staged_rollout_survives_a_mid_transform_kill() {
    let (fs, mut wl) = fixture();
    let journal = Journal::new();
    let fleets: Vec<Fleet> = (0..3)
        .map(|s| {
            let cfg = FleetConfig::new(3)
                .with_journal(journal.clone())
                .worker_base(s * 3)
                .supervised()
                .with_telemetry()
                .with_edge(
                    EdgeConfig::new(RoutePolicy::ConsistentHash)
                        .queue_capacity(4096)
                        .shed_responses(true),
                );
            Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap()
        })
        .collect();
    let stream = patch_stream().unwrap();
    let orch = Orchestrator::new(&fleets).skew_bound(2);

    // Hop 1 (v1 -> v2) seeds every worker's persisted chain and ring.
    let mut submitted = [0usize; 3];
    for (i, f) in fleets.iter().enumerate() {
        submitted[i] += f.edge().unwrap().submit_all(wl.batch(60)).admitted;
    }
    let r1 = orch
        .rollout(&stream[0].patch, &RolloutPlan::simultaneous())
        .unwrap();
    assert!(r1.card.final_versions.iter().all(|v| v == "v2"));

    // Arm the kill on global worker 1 (fleet 0, local 1): it sits in the
    // 25% cohort of the staged hop and dies inside its transform phase.
    fleets[0].inject_worker_fault(
        1,
        FaultPlan {
            crash_at: Some(CrashPoint::MidTransform),
            ..FaultPlan::default()
        },
    );
    for (i, f) in fleets.iter().enumerate() {
        submitted[i] += f.edge().unwrap().submit_all(wl.batch(60)).admitted;
    }

    // Hop 2 (v2 -> v3), staged and fully gated: pause SLO, sojourn-based
    // latency SLO, and an error-rate budget — all generous enough that
    // recovery itself must not breach them.
    let plan = RolloutPlan::staged(0, PauseSlo::p99(Duration::from_secs(5)), BreachAction::Hold)
        .with_soak(Duration::from_millis(5))
        .with_latency_slo(PauseSlo::p99(Duration::from_secs(10)))
        .with_error_budget(ErrorRateWindow {
            max_ratio: 0.5,
            min_events: 20,
        });
    let report = orch.rollout(&stream[1].patch, &plan).unwrap();

    // Green end to end: the kill cost a restart and a re-drive, not the
    // rollout.
    assert!(
        matches!(report.card.outcome, RolloutOutcome::Completed),
        "{:?}",
        report.card.outcome
    );
    assert!(report.card.final_versions.iter().all(|v| v == "v3"));
    assert!(orch.live_versions().iter().all(|v| v == "v3"));

    // The restart really happened, from persisted state, back to the
    // cohort's pre-hop version.
    let restarts = fleets[0].restart_reports();
    assert!(
        !restarts.is_empty(),
        "the injected kill must restart worker 1"
    );
    let r = restarts.iter().find(|r| r.worker == 1).unwrap();
    assert!(r.failure.contains("mid-transform"), "{}", r.failure);
    assert_eq!(r.replayed_to, "v2");
    assert!(fleets[0].worker_epoch(1) >= 1);
    assert!(fleets[0].worker_up(1));
    assert_eq!(fleets[0].telemetry().unwrap().worker_restarts(), 1);

    // The edge failed the victim over and restored it.
    let edge = fleets[0].edge().unwrap();
    assert_eq!(edge.failovers(), 1);
    assert!((0..3).all(|w| edge.is_alive(w)));

    // Merged journal: every lifecycle across both hops, the abort, and
    // the re-drive validates — no lifecycle left open.
    assert!(!journal.update_ids().is_empty());
    for id in journal.update_ids() {
        validate_lifecycle(&journal.events_for(id)).unwrap();
    }

    // Every admitted request is eventually answered on every shard.
    for (i, f) in fleets.iter().enumerate() {
        submitted[i] += f.edge().unwrap().submit_all(wl.batch(30)).admitted;
        f.drain(submitted[i]).unwrap();
        assert_eq!(f.completions().len(), submitted[i]);
    }
    for f in fleets {
        f.shutdown().unwrap();
    }
}
