//! The telemetry layer end to end: per-server instruments, the fleet
//! scrape, journal/report agreement, version skew, and typed fleet
//! errors.

use std::time::Duration;

use dsu_obs::journal::validate_lifecycle;
use flashed::telemetry::names;
use flashed::{
    patch_stream, versions, CrashPoint, EdgeConfig, FaultPlan, Fleet, FleetConfig, FleetError,
    RolloutPolicy, RoutePolicy, Server, ServerShared, ServerTelemetry, SimFs, WorkerFailure,
    Workload,
};
use vm::LinkMode;

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(16, 256, 11);
    let wl = Workload::new(fs.paths(), 1.0, 23);
    (fs, wl)
}

#[test]
fn server_records_request_metrics_and_lifecycle() {
    let (fs, mut wl) = fixture();
    let tel = ServerTelemetry::new();
    let mut s = Server::start_with(
        LinkMode::Updateable,
        &versions::v1(),
        "v1",
        fs,
        ServerShared::new(),
        Some(tel.clone()),
    )
    .unwrap();

    s.push_requests(wl.batch(40));
    let gen = dsu_core::PatchGen::new()
        .generate(&versions::v1(), &versions::v2(), "v1", "v2")
        .unwrap();
    s.queue_patch(gen.patch);
    assert_eq!(s.serve().unwrap(), 40);

    // Request-path instruments saw every request.
    let text = tel.registry().prometheus_text();
    assert!(
        text.contains(&format!("{} 40", names::REQUESTS_PULLED)),
        "{text}"
    );
    assert!(text.contains(&format!("{} 40", names::RESPONSES)), "{text}");
    assert_eq!(tel.service_histogram().count(), 40);
    assert!(tel.service_histogram().sum() > Duration::ZERO);
    // The update paused once; the pause histogram observed it.
    assert_eq!(tel.update_pause_histogram().count(), 1);
    // VM counters were published at the serve boundary.
    assert!(tel.vm_stats().snapshot().instrs > 0);
    assert!(text.contains(names::VM_INSTRS), "{text}");

    // The patch's lifecycle is fully journalled and agrees with the
    // updater's report exactly.
    let events = tel.journal().events_for(1);
    validate_lifecycle(&events).unwrap();
    let report = &s.updater.log()[0];
    let phase_sum: Duration = events
        .iter()
        .filter(|e| dsu_obs::Stage::PHASES.contains(&e.stage))
        .filter_map(|e| e.dur)
        .sum();
    assert_eq!(phase_sum, report.timings.total());
}

#[test]
fn fleet_scrape_merges_workers_and_tracks_skew() {
    let (fs, mut wl) = fixture();
    let fleet =
        Fleet::start_telemetry(2, LinkMode::Updateable, &versions::v3(), "v3", &fs).unwrap();
    let tel = fleet.telemetry().unwrap();
    assert_eq!(tel.version_skew(), 0, "uniform fleet at boot");

    fleet.push_requests(wl.batch(200));
    let gen = &patch_stream().unwrap()[2]; // v3 -> v4
    let report = fleet.rollout(&gen.patch, RolloutPolicy::Rolling).unwrap();
    fleet.drain(200).unwrap();
    assert!(report.complete());
    assert_eq!(tel.version_skew(), 0, "skew settles once all workers apply");

    // Journal: one committed lifecycle per worker, phase sums exact.
    let timeline = tel.timeline();
    assert_eq!(timeline.len(), 2);
    for (worker, r) in &report.applied {
        let row = timeline
            .iter()
            .find(|row| row.worker == Some(*worker))
            .unwrap();
        assert!(row.committed);
        assert_eq!(row.phase_total, r.timings.total());
    }
    for id in tel.journal().update_ids() {
        validate_lifecycle(&tel.journal().events_for(id)).unwrap();
    }

    // The merged scrape carries per-worker series and the fleet gauges.
    let text = tel.scrape_text();
    for w in 0..2 {
        assert!(
            text.contains(&format!("{}{{worker=\"{w}\"}}", names::REQUESTS_PULLED)),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "{}_count{{worker=\"{w}\"}}",
                names::SERVICE_SECONDS
            )),
            "{text}"
        );
    }
    assert!(
        text.contains(&format!("{} 0", names::VERSION_SKEW)),
        "{text}"
    );
    assert!(text.contains(&format!("{} 1", names::ROLLOUTS)), "{text}");
    assert!(text.contains(&format!("{} 2", names::WORKERS)), "{text}");
    let json = tel.scrape_json();
    assert!(
        json.contains(&format!("\"name\":\"{}\"", names::VERSION_SKEW)),
        "{json}"
    );

    fleet.shutdown().unwrap();
}

#[test]
fn failed_worker_keeps_context_in_report_and_journal() {
    let (fs, mut wl) = fixture();
    let fleet =
        Fleet::start_telemetry(2, LinkMode::Updateable, &versions::v1(), "v1", &fs).unwrap();
    let gen = &patch_stream().unwrap()[0]; // v1 -> v2

    // Canary on worker 0 so the fleet-wide rollout fails there.
    let canary = fleet.remote(0);
    canary.enqueue(gen.patch.clone());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while canary.applied_count() == 0 {
        assert!(std::time::Instant::now() < deadline, "canary never applied");
        std::thread::sleep(Duration::from_micros(200));
    }

    fleet.push_requests(wl.batch(100));
    let report = fleet.rollout(&gen.patch, RolloutPolicy::Rolling).unwrap();
    assert_eq!(report.failed.len(), 1);
    let (worker, failure) = &report.failed[0];
    assert_eq!(*worker, 0);
    // Satellite context: the failure log entry names the transition and
    // the failing phase, not just the raw error.
    assert_eq!(failure.from_version, "v1");
    assert_eq!(failure.to_version, "v2");
    assert!(!failure.phase.is_empty());
    assert!(failure
        .to_string()
        .contains(&format!("v1 -> v2 failed in {}", failure.phase)));

    // The journal closed that lifecycle as aborted, naming the phase.
    let tel = fleet.telemetry().unwrap();
    let aborted = tel
        .timeline()
        .into_iter()
        .find(|r| !r.committed && r.resolved_at.is_some())
        .expect("an aborted lifecycle");
    assert_eq!(aborted.worker, Some(0));
    assert!(
        aborted
            .detail
            .as_deref()
            .unwrap()
            .starts_with(failure.phase),
        "{:?}",
        aborted.detail
    );

    fleet.drain(100).unwrap();
    fleet.shutdown().unwrap();
}

#[test]
fn supervision_metrics_cover_restart_and_failover() {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(2).supervised().with_telemetry().with_edge(
        EdgeConfig::new(RoutePolicy::ConsistentHash)
            .queue_capacity(4096)
            .shed_responses(true),
    );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    let tel = fleet.telemetry().unwrap();
    let edge = fleet.edge().unwrap().clone();

    // Boot state: both liveness gauges up, no restarts, no failovers.
    let text = tel.scrape_text();
    for w in 0..2 {
        assert!(
            text.contains(&format!("{}{{worker=\"{w}\"}} 1", names::WORKER_UP)),
            "{text}"
        );
    }
    assert!(
        text.contains(&format!("{} 0", names::WORKER_RESTARTS)),
        "{text}"
    );
    assert!(
        text.contains(&format!("{} 0", names::EDGE_FAILOVER)),
        "{text}"
    );

    let warm = edge.submit_all(wl.batch(60));
    assert_eq!(warm.shed, 0);
    fleet.drain(60).unwrap();

    // Kill worker 1 and let the supervisor bring it back: the death is
    // one edge failover (down transition rerouted) and one restart.
    fleet.inject_worker_fault(
        1,
        FaultPlan {
            crash_at: Some(CrashPoint::Serving),
            ..FaultPlan::default()
        },
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while fleet.worker_epoch(1) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "supervised restart never completed"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    assert_eq!(tel.worker_restarts(), 1);
    assert_eq!(tel.edge_failovers(), 1);
    assert_eq!(tel.worker_up(1), 1, "rejoin must restore the gauge");

    // The scrape carries the whole story: counters moved, gauge restored.
    let text = tel.scrape_text();
    assert!(
        text.contains(&format!("{} 1", names::WORKER_RESTARTS)),
        "{text}"
    );
    assert!(
        text.contains(&format!("{} 1", names::EDGE_FAILOVER)),
        "{text}"
    );
    assert!(
        text.contains(&format!("{}{{worker=\"1\"}} 1", names::WORKER_UP)),
        "{text}"
    );

    // The restarted incarnation serves through the edge like any other.
    let before = fleet.completions().len();
    let tail = edge.submit_all(wl.batch(40));
    fleet.drain(before + tail.admitted).unwrap();
    fleet.shutdown().unwrap();
}

#[test]
fn fleet_errors_are_typed_and_displayed() {
    // Boot failure: garbage source cannot compile.
    let fs = SimFs::generate_fixed(4, 64, 1);
    let err = Fleet::start(2, LinkMode::Updateable, "not popcorn", "v1", &fs).unwrap_err();
    match &err {
        FleetError::Worker {
            worker,
            cause: WorkerFailure::Boot(msg),
        } => {
            assert_eq!(*worker, 0);
            assert!(msg.contains("boot"), "{msg}");
        }
        other => panic!("expected a boot failure, got {other}"),
    }
    assert!(err.to_string().starts_with("worker 0:"), "{err}");

    // The other variants render their context. A sharded-queue stall
    // attributes its backlog per worker; a shared-queue stall reports
    // ingress alone.
    let e = FleetError::QueueStall {
        ingress: 3,
        per_worker: vec![0, 4, 1],
        completed: 7,
        expected: 10,
    };
    assert_eq!(
        e.to_string(),
        "fleet did not drain: 3 ingress + [0, 4, 1] per-worker queued, 7/10 completed"
    );
    let e = FleetError::QueueStall {
        ingress: 3,
        per_worker: Vec::new(),
        completed: 7,
        expected: 10,
    };
    assert_eq!(
        e.to_string(),
        "fleet did not drain: 3 ingress, 7/10 completed"
    );
    let e = FleetError::RolloutStalled { worker: 2 };
    assert_eq!(e.to_string(), "worker 2 did not reach an update boundary");
    let e = FleetError::Worker {
        worker: 1,
        cause: WorkerFailure::Panic,
    };
    assert_eq!(e.to_string(), "worker 1: panicked");
    // FleetError is a real error type.
    let _: &dyn std::error::Error = &e;
}
