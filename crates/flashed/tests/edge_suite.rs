//! The network edge end to end: admission control and shedding,
//! backpressure round-trips, routing stability, routed-fleet serving
//! with edge telemetry, per-worker stall attribution, and a staged
//! rollout under live load holding its latency SLO.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsu_obs::journal::validate_lifecycle;
use flashed::telemetry::names;
use flashed::{
    parse_response, patch_stream, versions, BreachAction, Completion, Edge, EdgeConfig, EdgeError,
    Fleet, FleetConfig, FleetError, FleetTelemetry, PauseSlo, RolloutOutcome, RolloutPlan,
    RoutePolicy, ServerShared, SimFs, Workload,
};
use vm::LinkMode;

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(16, 256, 11);
    let wl = Workload::new(fs.paths(), 1.0, 23);
    (fs, wl)
}

/// Exact nearest-rank p99 over pulled completions' sojourn.
fn p99_sojourn(completions: &[Completion]) -> Duration {
    let mut times: Vec<Duration> = completions
        .iter()
        .filter(|c| c.pulled)
        .map(|c| c.queue_wait + c.service)
        .collect();
    assert!(!times.is_empty());
    times.sort();
    let idx = ((0.99 * times.len() as f64).ceil() as usize).clamp(1, times.len());
    times[idx - 1]
}

#[test]
fn overflow_sheds_typed_errors_503s_and_counters() {
    // No workers pull: a capacity-2 inbox admits 2, sheds the rest.
    let shared = ServerShared::new();
    let tel = Arc::new(FleetTelemetry::new(1));
    let edge = Edge::new(
        1,
        &EdgeConfig::new(RoutePolicy::RoundRobin).queue_capacity(2),
        shared.clone(),
        Some(Arc::clone(&tel)),
    );
    for i in 0..2 {
        assert_eq!(edge.submit(format!("GET /doc{i}.html HTTP/1.0")), Ok(0));
    }
    let err = edge
        .submit("GET /late.html HTTP/1.0".to_string())
        .unwrap_err();
    match err {
        EdgeError::Overloaded {
            worker,
            depth,
            capacity,
        } => {
            assert_eq!(worker, 0);
            assert_eq!(depth, 2);
            assert_eq!(capacity, 2);
        }
        EdgeError::Unavailable => panic!("the worker is up; expected an overflow shed"),
    }
    assert_eq!(
        edge.submit("GET /later.html HTTP/1.0".to_string()).ok(),
        None
    );

    // Counters: edge totals, the worker's shed counter, the
    // coordinator's admitted/shed counters — all agree.
    assert_eq!(edge.admitted(), 2);
    assert_eq!(edge.shed(), 2);
    assert_eq!(edge.inbox(0).sheds(), 2);
    assert_eq!(tel.edge_admitted(), 2);
    assert_eq!(tel.edge_shed(), 2);
    assert_eq!(tel.worker(0).edge_sheds(), 2);

    // Each shed synthesized a client-visible 503 with Retry-After; they
    // are completions (drain counts them) but not pulled (latency stats
    // skip them).
    let done = shared.take_completions();
    assert_eq!(done.len(), 2);
    for c in &done {
        assert!(!c.pulled);
        let resp = parse_response(&c.response).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("0"));
    }
}

#[test]
fn backpressure_roundtrip_admission_resumes_after_drain() {
    let edge = Edge::new(
        1,
        &EdgeConfig::new(RoutePolicy::RoundRobin)
            .queue_capacity(4)
            .shed_responses(false),
        ServerShared::new(),
        None,
    );
    let report = edge.submit_all((0..6).map(|i| format!("GET /d{i}.html HTTP/1.0")));
    assert_eq!(report.admitted, 4);
    assert_eq!(report.shed, 2);
    assert_eq!(edge.pressure(), 1.0, "full inbox signals maximum pressure");

    // A worker drains two requests; the depth mirror follows, pressure
    // falls, and the very next submission is admitted again.
    assert_eq!(
        edge.inbox(0).pop().unwrap().request,
        "GET /d0.html HTTP/1.0"
    );
    assert_eq!(
        edge.inbox(0).pop().unwrap().request,
        "GET /d1.html HTTP/1.0"
    );
    assert_eq!(edge.depths(), vec![2]);
    assert!(edge.pressure() < 1.0);
    assert_eq!(edge.submit("GET /d6.html HTTP/1.0".to_string()), Ok(0));
    assert_eq!(edge.queued(), 3);
}

#[test]
fn consistent_hash_keys_stay_put_when_the_fleet_grows() {
    let cfg = EdgeConfig::new(RoutePolicy::ConsistentHash);
    let edge8 = Edge::new(8, &cfg, ServerShared::new(), None);
    let edge9 = Edge::new(9, &cfg, ServerShared::new(), None);
    let mut moved = 0;
    for i in 0..2000 {
        let req = format!("GET /site/page-{i}.html HTTP/1.0");
        let (w8, w9) = (edge8.route(&req), edge9.route(&req));
        if w8 != w9 {
            // Growth only ever moves a key to the new worker; nothing
            // reshuffles between survivors.
            assert_eq!(w9, 8, "key {i} moved {w8} -> {w9}, not to the new worker");
            moved += 1;
        }
    }
    // Roughly 1/9 of the keyspace lands on the newcomer.
    assert!((50..600).contains(&moved), "moved {moved} of 2000");

    // Same path, different query: one cache shard.
    assert_eq!(
        edge8.route("GET /site/page-7.html?a=1 HTTP/1.0"),
        edge8.route("GET /site/page-7.html?b=2 HTTP/1.0")
    );
}

#[test]
fn routed_fleet_serves_correctly_and_exports_edge_series() {
    let (fs, mut wl) = fixture();
    let fs_copy = fs.clone();
    let cfg = FleetConfig::new(3)
        .link_mode(LinkMode::Updateable)
        .with_edge(EdgeConfig::new(RoutePolicy::ConsistentHash))
        .with_telemetry();
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();

    // Legacy ingress: push_requests lands on the shared queue; the
    // acceptor routes it into the inboxes.
    let reqs = wl.batch(200);
    fleet.push_requests(reqs.clone());
    fleet.drain(200).unwrap();
    let done = fleet.completions();
    assert_eq!(done.len(), 200);
    for c in &done {
        assert!(c.pulled, "no sheds expected under default capacity");
        let resp = parse_response(&c.response).unwrap();
        assert_eq!(resp.status, 200);
    }
    // Responses match the filesystem (completion order is fleet-wide,
    // so check membership, not ordering).
    let mut bodies: Vec<String> = done
        .iter()
        .map(|c| parse_response(&c.response).unwrap().body)
        .collect();
    bodies.sort();
    let mut expected: Vec<String> = reqs
        .iter()
        .map(|r| fs_copy.read(r.split(' ').nth(1).unwrap()).unwrap())
        .collect();
    expected.sort();
    assert_eq!(bodies, expected);

    let edge = fleet.edge().expect("routed fleet exposes its edge");
    assert_eq!(edge.admitted(), 200);
    assert_eq!(edge.shed(), 0);
    assert_eq!(edge.queued(), 0, "drained fleet holds nothing");

    // The scrape carries the per-worker edge gauges, the coordinator's
    // admission counters, and the sojourn histograms.
    let tel = fleet.telemetry().unwrap();
    assert_eq!(tel.edge_admitted(), 200);
    let text = tel.scrape_text();
    for w in 0..3 {
        assert!(
            text.contains(&format!("{}{{worker=\"{w}\"}}", names::EDGE_QUEUE_DEPTH)),
            "{text}"
        );
        assert!(
            text.contains(&format!("{}{{worker=\"{w}\"}}", names::EDGE_SHED)),
            "{text}"
        );
    }
    assert!(
        text.contains(&format!("{} 200", names::EDGE_ADMITTED)),
        "{text}"
    );
    assert!(
        text.contains(&format!("{} 0", names::EDGE_SHED_TOTAL)),
        "{text}"
    );
    assert!(text.contains(names::SOJOURN_SECONDS), "{text}");
    let json = tel.scrape_json();
    assert!(
        json.contains(&format!("\"name\":\"{}\"", names::EDGE_QUEUE_DEPTH)),
        "{json}"
    );

    // Sojourn was recorded for every routed pull: queue wait is real
    // (admission-to-pull), so sojourn >= service.
    assert!(done.iter().any(|c| c.queue_wait > Duration::ZERO));

    fleet.shutdown().unwrap();
}

#[test]
fn queue_stall_attributes_backlog_per_worker() {
    let (fs, _) = fixture();
    let cfg = FleetConfig::new(3)
        .link_mode(LinkMode::Updateable)
        .with_edge(EdgeConfig::new(RoutePolicy::RoundRobin))
        .rollout_deadline(Duration::from_millis(200));
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();

    // Expecting completions that never arrive: the stall report carries
    // one queued count per worker (here all empty — the point is the
    // per-worker shape, proven non-empty in telemetry_suite's Display
    // checks).
    match fleet.drain(5).unwrap_err() {
        FleetError::QueueStall {
            ingress,
            per_worker,
            completed,
            expected,
        } => {
            assert_eq!(ingress, 0);
            assert_eq!(per_worker, vec![0, 0, 0]);
            assert_eq!(completed, 0);
            assert_eq!(expected, 5);
        }
        other => panic!("expected a queue stall, got {other}"),
    }
    fleet.shutdown().unwrap();
}

#[test]
fn staged_rollout_under_load_holds_the_sojourn_slo() {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(4)
        .link_mode(LinkMode::Updateable)
        .with_edge(EdgeConfig::new(RoutePolicy::ConsistentHash).queue_capacity(4096))
        .with_telemetry();
    let fleet = Fleet::start_cfg(&cfg, &versions::v3(), "v3", &fs).unwrap();

    // Calibrate this build's capacity (debug vs release differ an order
    // of magnitude), then hold ~40% of it through the rollout.
    let t0 = Instant::now();
    fleet.push_requests(wl.batch(400));
    fleet.drain(400).unwrap();
    let rps = 400.0 / t0.elapsed().as_secs_f64();
    fleet.shared().take_completions();
    let rate = 0.4 * rps;

    let stop = Arc::new(AtomicBool::new(false));
    let edge = Arc::clone(fleet.edge().unwrap());
    let texts = wl.batch(512);
    let pump = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Paced submission: bursts of 10 at the calibrated rate,
            // at least 400 requests so load spans the whole rollout.
            let burst = 10;
            let gap = Duration::from_secs_f64(burst as f64 / rate);
            let mut next = texts.iter().cycle().cloned();
            let mut offered = 0usize;
            let mut shed = 0usize;
            while !stop.load(Ordering::Relaxed) || offered < 400 {
                for _ in 0..burst {
                    offered += 1;
                    if edge.submit(next.next().unwrap()).is_err() {
                        shed += 1;
                    }
                }
                std::thread::sleep(gap);
            }
            (offered, shed)
        })
    };

    let gen = &patch_stream().unwrap()[2]; // v3 -> v4
    let plan = RolloutPlan::staged(
        0,
        PauseSlo {
            quantile: 0.99,
            max: Duration::from_secs(2),
        },
        BreachAction::Hold,
    )
    .with_soak(Duration::from_millis(30));
    let report = fleet.rollout_plan(&gen.patch, &plan).unwrap();
    stop.store(true, Ordering::Relaxed);
    let (offered, shed) = pump.join().unwrap();

    // Every offer completes: admissions serve, sheds synthesized 503s.
    fleet.drain(offered).unwrap();
    let done = fleet.shared().take_completions();
    assert_eq!(done.len(), offered);

    // Acceptance: the staged rollout converged on v4 with load applied
    // throughout, and p99 sojourn held the SLO.
    assert!(matches!(report.card.outcome, RolloutOutcome::Completed));
    assert!(report.card.converged());
    assert!(report.fleet_report.complete());
    assert_eq!(report.fleet_report.applied.len(), 4);
    let p99 = p99_sojourn(&done);
    assert!(
        p99 <= Duration::from_millis(500),
        "p99 sojourn {p99:?} broke the 500ms SLO (offered {offered}, shed {shed})"
    );

    // The journal closed every lifecycle the staged plan opened.
    let tel = fleet.telemetry().unwrap();
    let ids = tel.journal().update_ids();
    assert_eq!(ids.len(), 4, "one lifecycle per worker");
    for id in ids {
        validate_lifecycle(&tel.journal().events_for(id)).unwrap();
    }

    fleet.shutdown().unwrap();
}
