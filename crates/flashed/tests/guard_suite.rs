//! Self-healing rollouts end to end: cache invalidation, injected
//! faults under rolling rollouts, and guarded canary rollouts that hold
//! or roll the whole fleet back on a health breach.

use std::time::Duration;

use dsu_obs::journal::validate_lifecycle;
use dsu_obs::Stage;
use flashed::fault::{trapping_patch, FaultPlan};
use flashed::{
    parse_response, patch_stream, versions, BreachAction, EventLoopConfig, Fleet, FleetConfig,
    FleetError, HealthBreach, PauseSlo, RolloutOutcome, RolloutPolicy, ServeMode, Server,
    ServerShared, ServerTelemetry, SimFs, WorkerOverride, Workload,
};
use vm::LinkMode;

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(16, 256, 7);
    let wl = Workload::new(fs.paths(), 1.0, 41);
    (fs, wl)
}

fn forward_patch() -> dsu_core::Patch {
    patch_stream().unwrap()[0].patch.clone() // v1 -> v2
}

fn inverse_patch() -> dsu_core::Patch {
    dsu_core::PatchGen::new()
        .generate(&versions::v2(), &versions::v1(), "v2", "v1")
        .unwrap()
        .patch
}

#[test]
fn write_through_invalidation_serves_fresh_bytes() {
    let (fs, _) = fixture();
    let path = fs.paths()[0].clone();
    let tel = ServerTelemetry::new();
    let mut s = Server::start_full(
        LinkMode::Updateable,
        ServeMode::EventLoop(EventLoopConfig::default()),
        &versions::v1(),
        "v1",
        fs,
        ServerShared::new(),
        Some(tel.clone()),
    )
    .unwrap();

    // Warm the cache, then read through it.
    s.push_requests(vec![
        format!("GET {path} HTTP/1.0"),
        format!("GET {path} HTTP/1.0"),
    ]);
    s.serve().unwrap();
    let stale = parse_response(&s.completions()[1].response).unwrap().body;

    // Write-through: the cache drops its stale copy, so the next request
    // reads the new bytes from the device.
    s.write_file(&path, "fresh bytes after deploy");
    s.push_requests(vec![format!("GET {path} HTTP/1.0")]);
    s.serve().unwrap();
    let fresh = parse_response(&s.completions()[2].response).unwrap().body;
    assert_ne!(stale, fresh);
    assert_eq!(fresh, "fresh bytes after deploy");

    // The invalidation is visible as an eviction in the telemetry.
    assert!(
        tel.cache_evictions() >= 1,
        "evictions: {}",
        tel.cache_evictions()
    );
}

#[test]
fn rolling_rollout_survives_a_trapping_transformer_everywhere() {
    let (fs, mut wl) = fixture();
    let fleet =
        Fleet::start_telemetry(3, LinkMode::Updateable, &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(150));

    // Every worker rejects the patch (its transformer traps mid-apply);
    // apply_patch restores each worker's pre-apply snapshot and the
    // fleet keeps serving v1.
    let report = fleet
        .rollout(&trapping_patch(), RolloutPolicy::Rolling)
        .unwrap();
    assert!(report.applied.is_empty());
    assert_eq!(report.failed.len(), 3);
    for (_, f) in &report.failed {
        assert!(
            matches!(f.error, dsu_core::UpdateError::Transform { .. }),
            "{f}"
        );
    }
    assert!(fleet.live_versions().iter().all(|v| v == "v1"));

    // Every lifecycle the fleet journalled is well-formed — the three
    // aborted ones included.
    let tel = fleet.telemetry().unwrap();
    for id in tel.journal().update_ids() {
        validate_lifecycle(&tel.journal().events_for(id)).unwrap();
    }
    let aborted = tel
        .journal()
        .events()
        .iter()
        .filter(|e| e.stage == Stage::Aborted)
        .count();
    assert_eq!(aborted, 3);

    fleet.drain(150).unwrap();
    let completions = fleet.completions();
    assert_eq!(completions.len(), 150);
    assert!(completions
        .iter()
        .all(|c| parse_response(&c.response).is_some()));
    fleet.shutdown().unwrap();
}

#[test]
fn rolling_rollout_stall_becomes_partial_rollout() {
    let (fs, mut wl) = fixture();
    let cfg = FleetConfig::new(3)
        .with_telemetry()
        .rollout_deadline(Duration::from_millis(150))
        .override_worker(
            1,
            WorkerOverride {
                fault: FaultPlan {
                    gate_stall: Some(Duration::from_millis(500)),
                    ..FaultPlan::default()
                },
                ..WorkerOverride::default()
            },
        );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(60));

    let err = fleet
        .rollout(&forward_patch(), RolloutPolicy::Rolling)
        .unwrap_err();
    match &err {
        FleetError::PartialRollout { updated, remaining } => {
            assert_eq!(updated, &vec![0]);
            assert_eq!(remaining, &vec![1, 2]);
        }
        other => panic!("expected a partial rollout, got {other}"),
    }
    assert!(err.to_string().contains("stalled mid-fleet"), "{err}");

    // The stalled worker's patch was withdrawn — it cannot land later —
    // and the journal shows the cancellation as a well-formed abort.
    assert_eq!(fleet.remote(1).pending_count(), 0);
    let tel = fleet.telemetry().unwrap();
    for id in tel.journal().update_ids() {
        validate_lifecycle(&tel.journal().events_for(id)).unwrap();
    }
    assert!(tel.journal().events().iter().any(|e| e
        .detail
        .as_deref()
        .is_some_and(|d| d.contains("cancelled: rolling rollout stalled"))));

    // The fleet is left skewed exactly as the error reported.
    fleet.drain(60).unwrap();
    assert_eq!(fleet.live_versions(), vec!["v2", "v1", "v1"]);
    fleet.shutdown().unwrap();
}

#[test]
fn guarded_breach_rolls_every_updated_worker_back() {
    let (fs, mut wl) = fixture();
    // The canary's pauses are inflated well past the SLO budget.
    let cfg = FleetConfig::new(3).with_telemetry().override_worker(
        0,
        WorkerOverride {
            fault: FaultPlan {
                pause_delay: Some(Duration::from_millis(8)),
                ..FaultPlan::default()
            },
            ..WorkerOverride::default()
        },
    );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(150));

    let slo = PauseSlo::p99(Duration::from_millis(2));
    let (report, card) = fleet
        .rollout_guarded(
            &forward_patch(),
            0,
            slo,
            BreachAction::RollBack {
                inverse: Some(Box::new(inverse_patch())),
            },
        )
        .unwrap();

    // The canary breached on its pause tail and the rollout healed
    // itself: the forward apply landed, was judged, and was undone.
    match &card.outcome {
        RolloutOutcome::RolledBack(HealthBreach::PauseSlo {
            worker, observed, ..
        }) => {
            assert_eq!(*worker, 0);
            assert!(*observed >= Duration::from_millis(8), "{observed:?}");
        }
        other => panic!("expected a pause-SLO rollback, got {other:?}"),
    }
    assert_eq!(card.steps.len(), 1, "the breach stopped the rollout");
    assert_eq!(card.forward.len(), 1);
    assert_eq!(card.rollbacks.len(), 1);
    let (rb_worker, rb) = &card.rollbacks[0];
    assert_eq!(*rb_worker, 0);
    assert!(rb.rolled_back);
    assert_eq!(
        (rb.from_version.as_str(), rb.to_version.as_str()),
        ("v2", "v1")
    );

    // Every worker ends on the prior version.
    assert!(card.converged(), "{:?}", card.final_versions);
    assert!(fleet.live_versions().iter().all(|v| v == "v1"));
    // The fleet report carries both applies (forward and reverse) for
    // the canary and nothing for the untouched workers.
    assert_eq!(report.applied.len(), 2);
    assert!(report.failed.is_empty());

    // Journal: the reverse lifecycle is well-formed, closes with
    // `RolledBack`, and its phase sum equals the rollback report's
    // pipeline total exactly.
    let tel = fleet.telemetry().unwrap();
    for id in tel.journal().update_ids() {
        validate_lifecycle(&tel.journal().events_for(id)).unwrap();
    }
    let rb_event = tel
        .journal()
        .events()
        .into_iter()
        .find(|e| e.stage == Stage::RolledBack)
        .expect("a RolledBack lifecycle");
    let events = tel.journal().events_for(rb_event.update);
    let phase_sum: Duration = events
        .iter()
        .filter(|e| Stage::PHASES.contains(&e.stage))
        .filter_map(|e| e.dur)
        .sum();
    assert_eq!(phase_sum, rb.timings.total());
    assert_eq!(rb_event.dur, Some(rb.timings.total()));
    assert_eq!(card.rollback_total(), rb.timings.total());
    // The timeline artifact marks the worker as rolled back.
    assert!(tel
        .timeline()
        .iter()
        .any(|row| row.rolled_back && row.worker == Some(0)));

    // Guest responses stayed correct throughout the breach and the
    // rollback, and the fleet still serves afterwards.
    fleet.drain(150).unwrap();
    let completions = fleet.completions();
    assert_eq!(completions.len(), 150);
    assert!(completions
        .iter()
        .all(|c| parse_response(&c.response).is_some_and(|r| r.status == 200 || r.status == 404)));
    fleet.push_requests(wl.batch(30));
    fleet.drain(180).unwrap();

    // The report card is a usable artifact.
    let json = card.to_json();
    assert!(json.contains("\"kind\":\"rolled-back\""), "{json}");
    assert!(json.contains("\"converged\":true"), "{json}");
    assert!(card.render().contains("ROLLED BACK"));
    fleet.shutdown().unwrap();
}

#[test]
fn guarded_hold_keeps_the_line_and_read_errors_surface() {
    let (fs, mut wl) = fixture();
    // Worker 1's device reads are slowed so the faulted worker 0 (whose
    // failing reads return instantly) demonstrably pulls work — otherwise
    // worker 1 could vacuum the queue while worker 0 sits in its 8 ms
    // injected pause and the read-error assertion would race.
    let cfg = FleetConfig::new(2)
        .with_telemetry()
        .override_worker(
            0,
            WorkerOverride {
                fault: FaultPlan {
                    pause_delay: Some(Duration::from_millis(8)),
                    read_errors: true,
                    ..FaultPlan::default()
                },
                ..WorkerOverride::default()
            },
        )
        .override_worker(
            1,
            WorkerOverride {
                read_latency: Some(Duration::from_micros(500)),
                ..WorkerOverride::default()
            },
        );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(80));

    // Through the policy enum: the breach holds the line instead of
    // rolling back, leaving the canary on the new version.
    let report = fleet
        .rollout(
            &forward_patch(),
            RolloutPolicy::Guarded {
                canary: 0,
                pause_slo: PauseSlo::p99(Duration::from_millis(2)),
                on_breach: BreachAction::Hold,
            },
        )
        .unwrap();
    assert_eq!(report.applied.len(), 1, "only the canary took the patch");
    fleet.drain(80).unwrap();
    assert_eq!(fleet.live_versions(), vec!["v2", "v1"]);

    // Post-hold traffic: worker 0 is out of its pause and serving again,
    // so its injected read failures surface in the error counter (every
    // device read on worker 0 fails; it serves empty bodies), while the
    // healthy worker records none.
    fleet.push_requests(wl.batch(80));
    fleet.drain(160).unwrap();
    let tel = fleet.telemetry().unwrap();
    assert!(
        tel.worker(0).read_errors() > 0,
        "read errors never surfaced"
    );
    assert_eq!(tel.worker(1).read_errors(), 0);
    fleet.shutdown().unwrap();
}
