//! Multi-worker fleet behaviour: sharding, coordinated rollouts, and
//! partial-failure handling.

use std::time::Duration;

use flashed::{patch_stream, versions, Fleet, RolloutPolicy, SimFs, Workload};
use vm::LinkMode;

fn fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(16, 256, 7);
    let wl = Workload::new(fs.paths(), 1.0, 29);
    (fs, wl)
}

/// True when every worker's most recent pause window shares a common
/// instant — the signature of a barrier rendezvous.
fn pause_windows_overlap(fleet: &Fleet) -> bool {
    let windows: Vec<_> = (0..fleet.worker_count())
        .filter_map(|i| {
            fleet
                .remote(i)
                .pauses()
                .last()
                .map(|p| (p.at, p.at + p.dur))
        })
        .collect();
    windows.len() == fleet.worker_count()
        && windows.iter().map(|w| w.0).max() <= windows.iter().map(|w| w.1).min()
}

#[test]
fn fleet_shards_one_queue_across_workers() {
    let (mut fs, mut wl) = fixture();
    // A little device latency per read: serving 400 requests then takes
    // long enough that no single worker can drain the queue alone while
    // the others are still inside their idle wait.
    fs.set_read_latency(Duration::from_micros(20));
    let fleet = Fleet::start(4, LinkMode::Updateable, &versions::v1(), "v1", &fs).unwrap();
    assert_eq!(fleet.worker_count(), 4);
    fleet.push_requests(wl.batch(400));
    fleet.drain(400).unwrap();
    let completions = fleet.completions();
    let served = fleet.shutdown().unwrap();
    assert_eq!(completions.len(), 400);
    assert!(completions.iter().all(|c| c.pulled));
    // Every request was served exactly once, fleet-wide.
    assert_eq!(served.iter().sum::<i64>(), 400);
    // The load actually spread (400 requests over 4 workers makes a
    // single-worker monopoly effectively impossible).
    assert!(
        served.iter().filter(|&&n| n > 0).count() >= 2,
        "served: {served:?}"
    );
}

#[test]
fn simultaneous_rollout_updates_every_worker_at_once() {
    let (fs, mut wl) = fixture();
    let fleet = Fleet::start(3, LinkMode::Updateable, &versions::v1(), "v1", &fs).unwrap();
    let gen = &patch_stream().unwrap()[0]; // v1 -> v2

    fleet.push_requests(wl.batch(300));
    let report = fleet
        .rollout(&gen.patch, RolloutPolicy::Simultaneous)
        .unwrap();
    assert!(report.complete(), "{report}");
    assert_eq!(report.applied.len(), 3);
    assert!(report.failed.is_empty());
    // Every worker paused (barrier wait + apply), and the aggregate
    // statistics cover all of them.
    assert_eq!(report.pauses.len(), 3);
    assert!(report.pauses.iter().all(|p| *p > Duration::ZERO));
    assert!(report.max_pause() >= report.mean_pause());
    assert!(report.phase_totals().total() > Duration::ZERO);
    // The barrier lined everyone up: all pause windows share an instant
    // (the moment the last worker arrived and the barrier released).
    assert!(pause_windows_overlap(&fleet));

    fleet.drain(300).unwrap();
    // Post-rollout traffic is served by the new version everywhere:
    // v2 responses carry a Content-Type header, v1 responses do not.
    let before = fleet.completions().len();
    fleet.push_requests(wl.batch(60));
    fleet.drain(before + 60).unwrap();
    let completions = fleet.completions();
    assert!(
        completions[before..]
            .iter()
            .all(|c| c.response.contains("Content-Type:")),
        "all post-rollout responses come from v2",
    );
    fleet.shutdown().unwrap();
}

#[test]
fn rolling_rollout_never_stops_serving() {
    let (fs, mut wl) = fixture();
    // Simulated device latency keeps the queue from draining before the
    // first worker applies: the rollout must land mid-traffic for the
    // version-skew assertions below to be meaningful.
    let fs = fs.with_read_latency(Duration::from_micros(100));
    let fleet = Fleet::start(3, LinkMode::Updateable, &versions::v1(), "v1", &fs).unwrap();
    let gen = &patch_stream().unwrap()[0]; // v1 -> v2

    fleet.push_requests(wl.batch(600));
    let report = fleet.rollout(&gen.patch, RolloutPolicy::Rolling).unwrap();
    assert!(report.complete(), "{report}");
    assert_eq!(report.applied.len(), 3);
    // Rolling serializes the applies: the three pause windows cannot all
    // share an instant.
    assert!(!pause_windows_overlap(&fleet));

    fleet.drain(600).unwrap();
    let completions = fleet.completions();
    assert_eq!(completions.len(), 600);
    // The rollout ran mid-traffic: some requests were answered by v1,
    // some by v2 (version skew is the price of never pausing fleet-wide).
    let v2_responses = completions
        .iter()
        .filter(|c| c.response.contains("Content-Type:"))
        .count();
    assert!(v2_responses > 0, "rollout landed before the queue drained");
    assert!(v2_responses < 600, "rollout was mid-traffic, not before it");
    fleet.shutdown().unwrap();
}

#[test]
fn one_failing_worker_does_not_stop_the_fleet_rolling_forward() {
    let (fs, mut wl) = fixture();
    let fleet = Fleet::start(3, LinkMode::Updateable, &versions::v1(), "v1", &fs).unwrap();
    let gen = &patch_stream().unwrap()[0]; // v1 -> v2

    // Canary the patch on worker 0 alone; it applies there.
    let canary = fleet.remote(0);
    canary.enqueue(gen.patch.clone());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while canary.applied_count() == 0 {
        assert!(std::time::Instant::now() < deadline, "canary never applied");
        std::thread::sleep(Duration::from_micros(200));
    }

    // Fleet-wide rollout of the same patch: worker 0 (already on v2)
    // rejects it — v2's additions collide with its own bindings — while
    // workers 1 and 2 roll forward.
    let report = fleet.rollout(&gen.patch, RolloutPolicy::Rolling).unwrap();
    assert!(!report.complete(), "{report}");
    assert_eq!(report.applied.len(), 2, "{report}");
    assert_eq!(report.failed.len(), 1, "{report}");
    assert_eq!(
        report.failed[0].0, 0,
        "the canaried worker is the one that failed"
    );

    // The failed worker keeps serving (its old-new version), and the
    // fleet as a whole still answers everything.
    fleet.push_requests(wl.batch(300));
    fleet.drain(300).unwrap();
    assert_eq!(fleet.completions().len(), 300);
    fleet.shutdown().unwrap();
}
