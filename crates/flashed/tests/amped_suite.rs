//! The AMPED serving core: event-loop multiplexing, buffer-cache
//! behaviour, keyed pull/response matching, and — the paper's concern —
//! dynamic updates arriving while requests are parked on in-flight reads.

use std::time::{Duration, Instant};

use dsu_obs::journal::validate_lifecycle;
use flashed::{
    versions, EventLoopConfig, Fleet, FleetConfig, RolloutPolicy, ServeMode, Server, ServerShared,
    ServerTelemetry, SimFs, WorkerOverride, Workload,
};
use vm::LinkMode;

fn event_mode(helpers: usize, max_in_flight: usize) -> ServeMode {
    ServeMode::EventLoop(EventLoopConfig {
        helpers,
        cache_entries: 256,
        max_in_flight,
    })
}

/// The event loop is an implementation detail: for the same request
/// stream, an AMPED server produces exactly the same multiset of
/// responses as a blocking one (200s, 404s and 400s alike).
#[test]
fn event_loop_serves_identical_responses() {
    let fs = SimFs::generate_fixed(16, 256, 11);
    let mut wl = Workload::new(fs.paths(), 1.0, 23)
        .with_miss_rate(0.1)
        .with_bad_rate(0.1);
    let requests = wl.batch(80);

    let mut blocking =
        Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs.clone()).unwrap();
    blocking.push_requests(requests.clone());
    blocking.serve().unwrap();

    let mut amped = Server::start_full(
        LinkMode::Updateable,
        event_mode(4, 8),
        &versions::v1(),
        "v1",
        fs,
        ServerShared::new(),
        None,
    )
    .unwrap();
    amped.push_requests(requests);
    let served = amped.serve().unwrap();

    let mut b: Vec<String> = blocking
        .completions()
        .iter()
        .map(|c| c.response.clone())
        .collect();
    let mut a: Vec<String> = amped
        .completions()
        .iter()
        .map(|c| c.response.clone())
        .collect();
    assert_eq!(a.len(), 80);
    assert_eq!(served, 80);
    b.sort();
    a.sort();
    assert_eq!(a, b);
    // Every AMPED completion was matched to a pull with its own id.
    let mut ids: Vec<u64> = amped
        .completions()
        .iter()
        .map(|c| c.request_id.expect("matched to a pull"))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 80, "pull ids must be distinct");
}

/// One AMPED worker overlaps device waits: serving N distinct documents
/// with a helper pool takes far less wall-clock than the blocking server,
/// and the buffer cache turns the second pass into pure hits.
#[test]
fn event_loop_overlaps_reads_and_counts_cache_traffic() {
    let mut fs = SimFs::generate_fixed(16, 256, 7);
    fs.set_read_latency(Duration::from_millis(5));
    let wl = Workload::new(fs.paths(), 1.0, 1);
    let sweep = wl.sweep(16); // every document exactly once

    let mut blocking =
        Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs.clone()).unwrap();
    blocking.push_requests(sweep.clone());
    let t0 = Instant::now();
    blocking.serve().unwrap();
    let blocking_elapsed = t0.elapsed();

    let mut amped = Server::start_full(
        LinkMode::Updateable,
        event_mode(16, 16),
        &versions::v1(),
        "v1",
        fs,
        ServerShared::new(),
        None,
    )
    .unwrap();
    amped.push_requests(sweep.clone());
    let t0 = Instant::now();
    amped.serve().unwrap();
    let amped_elapsed = t0.elapsed();

    // Blocking pays 16 × 5ms serially; AMPED overlaps them all.
    assert!(
        amped_elapsed < blocking_elapsed,
        "amped {amped_elapsed:?} should beat blocking {blocking_elapsed:?}"
    );
    assert_eq!(amped.cache_stats(), Some((0, 16)), "first pass all misses");

    // Second pass over the same documents: the cache absorbs every read.
    amped.push_requests(sweep);
    let t0 = Instant::now();
    amped.serve().unwrap();
    let cached_elapsed = t0.elapsed();
    assert_eq!(amped.cache_stats(), Some((16, 16)), "second pass all hits");
    assert!(
        cached_elapsed < blocking_elapsed,
        "cached {cached_elapsed:?} should beat blocking {blocking_elapsed:?}"
    );
    assert_eq!(amped.completions().len(), 32);
}

/// The tentpole safety property: a patch arriving while requests are
/// parked on in-flight reads must wait for them (quiescence). The wait is
/// charged to the report's `drain` phase, and the journal's phase sum
/// still equals the report total *exactly*.
#[test]
fn update_mid_loop_drains_parked_requests() {
    let mut fs = SimFs::generate_fixed(8, 256, 3);
    fs.set_read_latency(Duration::from_millis(3));
    let wl = Workload::new(fs.paths(), 1.0, 1);

    let tel = ServerTelemetry::new();
    // One helper: reads complete serially, so when the guest hits its
    // first update point most of the window is still parked.
    let mut server = Server::start_full(
        LinkMode::Updateable,
        event_mode(1, 8),
        &versions::v1(),
        "v1",
        fs,
        ServerShared::new(),
        Some(tel.clone()),
    )
    .unwrap();

    let gen = dsu_core::PatchGen::new()
        .generate(&versions::v1(), &versions::v2(), "v1", "v2")
        .unwrap();
    server.push_requests(wl.sweep(8));
    server.queue_patch(gen.patch);
    let served = server.serve().unwrap();
    assert_eq!(served, 8);

    let report = &server.updater.log()[0];
    assert!(
        report.timings.drain > Duration::ZERO,
        "parked reads must be waited for: {:?}",
        report.timings
    );
    // Journal agrees with the report to the nanosecond.
    let events = tel.journal().events_for(1);
    validate_lifecycle(&events).unwrap();
    let phase_sum: Duration =
        events.iter().filter_map(|e| e.dur).sum::<Duration>() - events.last().unwrap().dur.unwrap(); // committed carries the total
    assert_eq!(phase_sum, report.timings.total());
    assert_eq!(events.last().unwrap().dur, Some(report.timings.total()));

    // Drained requests completed under the new version (v2 sends
    // Content-Type; v1 does not).
    let after_update = server
        .completions()
        .iter()
        .filter(|c| c.response.contains("Content-Type"))
        .count();
    assert!(after_update > 0, "drained requests serve on v2");
}

/// Rolling and simultaneous rollouts over an AMPED fleet, mid-traffic:
/// every worker drains its parked reads, every lifecycle validates, and
/// the journal timeline's phase totals equal the reports' exactly.
#[test]
fn amped_fleet_rollouts_drain_and_reconcile() {
    let mut fs = SimFs::generate_fixed(24, 512, 9);
    fs.set_read_latency(Duration::from_micros(300));
    let mut wl = Workload::new(fs.paths(), 1.0, 41);

    // 600 requests at 300us simulated latency normally clear in well
    // under a second, but a loaded single-core runner can starve the
    // event loops past the default 30s deadline — give it headroom.
    let cfg = FleetConfig::new(2)
        .serve_mode(event_mode(4, 8))
        .with_telemetry()
        .rollout_deadline(Duration::from_secs(120));
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    let stream = flashed::patch_stream().unwrap();

    fleet.push_requests(wl.batch(300));
    let rolling = fleet
        .rollout(&stream[0].patch, RolloutPolicy::Rolling)
        .unwrap();
    fleet.push_requests(wl.batch(300));
    let simultaneous = fleet
        .rollout(&stream[1].patch, RolloutPolicy::Simultaneous)
        .unwrap();
    fleet.drain(600).unwrap();

    assert_eq!(rolling.applied.len(), 2);
    assert_eq!(simultaneous.applied.len(), 2);
    assert!(rolling.failed.is_empty() && simultaneous.failed.is_empty());

    let tel = fleet.telemetry().unwrap();
    let journal = tel.journal().clone();
    for id in journal.update_ids() {
        validate_lifecycle(&journal.events_for(id)).unwrap();
    }
    // Timeline rows reconcile with the reports: match each applied report
    // to its row by (worker, version transition) and compare totals.
    let timeline = tel.timeline();
    assert_eq!(timeline.len(), 4);
    for (wid, r) in rolling.applied.iter().chain(&simultaneous.applied) {
        let row = timeline
            .iter()
            .find(|row| {
                row.worker == Some(*wid)
                    && row.from_version == r.from_version
                    && row.to_version == r.to_version
            })
            .expect("every applied patch has a timeline row");
        assert!(row.committed);
        assert_eq!(row.phase_total, r.timings.total(), "worker {wid}");
    }

    let served = fleet.shutdown().unwrap();
    assert_eq!(served.iter().sum::<i64>(), 600);
}

/// Per-worker fleet overrides: a worker on a slow device completes fewer
/// requests than its fast sibling under the same shared queue.
#[test]
fn worker_latency_override_shapes_throughput() {
    let fs = SimFs::generate_fixed(16, 256, 5); // zero base latency
    let mut wl = Workload::new(fs.paths(), 1.0, 17);

    let cfg = FleetConfig::new(2).override_worker(
        1,
        WorkerOverride {
            read_latency: Some(Duration::from_millis(2)),
            ..WorkerOverride::default()
        },
    );
    let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
    fleet.push_requests(wl.batch(60));
    fleet.drain(60).unwrap();
    let served = fleet.shutdown().unwrap();
    assert_eq!(served.iter().sum::<i64>(), 60);
    assert!(
        served[0] > served[1],
        "fast worker should out-serve the slow one: {served:?}"
    );
}

/// Satellite regression: concurrent pulls are matched to responses FIFO
/// by id — a guest holding two requests open gets each response timed
/// from its *own* pull, not a single shared slot.
#[test]
fn concurrent_pulls_are_keyed_not_overwritten() {
    let src = r#"
extern fun next_request(): string;
extern fun send_response(r: string): unit;

fun serve(): int {
    var a: string = next_request();
    var b: string = next_request();
    var n: int = 0;
    if (len(a) > 0) { send_response("first:" + a); n = n + 1; }
    if (len(b) > 0) { send_response("second:" + b); n = n + 1; }
    return n;
}
"#;
    let fs = SimFs::generate_fixed(2, 64, 1);
    let mut server = Server::start(LinkMode::Updateable, src, "v1", fs).unwrap();
    server.push_requests(vec!["GET /a HTTP/1.0".into(), "GET /b HTTP/1.0".into()]);
    assert_eq!(server.serve().unwrap(), 2);

    let done = server.completions();
    assert_eq!(done.len(), 2);
    // Both responses matched to their own pull, in pull order.
    assert!(done[0].pulled && done[1].pulled);
    assert_eq!(done[0].request_id, Some(1));
    assert_eq!(done[1].request_id, Some(2));
    assert!(done[0].response.starts_with("first:"));
    assert!(done[1].response.starts_with("second:"));
}
