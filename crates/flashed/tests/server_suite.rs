//! FlashEd harness behaviour suite.

use flashed::{latency_stats, parse_response, patch_stream, versions, Server, SimFs, Workload};
use vm::{LinkMode, Value};

fn small_fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(8, 128, 3);
    let wl = Workload::new(fs.paths(), 1.0, 5);
    (fs, wl)
}

#[test]
fn latency_stats_percentiles() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    s.push_requests(wl.batch(200));
    s.serve().unwrap();
    let stats = latency_stats(&s.completions());
    assert!(stats.p50 <= stats.p99, "{stats:?}");
    assert!(stats.p99 <= stats.max, "{stats:?}");
    assert!(stats.p50.as_nanos() > 0);
}

#[test]
#[should_panic(expected = "no completions")]
fn latency_stats_rejects_empty() {
    let _ = latency_stats(&[]);
}

#[test]
fn serve_returns_per_batch_counts_and_accumulates_total() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    s.push_requests(wl.batch(5));
    assert_eq!(s.serve().unwrap(), 5);
    s.push_requests(wl.batch(7));
    assert_eq!(s.serve().unwrap(), 7);
    assert_eq!(
        s.process().global_value("served_total"),
        Some(Value::Int(12))
    );
}

#[test]
fn take_completions_drains() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    s.push_requests(wl.batch(3));
    s.serve().unwrap();
    assert_eq!(s.take_completions().len(), 3);
    assert!(s.completions().is_empty());
}

#[test]
fn miss_and_bad_workloads_get_correct_statuses() {
    let (fs, _) = small_fixture();
    let mut wl = Workload::new(fs.paths(), 1.0, 5)
        .with_miss_rate(0.3)
        .with_bad_rate(0.2);
    let mut s = Server::start(LinkMode::Updateable, &versions::v2(), "v2", fs).unwrap();
    s.push_requests(wl.batch(300));
    s.serve().unwrap();
    let (mut ok, mut missing, mut bad) = (0, 0, 0);
    for c in s.completions() {
        match parse_response(&c.response).expect("well-formed").status {
            200 => ok += 1,
            404 => missing += 1,
            400 => bad += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(ok > 100, "{ok}");
    assert!(missing > 40, "{missing}");
    assert!(bad > 20, "{bad}");
}

#[test]
fn cache_respects_capacity_bound() {
    // More distinct files than cache_cap (64): cache must not grow past it.
    let fs = SimFs::generate_fixed(100, 64, 9);
    let mut wl = Workload::new(fs.paths(), 0.0 /* uniform */, 9);
    let mut s = Server::start(LinkMode::Updateable, &versions::v3(), "v3", fs).unwrap();
    s.push_requests(wl.batch(500));
    s.serve().unwrap();
    let Some(Value::Array(cache)) = s.process().global_value("cache") else {
        panic!()
    };
    assert!(cache.borrow().len() <= 64, "{}", cache.borrow().len());
}

#[test]
fn cached_responses_match_uncached() {
    let (fs, _) = small_fixture();
    let target = fs.paths()[0].clone();
    let mut s = Server::start(LinkMode::Updateable, &versions::v3(), "v3", fs).unwrap();
    s.push_requests(vec![
        format!("GET {target} HTTP/1.0"),
        format!("GET {target} HTTP/1.0"),
    ]);
    s.serve().unwrap();
    let done = s.completions();
    assert_eq!(
        done[0].response, done[1].response,
        "cache hit must be byte-identical"
    );
}

#[test]
fn static_server_cannot_be_patched_usefully() {
    // A patch applies (bindings change) but direct-linked call sites keep
    // their targets: Flash (static) stays on old behaviour. This pins the
    // baseline semantics the overhead experiments rely on.
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Static, &versions::v1(), "v1", fs).unwrap();
    let gen = &patch_stream().unwrap()[0]; // v1 -> v2 (adds content-type)
    s.queue_patch(gen.patch.clone());
    s.push_requests(wl.batch(4));
    s.serve().unwrap();
    let last = s.completions().pop().unwrap();
    let resp = parse_response(&last.response).unwrap();
    assert!(
        resp.header("content-type").is_none(),
        "static linking must not pick up the new handler"
    );
}

#[test]
fn logs_only_appear_from_v5() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v4(), "v4", fs.clone()).unwrap();
    s.push_requests(wl.batch(5));
    s.serve().unwrap();
    assert!(s.logs().is_empty());

    let mut s = Server::start(LinkMode::Updateable, &versions::v5(), "v5", fs).unwrap();
    s.push_requests(wl.batch(5));
    s.serve().unwrap();
    assert_eq!(s.logs().len(), 5);
    assert!(s.logs()[0].starts_with("GET /"));
}

#[test]
fn elapsed_is_monotone_with_completions() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    s.push_requests(wl.batch(50));
    s.serve().unwrap();
    let done = s.completions();
    for w in done.windows(2) {
        assert!(w[0].at <= w[1].at, "completion order must be time-ordered");
    }
    assert!(s.elapsed() >= done.last().unwrap().at);
}

// ---------------------------------------------------------------- accounting

/// A guest whose update point sits *inside* the request window (between
/// pull and response) — the case where naive service-time measurement
/// silently charges the whole update pause to one unlucky request.
const MID_REQUEST_V1: &str = r#"
extern fun next_request(): string;
extern fun send_response(r: string): unit;

fun handle(req: string): string { return "old:" + req; }

fun serve(): int {
    var served: int = 0;
    while (true) {
        var req: string = next_request();
        if (len(req) == 0) { break; }
        update;
        send_response(handle(req));
        served = served + 1;
    }
    return served;
}
"#;

#[test]
fn in_request_update_pause_is_excluded_from_service_time() {
    use dsu_core::PatchGen;
    use std::time::Duration;

    let v2 = MID_REQUEST_V1.replace("\"old:\"", "\"new:\"");
    let gen = PatchGen::new()
        .generate(MID_REQUEST_V1, &v2, "v1", "v2")
        .unwrap();

    let mut s =
        Server::start(vm::LinkMode::Updateable, MID_REQUEST_V1, "v1", SimFs::new()).unwrap();
    s.push_requests((0..10).map(|i| format!("req-{i}")));
    s.queue_patch(gen.patch);
    assert_eq!(s.serve().unwrap(), 10);
    assert_eq!(s.updater.log().len(), 1);

    let completions = s.completions();
    assert_eq!(completions.len(), 10);
    assert!(completions.iter().all(|c| c.pulled));

    // Exactly one request was in flight across the update point; the
    // pause is reported on it, not folded into its service time.
    let paused: Vec<_> = completions
        .iter()
        .filter(|c| c.update_pause > Duration::ZERO)
        .collect();
    assert_eq!(paused.len(), 1, "{completions:#?}");
    assert!(
        paused[0].response.starts_with("new:"),
        "update landed before the response"
    );
    assert!(
        paused[0].update_pause >= s.updater.log()[0].timings.total(),
        "reported pause {:?} covers the apply {:?}",
        paused[0].update_pause,
        s.updater.log()[0].timings.total(),
    );
    // With the pause excluded, the unlucky request's service time is in
    // family with its neighbours rather than orders of magnitude above.
    let typical = completions
        .iter()
        .filter(|c| c.update_pause == Duration::ZERO)
        .map(|c| c.service)
        .max()
        .unwrap();
    assert!(
        paused[0].service <= typical * 50 + Duration::from_millis(1),
        "service {:?} should not absorb the pause (typical {typical:?})",
        paused[0].service,
    );
}

#[test]
fn response_without_a_pull_is_flagged_and_excluded_from_stats() {
    const SPONTANEOUS: &str = r#"
extern fun send_response(r: string): unit;
fun serve(): int { send_response("unsolicited"); return 0; }
"#;
    let mut s = Server::start(vm::LinkMode::Updateable, SPONTANEOUS, "v1", SimFs::new()).unwrap();
    assert_eq!(s.serve().unwrap(), 0);
    let cs = s.completions();
    assert_eq!(cs.len(), 1);
    assert!(!cs[0].pulled, "no next_request preceded this response");
    assert_eq!(cs[0].service, std::time::Duration::ZERO);
    // Stats are computed over measured (pulled) completions only; a set
    // with none is rejected rather than reporting garbage.
    assert!(std::panic::catch_unwind(|| latency_stats(&cs)).is_err());
}
