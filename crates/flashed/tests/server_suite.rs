//! FlashEd harness behaviour suite.

use flashed::{latency_stats, parse_response, patch_stream, versions, Server, SimFs, Workload};
use vm::{LinkMode, Value};

fn small_fixture() -> (SimFs, Workload) {
    let fs = SimFs::generate_fixed(8, 128, 3);
    let wl = Workload::new(fs.paths(), 1.0, 5);
    (fs, wl)
}

#[test]
fn latency_stats_percentiles() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    s.push_requests(wl.batch(200));
    s.serve().unwrap();
    let stats = latency_stats(&s.completions());
    assert!(stats.p50 <= stats.p99, "{stats:?}");
    assert!(stats.p99 <= stats.max, "{stats:?}");
    assert!(stats.p50.as_nanos() > 0);
}

#[test]
#[should_panic(expected = "no completions")]
fn latency_stats_rejects_empty() {
    let _ = latency_stats(&[]);
}

#[test]
fn serve_returns_per_batch_counts_and_accumulates_total() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    s.push_requests(wl.batch(5));
    assert_eq!(s.serve().unwrap(), 5);
    s.push_requests(wl.batch(7));
    assert_eq!(s.serve().unwrap(), 7);
    assert_eq!(s.process().global_value("served_total"), Some(Value::Int(12)));
}

#[test]
fn take_completions_drains() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    s.push_requests(wl.batch(3));
    s.serve().unwrap();
    assert_eq!(s.take_completions().len(), 3);
    assert!(s.completions().is_empty());
}

#[test]
fn miss_and_bad_workloads_get_correct_statuses() {
    let (fs, _) = small_fixture();
    let mut wl = Workload::new(fs.paths(), 1.0, 5).with_miss_rate(0.3).with_bad_rate(0.2);
    let mut s = Server::start(LinkMode::Updateable, &versions::v2(), "v2", fs).unwrap();
    s.push_requests(wl.batch(300));
    s.serve().unwrap();
    let (mut ok, mut missing, mut bad) = (0, 0, 0);
    for c in s.completions() {
        match parse_response(&c.response).expect("well-formed").status {
            200 => ok += 1,
            404 => missing += 1,
            400 => bad += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(ok > 100, "{ok}");
    assert!(missing > 40, "{missing}");
    assert!(bad > 20, "{bad}");
}

#[test]
fn cache_respects_capacity_bound() {
    // More distinct files than cache_cap (64): cache must not grow past it.
    let fs = SimFs::generate_fixed(100, 64, 9);
    let mut wl = Workload::new(fs.paths(), 0.0 /* uniform */, 9);
    let mut s = Server::start(LinkMode::Updateable, &versions::v3(), "v3", fs).unwrap();
    s.push_requests(wl.batch(500));
    s.serve().unwrap();
    let Some(Value::Array(cache)) = s.process().global_value("cache") else { panic!() };
    assert!(cache.borrow().len() <= 64, "{}", cache.borrow().len());
}

#[test]
fn cached_responses_match_uncached() {
    let (fs, _) = small_fixture();
    let target = fs.paths()[0].clone();
    let mut s = Server::start(LinkMode::Updateable, &versions::v3(), "v3", fs).unwrap();
    s.push_requests(vec![
        format!("GET {target} HTTP/1.0"),
        format!("GET {target} HTTP/1.0"),
    ]);
    s.serve().unwrap();
    let done = s.completions();
    assert_eq!(done[0].response, done[1].response, "cache hit must be byte-identical");
}

#[test]
fn static_server_cannot_be_patched_usefully() {
    // A patch applies (bindings change) but direct-linked call sites keep
    // their targets: Flash (static) stays on old behaviour. This pins the
    // baseline semantics the overhead experiments rely on.
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Static, &versions::v1(), "v1", fs).unwrap();
    let gen = &patch_stream().unwrap()[0]; // v1 -> v2 (adds content-type)
    s.queue_patch(gen.patch.clone());
    s.push_requests(wl.batch(4));
    s.serve().unwrap();
    let last = s.completions().pop().unwrap();
    let resp = parse_response(&last.response).unwrap();
    assert!(
        resp.header("content-type").is_none(),
        "static linking must not pick up the new handler"
    );
}

#[test]
fn logs_only_appear_from_v5() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v4(), "v4", fs.clone()).unwrap();
    s.push_requests(wl.batch(5));
    s.serve().unwrap();
    assert!(s.logs().is_empty());

    let mut s = Server::start(LinkMode::Updateable, &versions::v5(), "v5", fs).unwrap();
    s.push_requests(wl.batch(5));
    s.serve().unwrap();
    assert_eq!(s.logs().len(), 5);
    assert!(s.logs()[0].starts_with("GET /"));
}

#[test]
fn elapsed_is_monotone_with_completions() {
    let (fs, mut wl) = small_fixture();
    let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    s.push_requests(wl.batch(50));
    s.serve().unwrap();
    let done = s.completions();
    for w in done.windows(2) {
        assert!(w[0].at <= w[1].at, "completion order must be time-ordered");
    }
    assert!(s.elapsed() >= done.last().unwrap().at);
}
