//! The FlashEd patch stream, generated from the version history.

use dsu_core::{GeneratedPatch, PatchGen, PatchGenError};

use crate::versions;

/// Generates the full patch stream v1→v2→…→v5 with the patch generator
/// (state transformers synthesised automatically — the v3→v4 cache-entry
/// change is mechanical field growth).
///
/// # Errors
///
/// Returns the first [`PatchGenError`]; with the checked-in version
/// sources this does not happen (see tests).
pub fn patch_stream() -> Result<Vec<GeneratedPatch>, PatchGenError> {
    let versions = versions::all();
    versions
        .windows(2)
        .map(|w| PatchGen::new().generate(&w[0].1, &w[1].1, w[0].0, w[1].0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_stream_generates_and_has_expected_shape() {
        let stream = patch_stream().unwrap();
        assert_eq!(stream.len(), 4);

        let v1v2 = &stream[0];
        assert_eq!(v1v2.stats.functions_changed, 1, "handle changed");
        assert_eq!(v1v2.stats.functions_added, 2, "mime_of, respond_typed");
        assert_eq!(v1v2.stats.types_changed, 0);

        let v2v3 = &stream[1];
        assert_eq!(v2v3.stats.globals_added, 2, "cache, cache_cap");
        assert_eq!(v2v3.stats.functions_added, 2, "cache_lookup, cache_insert");
        assert_eq!(
            v2v3.stats.types_changed, 0,
            "cache_entry is new, not changed"
        );

        let v3v4 = &stream[2];
        assert_eq!(v3v4.stats.types_changed, 1, "cache_entry");
        assert_eq!(v3v4.stats.transformers, 1, "cache needs transforming");
        assert_eq!(
            v3v4.stats.transformers_auto, 1,
            "field growth is mechanical"
        );
        assert!(
            v3v4.stats.functions_carried >= 1,
            "handle carried: {:?}",
            v3v4.stats
        );

        let v4v5 = &stream[3];
        assert_eq!(v4v5.stats.types_changed, 0);
        assert_eq!(v4v5.stats.functions_changed, 2, "parse_path, handle");
        assert_eq!(v4v5.stats.transformers, 0);
    }
}
