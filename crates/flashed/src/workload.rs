//! HTTP workload generation.
//!
//! Clients in the paper's evaluation replayed document requests with a
//! skewed popularity distribution; this module reproduces that shape with
//! a Zipf sampler over the simulated filesystem's paths.

use crate::rng::Rng;

/// A Zipf(α) sampler over `n` ranks (0-based), built as an explicit CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `alpha` (1.0 is the
    /// classic web-popularity value; 0.0 degenerates to uniform).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Generates request strings against a set of document paths.
#[derive(Debug, Clone)]
pub struct Workload {
    paths: Vec<String>,
    zipf: Zipf,
    rng: Rng,
    /// Fraction of requests targeting a missing document (404 path).
    pub miss_rate: f64,
    /// Fraction of syntactically malformed requests (400 path).
    pub bad_rate: f64,
}

impl Workload {
    /// Builds a workload over `paths` with Zipf(`alpha`) popularity,
    /// deterministic in `seed`. Defaults: no misses, no malformed
    /// requests.
    ///
    /// # Panics
    /// Panics when `paths` is empty.
    pub fn new(paths: Vec<String>, alpha: f64, seed: u64) -> Workload {
        let zipf = Zipf::new(paths.len(), alpha);
        Workload {
            paths,
            zipf,
            rng: Rng::seed_from_u64(seed),
            miss_rate: 0.0,
            bad_rate: 0.0,
        }
    }

    /// Sets the 404 fraction.
    pub fn with_miss_rate(mut self, rate: f64) -> Workload {
        self.miss_rate = rate;
        self
    }

    /// Sets the malformed fraction.
    pub fn with_bad_rate(mut self, rate: f64) -> Workload {
        self.bad_rate = rate;
        self
    }

    /// Produces the next request line.
    pub fn next_request(&mut self) -> String {
        let r = self.rng.gen_f64();
        if r < self.bad_rate {
            return "BOGUS".to_string();
        }
        if r < self.bad_rate + self.miss_rate {
            return "GET /no/such/file HTTP/1.0".to_string();
        }
        let rank = self.zipf.sample(&mut self.rng);
        format!("GET {} HTTP/1.0", self.paths[rank])
    }

    /// Produces a batch of `n` requests.
    pub fn batch(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// Produces `n` requests sweeping the paths round-robin — every
    /// consecutive window of `paths.len()` requests touches every
    /// document exactly once. The adversarial complement of the Zipf
    /// batch: no path repeats until all have been visited, so a buffer
    /// cache smaller than the document set misses on every read.
    pub fn sweep(&self, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("GET {} HTTP/1.0", self.paths[i % self.paths.len()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 should hold roughly 1/H(100) ≈ 19% of the mass.
        assert!(counts[0] > 2_500, "rank 0 got {}", counts[0]);
    }

    #[test]
    fn zipf_alpha_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{c}");
        }
    }

    #[test]
    fn workload_is_deterministic_and_well_formed() {
        let paths = vec!["/a".to_string(), "/b".to_string()];
        let mut w1 = Workload::new(paths.clone(), 1.0, 9);
        let mut w2 = Workload::new(paths, 1.0, 9);
        let b1 = w1.batch(50);
        let b2 = w2.batch(50);
        assert_eq!(b1, b2);
        assert!(b1
            .iter()
            .all(|r| r.starts_with("GET /") && r.ends_with(" HTTP/1.0")));
    }

    #[test]
    fn miss_and_bad_rates_apply() {
        let mut w = Workload::new(vec!["/a".to_string()], 1.0, 3)
            .with_miss_rate(0.5)
            .with_bad_rate(0.25);
        let batch = w.batch(2000);
        let bad = batch.iter().filter(|r| *r == "BOGUS").count();
        let miss = batch.iter().filter(|r| r.contains("/no/such/file")).count();
        assert!((300..700).contains(&bad), "{bad}");
        assert!((800..1200).contains(&miss), "{miss}");
    }
}
