//! The simulated filesystem FlashEd serves from.
//!
//! The paper's testbed served real files to real clients; here a
//! deterministic in-memory filesystem exercises the identical guest code
//! path (lookup → read → respond) while keeping experiments reproducible.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::rng::Rng;

/// An in-memory filesystem: path → content.
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    files: BTreeMap<String, String>,
    /// Simulated per-read device latency (zero by default). Flash — and
    /// hence the paper's testbed — is disk-bound; modelling the read wait
    /// lets multi-worker experiments overlap I/O the way the real server
    /// overlapped disk requests.
    read_latency: Duration,
}

impl SimFs {
    /// Creates an empty filesystem.
    pub fn new() -> SimFs {
        SimFs::default()
    }

    /// Adds (or replaces) a file.
    pub fn insert(&mut self, path: impl Into<String>, content: impl Into<String>) {
        self.files.insert(path.into(), content.into());
    }

    /// Reads a file's content, stalling for the simulated device latency
    /// (if one is configured).
    pub fn read(&self, path: &str) -> Option<&str> {
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        self.files.get(path).map(String::as_str)
    }

    /// Sets the simulated per-read device latency.
    pub fn with_read_latency(mut self, latency: Duration) -> SimFs {
        self.read_latency = latency;
        self
    }

    /// The configured per-read device latency.
    pub fn read_latency(&self) -> Duration {
        self.read_latency
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the filesystem is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// All paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Generates `n` files named `/fNNN.html` with sizes drawn uniformly
    /// from `size_range` (bytes), deterministic in `seed`. This mirrors
    /// the static-document corpora of web-server benchmarks.
    pub fn generate(n: usize, size_range: (usize, usize), seed: u64) -> SimFs {
        let mut rng = Rng::seed_from_u64(seed);
        let mut fs = SimFs::new();
        for i in 0..n {
            let size = if size_range.0 >= size_range.1 {
                size_range.0
            } else {
                rng.gen_range_usize(size_range.0, size_range.1)
            };
            fs.insert(format!("/f{i:04}.html"), synth_content(i, size));
        }
        fs
    }

    /// Generates `n` files all of exactly `size` bytes.
    pub fn generate_fixed(n: usize, size: usize, seed: u64) -> SimFs {
        SimFs::generate(n, (size, size), seed)
    }
}

/// Deterministic printable filler of exactly `size` bytes.
fn synth_content(file_idx: usize, size: usize) -> String {
    let pattern = format!("<p>file {file_idx} lorem ipsum dolor sit amet</p>\n");
    let mut s = String::with_capacity(size);
    while s.len() < size {
        let take = (size - s.len()).min(pattern.len());
        s.push_str(&pattern[..take]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SimFs::generate(10, (100, 1000), 42);
        let b = SimFs::generate(10, (100, 1000), 42);
        assert_eq!(a.paths(), b.paths());
        for p in a.paths() {
            assert_eq!(a.read(&p), b.read(&p));
        }
        let c = SimFs::generate(10, (100, 1000), 43);
        assert!(a.paths().iter().any(|p| a.read(p) != c.read(p)));
    }

    #[test]
    fn sizes_are_exact_for_fixed() {
        let fs = SimFs::generate_fixed(5, 256, 1);
        assert_eq!(fs.len(), 5);
        for p in fs.paths() {
            assert_eq!(fs.read(&p).unwrap().len(), 256);
        }
    }

    #[test]
    fn lookup_semantics() {
        let mut fs = SimFs::new();
        assert!(fs.is_empty());
        fs.insert("/a", "hello");
        assert!(fs.exists("/a"));
        assert!(!fs.exists("/b"));
        assert_eq!(fs.read("/a"), Some("hello"));
        assert_eq!(fs.read("/b"), None);
    }
}
