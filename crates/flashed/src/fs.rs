//! The simulated filesystem FlashEd serves from.
//!
//! The paper's testbed served real files to real clients; here a
//! deterministic in-memory filesystem exercises the identical guest code
//! path (lookup → read → respond) while keeping experiments reproducible.
//!
//! Two read paths exist, mirroring Flash's AMPED split:
//!
//! * [`SimFs::read`] — synchronous: the caller stalls for the simulated
//!   device latency (the blocking thread-per-worker regime);
//! * [`AsyncFs`] — readiness/completion: [`AsyncFs::submit`] returns a
//!   [`ReadTicket`] immediately, a helper pool absorbs the device wait
//!   off-loop and posts [`ReadCompletion`]s to a queue the event loop
//!   polls, and an LRU [`BufferCache`] makes repeat reads complete
//!   without touching the (simulated) device at all.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::rng::Rng;

/// An in-memory filesystem: path → content.
///
/// Clones share the *content* (the same shared "disk", so a write through
/// one handle is visible to every clone — what lets a fleet coordinator
/// mutate files a worker serves). Read latency stays per-handle. The
/// read-failure flag is shared between clones of one handle lineage, so a
/// coordinator that kept a clone can start (and stop) a live worker's
/// read failures mid-run; [`SimFs::fork_faults`] severs the sharing —
/// fleets fork one fault domain per worker so one worker's dying device
/// never fails its siblings.
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    files: Arc<RwLock<BTreeMap<String, String>>>,
    /// Simulated per-read device latency (zero by default). Flash — and
    /// hence the paper's testbed — is disk-bound; modelling the read wait
    /// lets multi-worker experiments overlap I/O the way the real server
    /// overlapped disk requests.
    read_latency: Duration,
    /// Fault injection: when set, every read pays its latency and then
    /// fails (returns `None`) even though the file exists — a dying
    /// device, not a missing document. Shared between clones (live
    /// injection); [`SimFs::fork_faults`] gives a handle its own flag.
    fail_reads: Arc<AtomicBool>,
}

impl SimFs {
    /// Creates an empty filesystem.
    pub fn new() -> SimFs {
        SimFs::default()
    }

    /// Adds (or replaces) a file. Visible to every clone sharing this
    /// filesystem's content.
    pub fn insert(&self, path: impl Into<String>, content: impl Into<String>) {
        self.files
            .write()
            .expect("poisoned")
            .insert(path.into(), content.into());
    }

    /// Mutates a file in place — [`SimFs::insert`] under the name the
    /// write-through cache-invalidation path uses (see [`AsyncFs::write`],
    /// which pairs the content change with a [`BufferCache::invalidate`]).
    pub fn write(&self, path: impl Into<String>, content: impl Into<String>) {
        self.insert(path, content);
    }

    /// Reads a file's content, stalling for the simulated device latency
    /// (if one is configured). Returns `None` for missing files — and,
    /// with [`SimFs::set_read_failures`] armed, for every read.
    pub fn read(&self, path: &str) -> Option<String> {
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        if self.fail_reads.load(Ordering::Relaxed) {
            return None;
        }
        self.files.read().expect("poisoned").get(path).cloned()
    }

    /// Arms (or disarms) injected read failures: reads pay their latency
    /// and fail, while [`SimFs::exists`] still answers — a failing
    /// device, not an empty one. The flag is shared with every clone of
    /// this handle, so flipping it here makes a *live* worker's reads
    /// start (or stop) failing mid-run; isolate with
    /// [`SimFs::fork_faults`] first when that sharing is unwanted.
    pub fn set_read_failures(&self, fail: bool) {
        self.fail_reads.store(fail, Ordering::Relaxed);
    }

    /// Whether this handle's reads are set to fail.
    pub fn read_failures(&self) -> bool {
        self.fail_reads.load(Ordering::Relaxed)
    }

    /// A clone in a fresh fault domain: same shared content and latency,
    /// but its own read-failure flag (initialised to this handle's
    /// current value). Fleets fork one domain per worker so per-worker
    /// fault plans — and live flips through the retained handle — stay
    /// scoped to that worker.
    pub fn fork_faults(&self) -> SimFs {
        SimFs {
            files: Arc::clone(&self.files),
            read_latency: self.read_latency,
            fail_reads: Arc::new(AtomicBool::new(self.read_failures())),
        }
    }

    /// Sets the simulated per-read device latency (builder form).
    pub fn with_read_latency(mut self, latency: Duration) -> SimFs {
        self.read_latency = latency;
        self
    }

    /// Sets the simulated per-read device latency in place — fleets use
    /// this to vary latency per worker on clones of one filesystem,
    /// which the by-value builder cannot express.
    pub fn set_read_latency(&mut self, latency: Duration) {
        self.read_latency = latency;
    }

    /// The configured per-read device latency.
    pub fn read_latency(&self) -> Duration {
        self.read_latency
    }

    /// Whether a file exists (metadata survives injected read failures).
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().expect("poisoned").contains_key(path)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.read().expect("poisoned").len()
    }

    /// Whether the filesystem is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.files
            .read()
            .expect("poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Generates `n` files named `/fNNN.html` with sizes drawn uniformly
    /// from `size_range` (bytes), deterministic in `seed`. This mirrors
    /// the static-document corpora of web-server benchmarks.
    pub fn generate(n: usize, size_range: (usize, usize), seed: u64) -> SimFs {
        let mut rng = Rng::seed_from_u64(seed);
        let fs = SimFs::new();
        for i in 0..n {
            let size = if size_range.0 >= size_range.1 {
                size_range.0
            } else {
                rng.gen_range_usize(size_range.0, size_range.1)
            };
            fs.insert(format!("/f{i:04}.html"), synth_content(i, size));
        }
        fs
    }

    /// Generates `n` files all of exactly `size` bytes.
    pub fn generate_fixed(n: usize, size: usize, seed: u64) -> SimFs {
        SimFs::generate(n, (size, size), seed)
    }
}

/// Identifies one in-flight [`AsyncFs`] read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadTicket(pub u64);

/// One finished read, posted to the completion queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadCompletion {
    /// The ticket [`AsyncFs::submit`] handed out for this read.
    pub ticket: ReadTicket,
    /// The path that was read.
    pub path: String,
    /// The content, or `None` when the file does not exist.
    pub content: Option<String>,
}

/// An LRU cache over file contents with hit/miss counters — the buffer
/// cache the AMPED helpers warm. Thread-safe; shared between the event
/// loop (lookups) and the helper pool (inserts).
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Entries dropped from the cache: LRU pressure plus explicit
    /// invalidations (the write-through path).
    evictions: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<String, String>,
    /// Recency order, least-recently-used first.
    order: VecDeque<String>,
}

impl BufferCache {
    /// An empty cache holding at most `capacity` entries (at least one).
    pub fn new(capacity: usize) -> BufferCache {
        BufferCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Counting lookup: bumps the hit or miss counter and the entry's
    /// recency. The admission path uses this; the serve path, which would
    /// double-count, uses [`BufferCache::peek`].
    pub fn lookup(&self, path: &str) -> Option<String> {
        let got = self.peek(path);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Non-counting lookup (still bumps recency).
    pub fn peek(&self, path: &str) -> Option<String> {
        let mut inner = self.inner.lock().expect("poisoned");
        let got = inner.entries.get(path).cloned();
        if got.is_some() {
            inner.order.retain(|p| p != path);
            inner.order.push_back(path.to_string());
        }
        got
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// one when full.
    pub fn insert(&self, path: &str, content: String) {
        let mut inner = self.inner.lock().expect("poisoned");
        if inner.entries.insert(path.to_string(), content).is_none() {
            while inner.entries.len() > self.capacity {
                let Some(evict) = inner.order.pop_front() else {
                    break;
                };
                inner.entries.remove(&evict);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            inner.order.retain(|p| p != path);
        }
        inner.order.push_back(path.to_string());
    }

    /// Drops `path` from the cache, counting it as an eviction. Returns
    /// whether an entry was present. The write-through invalidation path:
    /// a mutated file must not keep serving its stale cached bytes.
    pub fn invalidate(&self, path: &str) -> bool {
        let mut inner = self.inner.lock().expect("poisoned");
        let present = inner.entries.remove(path).is_some();
        if present {
            inner.order.retain(|p| p != path);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        present
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("poisoned").entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counting lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Counting lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped so far (LRU pressure + invalidations).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

struct ReadJob {
    ticket: ReadTicket,
    path: String,
}

/// The readiness/completion face of a [`SimFs`]: submit a read, get a
/// ticket back immediately, poll completions later. A pool of helper
/// threads absorbs the simulated device latency (each helper is one
/// outstanding "disk operation", so the pool size is the device queue
/// depth), inserting what it read into the shared [`BufferCache`] before
/// posting the completion. Cached paths complete without a helper trip.
pub struct AsyncFs {
    fs: Arc<SimFs>,
    cache: Arc<BufferCache>,
    jobs: Mutex<mpsc::Sender<ReadJob>>,
    completions: Arc<Mutex<Vec<ReadCompletion>>>,
    in_flight: Arc<AtomicUsize>,
    next_ticket: AtomicU64,
    helpers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for AsyncFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncFs")
            .field("helpers", &self.helpers.len())
            .field("in_flight", &self.in_flight())
            .field("cached", &self.cache.len())
            .finish()
    }
}

impl AsyncFs {
    /// Wraps `fs` with `helpers` helper threads and a buffer cache of
    /// `cache_entries` entries.
    pub fn new(fs: SimFs, helpers: usize, cache_entries: usize) -> AsyncFs {
        let fs = Arc::new(fs);
        let cache = Arc::new(BufferCache::new(cache_entries));
        let completions: Arc<Mutex<Vec<ReadCompletion>>> = Arc::new(Mutex::new(Vec::new()));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<ReadJob>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..helpers.max(1))
            .map(|i| {
                let fs = Arc::clone(&fs);
                let cache = Arc::clone(&cache);
                let completions = Arc::clone(&completions);
                let in_flight = Arc::clone(&in_flight);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("flashed-helper-{i}"))
                    .spawn(move || loop {
                        let job = { rx.lock().expect("poisoned").recv() };
                        let Ok(job) = job else { return };
                        // The device wait happens here, off the event
                        // loop — this sleep is the helper's whole reason
                        // to exist.
                        let content = fs.read(&job.path);
                        if let Some(c) = &content {
                            cache.insert(&job.path, c.clone());
                        }
                        completions.lock().expect("poisoned").push(ReadCompletion {
                            ticket: job.ticket,
                            path: job.path,
                            content,
                        });
                        in_flight.fetch_sub(1, Ordering::Release);
                    })
                    .expect("spawn helper")
            })
            .collect();
        AsyncFs {
            fs,
            cache,
            jobs: Mutex::new(tx),
            completions,
            in_flight,
            next_ticket: AtomicU64::new(0),
            helpers: handles,
        }
    }

    /// Submits a read and returns its ticket immediately. A cached path
    /// completes at once (its completion is already queued when this
    /// returns); anything else goes to the helper pool. The cache lookup
    /// counts as a hit or miss either way.
    pub fn submit(&self, path: &str) -> ReadTicket {
        let ticket = ReadTicket(self.next_ticket.fetch_add(1, Ordering::Relaxed) + 1);
        if let Some(content) = self.cache.lookup(path) {
            self.completions
                .lock()
                .expect("poisoned")
                .push(ReadCompletion {
                    ticket,
                    path: path.to_string(),
                    content: Some(content),
                });
            return ticket;
        }
        self.in_flight.fetch_add(1, Ordering::Acquire);
        self.jobs
            .lock()
            .expect("poisoned")
            .send(ReadJob {
                ticket,
                path: path.to_string(),
            })
            .expect("helper pool gone");
        ticket
    }

    /// Drains every completion posted so far.
    pub fn poll(&self) -> Vec<ReadCompletion> {
        std::mem::take(&mut *self.completions.lock().expect("poisoned"))
    }

    /// Reads submitted but not yet posted as completions.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Write-through mutation: updates the file's content and drops any
    /// cached copy, so the next read — event loop or helper — serves the
    /// new bytes instead of the stale cache entry.
    pub fn write(&self, path: &str, content: impl Into<String>) {
        self.fs.write(path, content);
        self.cache.invalidate(path);
    }

    /// The shared buffer cache (for stats and serve-path lookups).
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// The wrapped filesystem (synchronous fallback path).
    pub fn fs(&self) -> &SimFs {
        &self.fs
    }
}

impl Drop for AsyncFs {
    fn drop(&mut self) {
        // Replacing the sender closes the channel; helpers see the
        // disconnect and exit.
        let (dead, _) = mpsc::channel();
        *self.jobs.lock().expect("poisoned") = dead;
        for h in self.helpers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Deterministic printable filler of exactly `size` bytes.
fn synth_content(file_idx: usize, size: usize) -> String {
    let pattern = format!("<p>file {file_idx} lorem ipsum dolor sit amet</p>\n");
    let mut s = String::with_capacity(size);
    while s.len() < size {
        let take = (size - s.len()).min(pattern.len());
        s.push_str(&pattern[..take]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SimFs::generate(10, (100, 1000), 42);
        let b = SimFs::generate(10, (100, 1000), 42);
        assert_eq!(a.paths(), b.paths());
        for p in a.paths() {
            assert_eq!(a.read(&p), b.read(&p));
        }
        let c = SimFs::generate(10, (100, 1000), 43);
        assert!(a.paths().iter().any(|p| a.read(p) != c.read(p)));
    }

    #[test]
    fn sizes_are_exact_for_fixed() {
        let fs = SimFs::generate_fixed(5, 256, 1);
        assert_eq!(fs.len(), 5);
        for p in fs.paths() {
            assert_eq!(fs.read(&p).unwrap().len(), 256);
        }
    }

    #[test]
    fn latency_can_be_set_in_place() {
        let mut fs = SimFs::new().with_read_latency(Duration::from_micros(5));
        assert_eq!(fs.read_latency(), Duration::from_micros(5));
        fs.set_read_latency(Duration::from_micros(9));
        assert_eq!(fs.read_latency(), Duration::from_micros(9));
    }

    #[test]
    fn buffer_cache_counts_and_evicts_lru() {
        let c = BufferCache::new(2);
        assert!(c.lookup("/a").is_none());
        c.insert("/a", "A".into());
        c.insert("/b", "B".into());
        assert_eq!(c.lookup("/a").as_deref(), Some("A"));
        // /b is now least recently used; inserting /c evicts it.
        c.insert("/c", "C".into());
        assert_eq!(c.len(), 2);
        assert!(c.lookup("/b").is_none());
        assert_eq!(c.lookup("/c").as_deref(), Some("C"));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        // peek finds entries without counting.
        assert_eq!(c.peek("/a").as_deref(), Some("A"));
        assert_eq!(c.hits() + c.misses(), 4);
    }

    #[test]
    fn async_fs_completes_submitted_reads() {
        let fs = SimFs::new();
        fs.insert("/x", "hello");
        let afs = AsyncFs::new(fs.with_read_latency(Duration::from_micros(200)), 2, 8);
        let t1 = afs.submit("/x");
        let t2 = afs.submit("/nope");
        let mut done = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.len() < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "reads never completed"
            );
            done.extend(afs.poll());
        }
        assert_eq!(afs.in_flight(), 0);
        let by_ticket = |t: ReadTicket| done.iter().find(|c| c.ticket == t).unwrap();
        assert_eq!(by_ticket(t1).content.as_deref(), Some("hello"));
        assert_eq!(by_ticket(t2).content, None);
        // The helper warmed the cache: the repeat read completes at
        // submit time, counted as a hit.
        let hits0 = afs.cache().hits();
        let t3 = afs.submit("/x");
        let again = afs.poll();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].ticket, t3);
        assert_eq!(afs.cache().hits(), hits0 + 1);
    }

    #[test]
    fn lookup_semantics() {
        let fs = SimFs::new();
        assert!(fs.is_empty());
        fs.insert("/a", "hello");
        assert!(fs.exists("/a"));
        assert!(!fs.exists("/b"));
        assert_eq!(fs.read("/a").as_deref(), Some("hello"));
        assert_eq!(fs.read("/b"), None);
    }

    #[test]
    fn fault_flags_are_shared_between_clones_until_forked() {
        let a = SimFs::new();
        a.insert("/f", "one");
        let b = a.clone();
        // Shared disk: a write through either handle is seen by both.
        b.write("/f", "two");
        assert_eq!(a.read("/f").as_deref(), Some("two"));
        // Shared faults: arming either clone fails both — this is how a
        // coordinator's retained handle makes a live worker's reads
        // start failing mid-run.
        b.set_read_failures(true);
        assert_eq!(b.read("/f"), None);
        assert!(b.exists("/f"), "metadata survives read failures");
        assert_eq!(a.read("/f"), None, "clones share the fault flag");
        a.set_read_failures(false);
        assert_eq!(b.read("/f").as_deref(), Some("two"), "and the disarm");
        // Forked fault domain: content still shared, faults private.
        let c = b.fork_faults();
        c.set_read_failures(true);
        assert_eq!(c.read("/f"), None);
        assert_eq!(b.read("/f").as_deref(), Some("two"), "fork isolates");
    }

    #[test]
    fn invalidation_counts_as_eviction_and_write_through_works() {
        let c = BufferCache::new(4);
        c.insert("/a", "stale".into());
        assert!(c.invalidate("/a"));
        assert!(!c.invalidate("/a"), "second invalidation finds nothing");
        assert_eq!(c.evictions(), 1);
        assert!(c.peek("/a").is_none());

        // LRU pressure counts into the same counter.
        let small = BufferCache::new(1);
        small.insert("/x", "X".into());
        small.insert("/y", "Y".into());
        assert_eq!(small.evictions(), 1);

        // End to end through AsyncFs: a cached read, then a write, then
        // the fresh bytes — never the stale cache entry.
        let fs = SimFs::new();
        fs.insert("/doc", "old bytes");
        let afs = AsyncFs::new(fs, 1, 8);
        afs.submit("/doc");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while afs.in_flight() > 0 {
            assert!(std::time::Instant::now() < deadline, "read never completed");
        }
        afs.poll();
        assert_eq!(afs.cache().peek("/doc").as_deref(), Some("old bytes"));
        afs.write("/doc", "new bytes");
        assert!(afs.cache().peek("/doc").is_none(), "stale entry dropped");
        let t = afs.submit("/doc");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let done = loop {
            assert!(std::time::Instant::now() < deadline, "read never completed");
            let done = afs.poll();
            if !done.is_empty() {
                break done;
            }
        };
        assert_eq!(done[0].ticket, t);
        assert_eq!(done[0].content.as_deref(), Some("new bytes"));
    }
}
