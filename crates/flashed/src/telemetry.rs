//! FlashEd telemetry: per-server instruments and fleet-wide scraping.
//!
//! A [`ServerTelemetry`] bundles the observability surface of one server:
//! a lifecycle [`Journal`] (attached to the server's updater so every
//! patch traversal is recorded), a metrics [`Registry`] of request and
//! update-pause instruments, and a [`vm::ExecStatsShared`] mirror the
//! worker publishes its interpreter counters into at quiescent
//! boundaries.
//!
//! A [`FleetTelemetry`] is the coordinator's view of N of those: one
//! shared journal (events worker-tagged), one labelled registry per
//! worker, a coordinator registry carrying fleet-level series — most
//! importantly the live **version-skew gauge**, the number of distinct
//! versions serving at once — and merged Prometheus/JSON scrapes, the
//! same document a Prometheus server scraping N targets would assemble.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use dsu_obs::metrics::LATENCY_BOUNDS_US;
use dsu_obs::{
    aggregate_json, aggregate_text, Counter, Gauge, Histogram, Journal, Registry, Tracer,
};
use vm::{ExecStats, ExecStatsShared};

/// Metric names exposed by every FlashEd server. Public so tests and
/// dashboards don't hard-code strings.
pub mod names {
    /// Requests pulled off the shared queue (counter).
    pub const REQUESTS_PULLED: &str = "flashed_requests_pulled_total";
    /// Responses sent (counter; includes unpulled responses).
    pub const RESPONSES: &str = "flashed_responses_total";
    /// Per-request service time, update pauses excluded (histogram).
    pub const SERVICE_SECONDS: &str = "flashed_request_service_seconds";
    /// Update-pause durations (histogram).
    pub const UPDATE_PAUSE_SECONDS: &str = "flashed_update_pause_seconds";
    /// Requests waiting in the shared queue (gauge, sampled at pulls).
    pub const QUEUE_DEPTH: &str = "flashed_queue_depth";
    /// Requests waiting in this worker's edge inbox (gauge, written by
    /// the edge at routing time and by the worker at pulls — the same
    /// number [`RoutePolicy::LeastLoaded`](crate::RoutePolicy) reads
    /// live).
    pub const EDGE_QUEUE_DEPTH: &str = "flashed_edge_queue_depth";
    /// Requests shed at admission because this worker's inbox was full
    /// (counter).
    pub const EDGE_SHED: &str = "flashed_edge_shed_total";
    /// End-to-end request sojourn: edge admission → response sent, queue
    /// wait included, update pauses excluded (histogram).
    pub const SOJOURN_SECONDS: &str = "flashed_request_sojourn_seconds";
    /// Requests the edge admitted into some worker inbox (coordinator
    /// counter).
    pub const EDGE_ADMITTED: &str = "edge_requests_admitted_total";
    /// Requests the edge shed across all workers (coordinator counter).
    pub const EDGE_SHED_TOTAL: &str = "edge_requests_shed_total";
    /// Interpreter instructions executed (counter, published at
    /// quiescent boundaries).
    pub const VM_INSTRS: &str = "flashed_vm_instructions_total";
    /// Guest update points executed (counter).
    pub const VM_UPDATE_POINTS: &str = "flashed_vm_update_points_total";
    /// Slot calls answered by a warm inline cache (counter, published at
    /// quiescent boundaries).
    pub const VM_IC_HITS: &str = "flashed_vm_ic_hits_total";
    /// Slot calls that (re-)resolved through the indirection table
    /// (counter).
    pub const VM_IC_MISSES: &str = "flashed_vm_ic_misses_total";
    /// Guest calls whose frame buffers came from the recycling pool
    /// (counter).
    pub const VM_POOL_HITS: &str = "flashed_vm_frame_pool_hits_total";
    /// Guest calls that allocated fresh frame buffers (counter).
    pub const VM_POOL_MISSES: &str = "flashed_vm_frame_pool_misses_total";
    /// Buffer-cache hits on the event-loop read path (counter).
    pub const CACHE_HITS: &str = "flashed_cache_hits_total";
    /// Buffer-cache misses — reads that went to a helper (counter).
    pub const CACHE_MISSES: &str = "flashed_cache_misses_total";
    /// Buffer-cache entries dropped: LRU pressure plus write-through
    /// invalidations (counter).
    pub const CACHE_EVICTIONS: &str = "flashed_cache_evictions_total";
    /// Device reads that failed on an existing file (counter) — the
    /// error signal guarded rollouts watch.
    pub const READ_ERRORS: &str = "flashed_read_errors_total";
    /// Reads submitted to helpers and not yet completed (gauge).
    pub const READS_IN_FLIGHT: &str = "flashed_reads_in_flight";
    /// Distinct versions live across the fleet, minus one (gauge).
    pub const VERSION_SKEW: &str = "fleet_version_skew";
    /// Rollouts started (counter).
    pub const ROLLOUTS: &str = "fleet_rollouts_total";
    /// Fleet size (gauge).
    pub const WORKERS: &str = "fleet_workers";
    /// Whether this worker's current incarnation is alive (per-worker
    /// liveness gauge, flipped by the fleet supervisor).
    pub const WORKER_UP: &str = "flashed_worker_up";
    /// Supervised worker restarts completed (coordinator counter).
    pub const WORKER_RESTARTS: &str = "flashed_worker_restarts_total";
    /// Edge failovers handled — down transitions that rerouted a dead
    /// worker's traffic (coordinator counter).
    pub const EDGE_FAILOVER: &str = "flashed_edge_failover_total";
}

/// One server's telemetry bundle. Cheap to clone; clones share every
/// instrument, the journal and the VM-stats mirror.
#[derive(Clone)]
pub struct ServerTelemetry {
    journal: Journal,
    registry: Registry,
    worker: Option<usize>,
    vm_stats: Arc<ExecStatsShared>,
    requests_pulled: Counter,
    responses: Counter,
    service: Histogram,
    sojourn: Histogram,
    update_pause: Histogram,
    queue_depth: Gauge,
    edge_depth: Gauge,
    edge_shed: Counter,
    vm_instrs: Counter,
    vm_update_points: Counter,
    vm_ic_hits: Counter,
    vm_ic_misses: Counter,
    vm_pool_hits: Counter,
    vm_pool_misses: Counter,
    tracer: Option<Tracer>,
    vm_profile: Arc<Mutex<Option<String>>>,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    read_errors: Counter,
    reads_in_flight: Gauge,
    worker_up: Gauge,
}

impl std::fmt::Debug for ServerTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTelemetry")
            .field("worker", &self.worker)
            .field("journal_events", &self.journal.len())
            .finish()
    }
}

impl Default for ServerTelemetry {
    fn default() -> ServerTelemetry {
        ServerTelemetry::new()
    }
}

impl ServerTelemetry {
    /// Telemetry for a standalone server: fresh journal, unlabelled
    /// registry.
    pub fn new() -> ServerTelemetry {
        ServerTelemetry::build(Journal::new(), Registry::new(), None)
    }

    /// Telemetry for fleet worker `worker`: events tagged with the worker
    /// id, every metric labelled `worker="<id>"`, journal shared with the
    /// rest of the fleet.
    pub fn for_worker(journal: Journal, worker: usize) -> ServerTelemetry {
        let registry = Registry::with_labels(&[("worker", &worker.to_string())]);
        ServerTelemetry::build(journal, registry, Some(worker))
    }

    fn build(journal: Journal, registry: Registry, worker: Option<usize>) -> ServerTelemetry {
        let requests_pulled = registry.counter(
            names::REQUESTS_PULLED,
            "requests pulled off the shared queue",
        );
        let responses = registry.counter(names::RESPONSES, "responses sent");
        let service = registry.histogram(
            names::SERVICE_SECONDS,
            "per-request service time (update pauses excluded)",
            &LATENCY_BOUNDS_US,
        );
        let update_pause = registry.histogram(
            names::UPDATE_PAUSE_SECONDS,
            "update-pause durations (gate wait + apply)",
            &LATENCY_BOUNDS_US,
        );
        let sojourn = registry.histogram(
            names::SOJOURN_SECONDS,
            "end-to-end sojourn: edge admission to response (queue wait included)",
            &LATENCY_BOUNDS_US,
        );
        let queue_depth = registry.gauge(
            names::QUEUE_DEPTH,
            "requests waiting in the shared queue (sampled at pulls)",
        );
        let edge_depth = registry.gauge(
            names::EDGE_QUEUE_DEPTH,
            "requests waiting in this worker's edge inbox",
        );
        let edge_shed =
            registry.counter(names::EDGE_SHED, "requests shed at admission (inbox full)");
        let vm_instrs = registry.counter(
            names::VM_INSTRS,
            "interpreter instructions executed (published at quiescent boundaries)",
        );
        let vm_update_points = registry.counter(
            names::VM_UPDATE_POINTS,
            "guest update points executed (published at quiescent boundaries)",
        );
        let vm_ic_hits = registry.counter(
            names::VM_IC_HITS,
            "slot calls answered by a warm inline cache",
        );
        let vm_ic_misses = registry.counter(
            names::VM_IC_MISSES,
            "slot calls that (re-)resolved through the indirection table",
        );
        let vm_pool_hits = registry.counter(
            names::VM_POOL_HITS,
            "guest calls whose frame buffers came from the recycling pool",
        );
        let vm_pool_misses = registry.counter(
            names::VM_POOL_MISSES,
            "guest calls that allocated fresh frame buffers",
        );
        let cache_hits = registry.counter(
            names::CACHE_HITS,
            "buffer-cache hits on the event-loop read path",
        );
        let cache_misses = registry.counter(
            names::CACHE_MISSES,
            "buffer-cache misses (reads that went to a helper)",
        );
        let cache_evictions = registry.counter(
            names::CACHE_EVICTIONS,
            "buffer-cache entries dropped (LRU pressure + invalidations)",
        );
        let read_errors = registry.counter(
            names::READ_ERRORS,
            "device reads that failed on an existing file",
        );
        let reads_in_flight = registry.gauge(
            names::READS_IN_FLIGHT,
            "reads submitted to helpers and not yet completed",
        );
        let worker_up = registry.gauge(
            names::WORKER_UP,
            "whether this worker's current incarnation is alive",
        );
        worker_up.set(1);
        ServerTelemetry {
            journal,
            registry,
            worker,
            vm_stats: Arc::new(ExecStatsShared::new()),
            requests_pulled,
            responses,
            service,
            sojourn,
            update_pause,
            queue_depth,
            edge_depth,
            edge_shed,
            vm_instrs,
            vm_update_points,
            vm_ic_hits,
            vm_ic_misses,
            vm_pool_hits,
            vm_pool_misses,
            tracer: None,
            vm_profile: Arc::new(Mutex::new(None)),
            cache_hits,
            cache_misses,
            cache_evictions,
            read_errors,
            reads_in_flight,
            worker_up,
        }
    }

    /// Attaches a span [`Tracer`]: the server emits request spans, its
    /// updater emits update/phase spans, all into this collector. Fleet
    /// workers share one tracer so intervals are comparable fleet-wide.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> ServerTelemetry {
        self.tracer = Some(tracer);
        self
    }

    /// The attached span tracer, if tracing is on.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Stores the worker's collapsed-stack VM profile (published at
    /// clean shutdown when profiling is on).
    pub fn set_vm_profile(&self, collapsed: String) {
        *self.vm_profile.lock().expect("profile lock") = Some(collapsed);
    }

    /// The last published collapsed-stack VM profile, if any.
    pub fn vm_profile(&self) -> Option<String> {
        self.vm_profile.lock().expect("profile lock").clone()
    }

    /// The lifecycle journal (shared fleet-wide for fleet workers).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The metrics registry backing this server's instruments.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The worker tag stamped onto journal events, if any.
    pub fn worker(&self) -> Option<usize> {
        self.worker
    }

    /// The cross-thread mirror of the server's interpreter counters.
    pub fn vm_stats(&self) -> &Arc<ExecStatsShared> {
        &self.vm_stats
    }

    /// The per-request service-time histogram.
    pub fn service_histogram(&self) -> &Histogram {
        &self.service
    }

    /// The update-pause histogram.
    pub fn update_pause_histogram(&self) -> &Histogram {
        &self.update_pause
    }

    /// The end-to-end sojourn histogram (edge admission → response).
    pub fn sojourn_histogram(&self) -> &Histogram {
        &self.sojourn
    }

    pub(crate) fn record_pull(&self, queue_remaining: usize) {
        self.requests_pulled.inc();
        self.queue_depth.set(queue_remaining as i64);
    }

    /// Publishes this worker's live edge-inbox depth. Written by the
    /// edge at routing time and by the worker at pulls, so the gauge
    /// tracks the same number LeastLoaded routing reads.
    pub(crate) fn set_edge_depth(&self, depth: usize) {
        self.edge_depth.set(depth as i64);
    }

    /// Counts one request shed at admission because this worker's inbox
    /// was full. Recorded immediately — a load generator polling the
    /// scrape mid-run must see sheds as they happen.
    pub(crate) fn record_edge_shed(&self) {
        self.edge_shed.inc();
    }

    pub(crate) fn record_sojourn(&self, dur: Duration) {
        self.sojourn.observe(dur);
    }

    /// Requests shed at this worker's inbox so far.
    pub fn edge_sheds(&self) -> u64 {
        self.edge_shed.get()
    }

    /// Last published edge-inbox depth for this worker.
    pub fn edge_depth(&self) -> i64 {
        self.edge_depth.get()
    }

    pub(crate) fn record_response(&self, service: Option<Duration>) {
        self.responses.inc();
        if let Some(d) = service {
            self.service.observe(d);
        }
    }

    pub(crate) fn record_update_pause(&self, dur: Duration) {
        self.update_pause.observe(dur);
    }

    /// Publishes the interpreter counters (mirror + counter metrics).
    /// Called by the server at quiescent boundaries.
    pub(crate) fn publish_vm_stats(&self, stats: &ExecStats) {
        self.vm_stats.publish(stats);
        self.vm_instrs.store(stats.instrs);
        self.vm_update_points.store(stats.update_points);
        self.vm_ic_hits.store(stats.ic_hits);
        self.vm_ic_misses.store(stats.ic_misses);
        self.vm_pool_hits.store(stats.pool_hits);
        self.vm_pool_misses.store(stats.pool_misses);
    }

    /// Publishes buffer-cache counters and the in-flight-reads gauge.
    /// Called by event-loop servers at quiescent boundaries.
    pub(crate) fn publish_cache(&self, hits: u64, misses: u64, evictions: u64, in_flight: usize) {
        self.cache_hits.store(hits);
        self.cache_misses.store(misses);
        self.cache_evictions.store(evictions);
        self.reads_in_flight.set(in_flight as i64);
    }

    /// Counts one failed device read on an existing file. Recorded
    /// immediately (not at publish boundaries): a health gate polling
    /// mid-rollout must see the error before the worker next quiesces.
    pub(crate) fn record_read_error(&self) {
        self.read_errors.inc();
    }

    /// Buffer-cache hits published so far (zero in blocking mode).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Buffer-cache misses published so far (zero in blocking mode).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.get()
    }

    /// Buffer-cache entries dropped so far (LRU + invalidations).
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.get()
    }

    /// Failed device reads on existing files so far.
    pub fn read_errors(&self) -> u64 {
        self.read_errors.get()
    }

    /// Current liveness reading (1 up, 0 down).
    pub fn worker_up(&self) -> i64 {
        self.worker_up.get()
    }
}

/// The coordinator's telemetry over a whole fleet: shared journal,
/// per-worker registries, fleet-level gauges, merged scrapes.
pub struct FleetTelemetry {
    journal: Journal,
    coordinator: Registry,
    workers: Vec<ServerTelemetry>,
    version_skew: Gauge,
    rollouts: Counter,
    edge_admitted: Counter,
    edge_shed: Counter,
    worker_restarts: Counter,
    edge_failovers: Counter,
    tracer: Option<Tracer>,
}

impl std::fmt::Debug for FleetTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTelemetry")
            .field("workers", &self.workers.len())
            .field("journal_events", &self.journal.len())
            .finish()
    }
}

impl FleetTelemetry {
    /// Builds telemetry for an `n`-worker fleet: one shared journal, one
    /// labelled [`ServerTelemetry`] per worker, a coordinator registry
    /// with the version-skew gauge and rollout counter.
    pub fn new(n: usize) -> FleetTelemetry {
        FleetTelemetry::build(n, 0, Journal::new(), None)
    }

    /// [`FleetTelemetry::new`] plus one fleet-shared span [`Tracer`]:
    /// every worker's [`ServerTelemetry`] carries a clone, so request,
    /// update and rollout spans land in one collector on one epoch —
    /// the precondition for cross-worker latency attribution.
    pub fn with_tracing(n: usize) -> FleetTelemetry {
        FleetTelemetry::build(n, 0, Journal::new(), Some(Tracer::new()))
    }

    /// Builds telemetry whose events land in a caller-supplied `journal`
    /// (possibly write-ahead-backed, possibly shared with other fleets)
    /// and whose worker tags start at `worker_base` — the constructor an
    /// orchestrator uses to give every shard fleet globally unique worker
    /// ids in one stream.
    pub fn shared(
        n: usize,
        worker_base: usize,
        journal: Journal,
        tracer: Option<Tracer>,
    ) -> FleetTelemetry {
        FleetTelemetry::build(n, worker_base, journal, tracer)
    }

    fn build(
        n: usize,
        worker_base: usize,
        journal: Journal,
        tracer: Option<Tracer>,
    ) -> FleetTelemetry {
        let coordinator = Registry::new();
        let version_skew = coordinator.gauge(
            names::VERSION_SKEW,
            "distinct versions live across the fleet, minus one",
        );
        let rollouts = coordinator.counter(names::ROLLOUTS, "rollouts started");
        let edge_admitted = coordinator.counter(
            names::EDGE_ADMITTED,
            "requests the edge admitted into a worker inbox",
        );
        let edge_shed = coordinator.counter(
            names::EDGE_SHED_TOTAL,
            "requests the edge shed across all workers",
        );
        let worker_restarts = coordinator.counter(
            names::WORKER_RESTARTS,
            "supervised worker restarts completed",
        );
        let edge_failovers = coordinator.counter(
            names::EDGE_FAILOVER,
            "edge failovers handled (dead-worker down transitions rerouted)",
        );
        coordinator
            .gauge(names::WORKERS, "fleet size")
            .set(n as i64);
        let workers = (0..n)
            .map(|i| {
                let t = ServerTelemetry::for_worker(journal.clone(), worker_base + i);
                match &tracer {
                    Some(tr) => t.with_tracer(tr.clone()),
                    None => t,
                }
            })
            .collect();
        FleetTelemetry {
            journal,
            coordinator,
            workers,
            version_skew,
            rollouts,
            edge_admitted,
            edge_shed,
            worker_restarts,
            edge_failovers,
            tracer,
        }
    }

    /// The fleet-shared span tracer, if tracing is on.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The fleet-wide lifecycle journal (events worker-tagged).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The coordinator's own registry (skew gauge, rollout counter).
    pub fn coordinator(&self) -> &Registry {
        &self.coordinator
    }

    /// Telemetry bundle of worker `i`.
    pub fn worker(&self, i: usize) -> &ServerTelemetry {
        &self.workers[i]
    }

    /// Fleet size this telemetry was built for.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Every registry, coordinator first — the scrape set.
    pub fn registries(&self) -> Vec<Registry> {
        let mut rs = vec![self.coordinator.clone()];
        rs.extend(self.workers.iter().map(|w| w.registry.clone()));
        rs
    }

    /// One merged Prometheus text exposition over the whole fleet.
    pub fn scrape_text(&self) -> String {
        aggregate_text(&self.registries())
    }

    /// One merged JSON snapshot over the whole fleet.
    pub fn scrape_json(&self) -> String {
        aggregate_json(&self.registries())
    }

    /// The rollout timeline reconstructed from the shared journal.
    pub fn timeline(&self) -> Vec<dsu_obs::RolloutRow> {
        dsu_obs::fleet::rollout_timeline(&self.journal.events())
    }

    /// Current version-skew reading.
    pub fn version_skew(&self) -> i64 {
        self.version_skew.get()
    }

    /// Recomputes the skew gauge from the set of versions currently live
    /// (distinct count minus one; zero for a uniform fleet). Returns the
    /// new reading. The coordinator calls this as workers step through a
    /// rollout.
    pub fn set_live_versions(&self, versions: &[String]) -> i64 {
        let mut distinct: Vec<&String> = versions.iter().collect();
        distinct.sort();
        distinct.dedup();
        let skew = distinct.len().saturating_sub(1) as i64;
        self.version_skew.set(skew);
        skew
    }

    pub(crate) fn record_rollout_start(&self) {
        self.rollouts.inc();
    }

    pub(crate) fn record_edge_admitted(&self) {
        self.edge_admitted.inc();
    }

    pub(crate) fn record_edge_shed_total(&self) {
        self.edge_shed.inc();
    }

    /// Requests the edge admitted into some worker inbox so far.
    pub fn edge_admitted(&self) -> u64 {
        self.edge_admitted.get()
    }

    /// Requests the edge shed (all workers) so far.
    pub fn edge_shed(&self) -> u64 {
        self.edge_shed.get()
    }

    /// Flips worker `i`'s liveness gauge (the supervisor's detection and
    /// rejoin both land here).
    pub(crate) fn set_worker_up(&self, i: usize, up: bool) {
        self.workers[i].worker_up.set(i64::from(up));
    }

    /// Counts one completed supervised restart.
    pub(crate) fn record_worker_restart(&self) {
        self.worker_restarts.inc();
    }

    /// Counts one edge failover (a down transition rerouted).
    pub(crate) fn record_edge_failover(&self) {
        self.edge_failovers.inc();
    }

    /// Supervised restarts completed so far.
    pub fn worker_restarts(&self) -> u64 {
        self.worker_restarts.get()
    }

    /// Edge failovers handled so far.
    pub fn edge_failovers(&self) -> u64 {
        self.edge_failovers.get()
    }

    /// Worker `i`'s liveness reading (1 up, 0 down).
    pub fn worker_up(&self, i: usize) -> i64 {
        self.workers[i].worker_up()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_counts_distinct_versions() {
        let t = FleetTelemetry::new(3);
        assert_eq!(
            t.set_live_versions(&["v1".into(), "v1".into(), "v1".into()]),
            0
        );
        assert_eq!(
            t.set_live_versions(&["v1".into(), "v2".into(), "v1".into()]),
            1
        );
        assert_eq!(t.version_skew(), 1);
    }

    #[test]
    fn fleet_scrape_labels_workers() {
        let t = FleetTelemetry::new(2);
        t.worker(0).record_pull(5);
        t.worker(1).record_pull(4);
        let text = t.scrape_text();
        assert!(
            text.contains("flashed_requests_pulled_total{worker=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("flashed_requests_pulled_total{worker=\"1\"} 1"),
            "{text}"
        );
        assert!(text.contains("fleet_workers 2"), "{text}");
        // One header per metric name despite two worker series.
        assert_eq!(
            text.matches("# TYPE flashed_requests_pulled_total counter")
                .count(),
            1
        );
    }

    #[test]
    fn vm_publish_mirrors_counters() {
        let t = ServerTelemetry::new();
        let stats = ExecStats {
            instrs: 100,
            calls: 10,
            slot_calls: 5,
            ic_hits: 4,
            ic_misses: 1,
            host_calls: 3,
            update_points: 2,
            pool_hits: 9,
            pool_misses: 1,
        };
        t.publish_vm_stats(&stats);
        assert_eq!(t.vm_stats().snapshot().instrs, 100);
        let text = t.registry().prometheus_text();
        assert!(text.contains("flashed_vm_instructions_total 100"), "{text}");
        assert!(text.contains("flashed_vm_update_points_total 2"), "{text}");
        assert!(text.contains("flashed_vm_ic_hits_total 4"), "{text}");
        assert!(text.contains("flashed_vm_ic_misses_total 1"), "{text}");
        assert!(
            text.contains("flashed_vm_frame_pool_hits_total 9"),
            "{text}"
        );
        assert!(
            text.contains("flashed_vm_frame_pool_misses_total 1"),
            "{text}"
        );
    }

    #[test]
    fn tracing_fleet_shares_one_tracer() {
        let t = FleetTelemetry::with_tracing(2);
        let tr = t.tracer().expect("tracing on");
        assert!(t.worker(0).tracer().is_some());
        assert!(t.worker(1).tracer().is_some());
        // Shared, not per-worker: ids allocated through one worker's
        // handle are visible to the fleet handle.
        let id = t.worker(0).tracer().unwrap().next_trace_id();
        assert!(tr.next_trace_id() > id);
        assert!(FleetTelemetry::new(2).tracer().is_none());
    }
}
