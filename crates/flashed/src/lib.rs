//! # flashed — the updateable web server case study
//!
//! The evaluation substrate of "Dynamic Software Updating" (PLDI 2001):
//! *FlashEd*, an updateable web server, dynamically updated through its
//! development history while serving traffic. This crate provides:
//!
//! * five [versions] of the server, written in Popcorn, whose
//!   deltas exercise every change category (new functions, new types and
//!   globals, a representation change with state transformation, bug
//!   fixes);
//! * the [patch stream](patches) between consecutive versions, produced by
//!   the `dsu-core` patch generator;
//! * a simulated [filesystem](fs) and Zipf [workload generator](workload)
//!   (substituting for the paper's real disk and client testbed while
//!   exercising the same guest code path);
//! * a [server harness](server) that boots any version in static or
//!   updateable link mode and applies patches mid-traffic at the guest's
//!   update points;
//! * a multi-worker [fleet](fleet) that shards one request queue across N
//!   worker threads and rolls patches out fleet-wide, simultaneously
//!   (barrier-coordinated), rolling (one worker at a time), or guarded
//!   (canary + health gate + automatic rollback — see [guard]), with a
//!   [fault]-injection layer to prove the self-healing paths work;
//! * a [telemetry] layer: per-server request/pause instruments, a
//!   fleet-wide update-lifecycle journal, and merged Prometheus/JSON
//!   scrapes with a live version-skew gauge.
//!
//! ## Example
//!
//! ```
//! use flashed::{fs::SimFs, server::Server, versions, workload::Workload};
//! use vm::LinkMode;
//!
//! let fs = SimFs::generate_fixed(8, 512, 1);
//! let mut wl = Workload::new(fs.paths(), 1.0, 7);
//! let mut server = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs)?;
//! server.push_requests(wl.batch(20));
//! assert_eq!(server.serve()?, 20);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod edge;
pub mod fault;
pub mod fleet;
pub mod fs;
pub mod guard;
pub mod http;
pub mod patches;
pub mod rng;
pub mod rollout;
pub mod server;
pub mod telemetry;
pub mod versions;
pub mod workload;

pub use edge::{
    AcceptorHandle, Edge, EdgeAdmission, EdgeConfig, EdgeError, HashRing, Inbox, RoutePolicy,
    Routed,
};
pub use fault::{CrashPoint, FaultPlan, InjectedCrash};
pub use fleet::{
    Fleet, FleetConfig, FleetError, RestartReport, RolloutPolicy, SupervisorConfig, WorkerFailure,
    WorkerOverride,
};
pub use fs::{AsyncFs, BufferCache, ReadCompletion, ReadTicket, SimFs};
pub use guard::{
    windowed_quantile, BreachAction, ErrorRateWindow, HealthBreach, HealthGate, PauseSlo,
    RolloutOutcome, RolloutReportCard, StepHealth,
};
pub use http::{parse_request, parse_response, Request, Response};
pub use patches::patch_stream;
pub use rng::Rng;
pub use rollout::{CohortReport, CohortSpec, Orchestrator, OrchestratorReport, RolloutPlan};
pub use server::{
    latency_stats, BootError, Completion, EventLoopConfig, LatencyStats, ServeMode, Server,
    ServerShared,
};
pub use telemetry::{FleetTelemetry, ServerTelemetry};
pub use workload::{Workload, Zipf};

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{LinkMode, Value};

    fn fixture() -> (SimFs, Workload) {
        let fs = SimFs::generate_fixed(16, 256, 11);
        let wl = Workload::new(fs.paths(), 1.0, 23);
        (fs, wl)
    }

    #[test]
    fn v1_serves_correct_content_in_both_modes() {
        for mode in [LinkMode::Static, LinkMode::Updateable] {
            let (fs, mut wl) = fixture();
            let fs_copy = fs.clone();
            let mut s = Server::start(mode, &versions::v1(), "v1", fs).unwrap();
            let reqs = wl.batch(50);
            s.push_requests(reqs.clone());
            assert_eq!(s.serve().unwrap(), 50);
            let done = s.completions();
            assert_eq!(done.len(), 50);
            for (req, c) in reqs.iter().zip(&done) {
                let resp = parse_response(&c.response).expect("well-formed");
                assert_eq!(resp.status, 200);
                let path = req.split(' ').nth(1).unwrap();
                assert_eq!(resp.body, fs_copy.read(path).unwrap());
                assert_eq!(
                    resp.header("content-length").unwrap(),
                    resp.body.len().to_string()
                );
            }
        }
    }

    #[test]
    fn v1_handles_404_and_400() {
        let (fs, _) = fixture();
        let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
        s.push_requests(vec![
            "GET /missing.html HTTP/1.0".to_string(),
            "BOGUS".to_string(),
        ]);
        s.serve().unwrap();
        let done = s.completions();
        assert_eq!(parse_response(&done[0].response).unwrap().status, 404);
        assert_eq!(parse_response(&done[1].response).unwrap().status, 400);
    }

    #[test]
    fn full_patch_stream_applies_mid_traffic() {
        let (fs, mut wl) = fixture();
        let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
        let stream = patch_stream().unwrap();

        // Serve a batch on each version, queueing the next patch while
        // requests are still pending so it applies at an update point.
        for gen in stream {
            s.push_requests(wl.batch(30));
            s.queue_patch(gen.patch.clone());
            s.serve().unwrap();
        }
        // Final state: v5. All four updates applied.
        assert_eq!(s.updater.log().len(), 4);
        s.push_requests(wl.batch(30));
        s.serve().unwrap();

        let done = s.completions();
        assert_eq!(done.len(), 5 * 30);
        // Every response well-formed and 200 (workload has no misses).
        for c in &done {
            assert_eq!(parse_response(&c.response).unwrap().status, 200);
        }
        // v2+ responses carry Content-Type; v1's do not.
        assert!(parse_response(&done[0].response)
            .unwrap()
            .header("content-type")
            .is_none());
        assert_eq!(
            parse_response(&done.last().unwrap().response)
                .unwrap()
                .header("content-type"),
            Some("text/html")
        );
        // v5 logging active.
        assert!(!s.logs().is_empty());
    }

    #[test]
    fn cache_state_survives_the_type_change() {
        let (fs, mut wl) = fixture();
        let mut s = Server::start(LinkMode::Updateable, &versions::v3(), "v3", fs).unwrap();

        // Warm the cache on v3.
        s.push_requests(wl.batch(100));
        s.serve().unwrap();
        let Some(Value::Array(cache)) = s.process().global_value("cache") else {
            panic!("cache global missing")
        };
        let warm_len = cache.borrow().len();
        assert!(warm_len > 0, "cache should be warm");

        // Apply the v3 -> v4 type-changing patch (state transformer runs
        // over the populated cache).
        let gen = dsu_core::PatchGen::new()
            .generate(&versions::v3(), &versions::v4(), "v3", "v4")
            .unwrap();
        s.queue_patch(gen.patch);
        s.apply_pending_now().unwrap();
        let report = &s.updater.log()[0];
        assert_eq!(report.globals_transformed, 1);

        // Cache contents carried across the representation change.
        let Some(Value::Array(cache)) = s.process().global_value("cache") else {
            panic!("cache global missing")
        };
        assert_eq!(cache.borrow().len(), warm_len);

        // New functionality observes hits against the *old* cached data.
        assert_eq!(
            s.process_mut().call("cache_hits_total", vec![]).unwrap(),
            Value::Int(0)
        );
        s.push_requests(wl.batch(50));
        s.serve().unwrap();
        let hits = s
            .process_mut()
            .call("cache_hits_total", vec![])
            .unwrap()
            .as_int();
        assert!(hits > 0, "cached paths must register hits, got {hits}");
    }

    #[test]
    fn v5_fixes_query_string_parsing() {
        let (fs, _) = fixture();
        let paths = fs.paths();
        let target = &paths[0];

        // v4 mis-parses query strings -> 404.
        let mut s4 =
            Server::start(LinkMode::Updateable, &versions::v4(), "v4", fs.clone()).unwrap();
        s4.push_requests(vec![format!("GET {target}?q=1 HTTP/1.0")]);
        s4.serve().unwrap();
        assert_eq!(
            parse_response(&s4.completions()[0].response)
                .unwrap()
                .status,
            404
        );

        // v5 strips the query -> 200.
        let mut s5 = Server::start(LinkMode::Updateable, &versions::v5(), "v5", fs).unwrap();
        s5.push_requests(vec![format!("GET {target}?q=1 HTTP/1.0")]);
        s5.serve().unwrap();
        assert_eq!(
            parse_response(&s5.completions()[0].response)
                .unwrap()
                .status,
            200
        );
    }

    #[test]
    fn served_total_counter_persists_across_updates() {
        let (fs, mut wl) = fixture();
        let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
        s.push_requests(wl.batch(10));
        s.serve().unwrap();
        let gen = dsu_core::PatchGen::new()
            .generate(&versions::v1(), &versions::v2(), "v1", "v2")
            .unwrap();
        s.queue_patch(gen.patch);
        s.push_requests(wl.batch(10));
        s.serve().unwrap();
        assert_eq!(
            s.process().global_value("served_total"),
            Some(Value::Int(20))
        );
    }
}
