//! Fault injection for rollout hardening.
//!
//! Self-healing machinery is only trustworthy if it has been watched
//! healing; this module supplies the injuries. A [`FaultPlan`] describes
//! deliberate per-worker misbehaviour — threaded through
//! [`crate::FleetConfig`]/[`crate::WorkerOverride`] so tests and the
//! `rollout_guard` bench can drive real breach→rollback→converge
//! sequences:
//!
//! * **Pause inflation** ([`FaultPlan::pause_delay`]) — extra sleep inside
//!   every update pause, pushing the worker's pause tail past a
//!   [`crate::guard::PauseSlo`] budget.
//! * **Gate stall** ([`FaultPlan::gate_stall`]) — a sleep long enough that
//!   the coordinator's rollout deadline expires while the worker sits at
//!   its quiescence gate.
//! * **Read errors** ([`FaultPlan::read_errors`]) — the worker's
//!   filesystem handle fails every device read. The flag is a shared
//!   atomic, so [`crate::fs::SimFs::set_read_failures`] can also start
//!   (and stop) the failures on a *live* worker mid-run.
//! * **Crashes** ([`FaultPlan::crash_at`]) — kill the worker thread for
//!   real at a chosen [`CrashPoint`], by panicking with a typed payload
//!   that the fleet boundary maps to
//!   [`crate::fleet::WorkerFailure::Crashed`]. This is what the
//!   supervisor's restart-from-persisted-ring path is tested against.
//!
//! Guest-side faults ride in as *patches* instead: [`trapping_patch`]
//! builds one whose state transformer traps mid-apply, and
//! [`spinning_patch`] one whose transformer burns guest instructions so
//! the transform phase (and therefore the pause) balloons.

use std::sync::Mutex;
use std::time::Duration;

use dsu_core::{Patch, PatchGen, Transformer};

use crate::versions;

/// Where an injected crash kills the worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Inside the update pause's quiescence drain, before any patch
    /// applies — queued ops are still `Enqueued` when the thread dies.
    MidPause,
    /// At the start of the apply pipeline's `transform` phase — the worst
    /// spot: bindings already flipped, state transformation interrupted.
    MidTransform,
    /// In the serve loop right after an update landed, while the cohort
    /// is soaking on the new version.
    MidSoak,
    /// In the steady-state serve loop, between requests.
    Serving,
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CrashPoint::MidPause => "mid-pause",
            CrashPoint::MidTransform => "mid-transform",
            CrashPoint::MidSoak => "mid-soak",
            CrashPoint::Serving => "serving",
        };
        f.write_str(name)
    }
}

/// The panic payload of an injected crash. The fleet's worker boundary
/// downcasts join errors to this to tell a deliberate kill
/// ([`crate::fleet::WorkerFailure::Crashed`]) apart from an accidental
/// panic.
#[derive(Debug, Clone, Copy)]
pub struct InjectedCrash(pub CrashPoint);

/// Atomically consumes a pending crash at `point` from the live plan
/// (one-shot: the point is cleared before the panic so a restarted or
/// retried path cannot re-fire it) and, if one was armed, kills the
/// current thread by panicking with [`InjectedCrash`].
pub(crate) fn crash_if_armed(plan: &Mutex<FaultPlan>, point: CrashPoint) {
    let armed = {
        let mut p = plan.lock().expect("poisoned");
        if p.crash_at == Some(point) {
            p.crash_at = None;
            true
        } else {
            false
        }
    };
    if armed {
        std::panic::panic_any(InjectedCrash(point));
    }
}

/// Deliberate per-worker misbehaviour, injected so tests can prove the
/// guarded-rollout machinery notices and reacts. `Default` injects
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Extra sleep inside every update pause (after in-flight work
    /// quiesces, before any patch applies) — inflates the recorded pause
    /// past a pause-SLO budget.
    pub pause_delay: Option<Duration>,
    /// Sleep at the pause's quiescence gate long enough for a
    /// coordinator's rollout deadline to expire — a worker that "hangs"
    /// mid-rollout.
    pub gate_stall: Option<Duration>,
    /// Fail every device read on this worker's filesystem handle.
    /// Armed at worker boot, and — because the flag is shared — also
    /// flippable on a live worker via
    /// [`crate::fs::SimFs::set_read_failures`] (or
    /// [`crate::Fleet::set_worker_read_failures`]).
    pub read_errors: bool,
    /// Kill the worker thread for real at the given point (one-shot; the
    /// supervisor restarts the worker with the crash disarmed).
    pub crash_at: Option<CrashPoint>,
}

impl FaultPlan {
    /// A plan that injects nothing (same as `Default`).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan injects anything at update pauses.
    pub fn delays_pauses(&self) -> bool {
        self.pause_delay.is_some() || self.gate_stall.is_some()
    }

    /// Sleeps the injected pause delays. Called from the worker's drain
    /// hook, so the wait lands in the pause (and its `drain` phase) like
    /// any genuine quiescence stall would.
    pub(crate) fn sleep(&self) {
        if let Some(d) = self.pause_delay {
            std::thread::sleep(d);
        }
        if let Some(d) = self.gate_stall {
            std::thread::sleep(d);
        }
    }
}

/// The v1→v2 FlashEd patch with a state transformer grafted on that traps
/// (division by zero) mid-apply: the apply aborts in its `transform`
/// phase and `apply_patch`'s snapshot restore puts the process back on
/// v1 — the canonical "bad patch" for abort paths.
///
/// # Panics
///
/// Panics if the checked-in version sources stop generating (covered by
/// tests).
pub fn trapping_patch() -> Patch {
    faulted_patch(
        "v2-trap",
        "fun fault_boom(x: int): int { return x / 0; }",
        "fault_boom",
    )
}

/// The v1→v2 FlashEd patch with a state transformer that spins `iters`
/// guest iterations before returning its input unchanged: the transform
/// phase (and therefore the worker's update pause) balloons, breaching
/// wall-clock pause budgets without any host-side sleep.
///
/// # Panics
///
/// As [`trapping_patch`].
pub fn spinning_patch(iters: u64) -> Patch {
    faulted_patch(
        "v2-slow",
        &format!(
            "fun fault_spin(x: int): int {{\n    var i: int = 0;\n    while (i < {iters}) {{ i = i + 1; }}\n    return x;\n}}"
        ),
        "fault_spin",
    )
}

/// Generates v1→`to_version` where v2 additionally defines `function`
/// (source in `def`), then registers it as the transformer for the
/// `served_total` global so it runs during the apply's transform phase.
fn faulted_patch(to_version: &str, def: &str, function: &str) -> Patch {
    let v2_faulted = format!("{}\n{def}\n", versions::v2());
    let mut generated = PatchGen::new()
        .generate(&versions::v1(), &v2_faulted, "v1", to_version)
        .expect("fault patch generates");
    generated.patch.manifest.transformers.push(Transformer {
        global: "served_total".to_string(),
        function: function.to_string(),
    });
    generated.patch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::SimFs;
    use crate::server::Server;
    use crate::workload::Workload;
    use dsu_core::UpdateError;
    use vm::LinkMode;

    #[test]
    fn trapping_patch_aborts_and_the_server_keeps_its_version() {
        let fs = SimFs::generate_fixed(8, 128, 3);
        let mut wl = Workload::new(fs.paths(), 1.0, 11);
        let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
        s.updater.strict = false;
        s.push_requests(wl.batch(5));
        s.serve().unwrap();

        s.queue_patch(trapping_patch());
        s.apply_pending_now().unwrap();
        let failures = s.updater.failures();
        assert_eq!(failures.len(), 1);
        assert!(matches!(
            failures[0].error,
            UpdateError::Transform { ref function, .. } if function == "fault_boom"
        ));
        assert!(s.updater.log().is_empty(), "nothing applied");

        // The snapshot restore left the server serving v1, correctly.
        s.push_requests(wl.batch(5));
        assert_eq!(s.serve().unwrap(), 5);
    }

    #[test]
    fn spinning_patch_inflates_the_transform_phase() {
        let fs = SimFs::generate_fixed(8, 128, 3);
        let mut s = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
        s.queue_patch(spinning_patch(200_000));
        s.apply_pending_now().unwrap();
        let report = &s.updater.log()[0];
        assert!(
            report.timings.transform > Duration::from_micros(50),
            "spin transformer should dominate: {:?}",
            report.timings
        );
    }
}
