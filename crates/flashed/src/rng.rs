//! A small deterministic PRNG for workload generation and tests.
//!
//! The evaluation needs reproducible pseudo-randomness (document sizes,
//! Zipf request streams, fuzzed test inputs) but no cryptographic
//! strength, so a self-contained SplitMix64 keeps the workspace free of
//! external dependencies. SplitMix64 passes the statistical tests that
//! matter for sampling (equidistribution over 64 bits, no short cycles)
//! and is seedable from a single `u64`.

/// A seedable SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator deterministic in `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `usize` in `lo..=hi`.
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        // Span arithmetic stays in u64: `hi - lo + 1` wraps to 0 for the
        // full-width range, in which case any output is in range.
        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
        if span == 0 {
            return self.next_u64() as usize;
        }
        lo.wrapping_add((self.next_u64() % span) as usize)
    }

    /// Uniform `i64` in `lo..=hi`.
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        // The span of e.g. `i64::MIN..=i64::MAX` overflows i64 (and `+ 1`
        // wraps even u64), so compute it wrapping in u64 and treat a wrap
        // to 0 as "full range".
        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
        if span == 0 {
            return self.next_u64() as i64;
        }
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    /// Panics when `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range_usize(0, items.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = Rng::seed_from_u64(7);
        let mut lo = 0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                lo += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo), "biased: {lo}");
    }

    #[test]
    fn ranges_are_inclusive_and_cover() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range_usize(0, 4)] = true;
            let v = r.gen_range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(r.gen_range_usize(3, 3), 3);
    }

    #[test]
    fn extreme_i64_ranges_do_not_overflow() {
        let mut r = Rng::seed_from_u64(11);
        // Full-width range: span wraps to 0 in u64; any i64 is valid.
        for _ in 0..100 {
            let _ = r.gen_range_i64(i64::MIN, i64::MAX);
        }
        // Wider-than-i64 spans starting at i64::MIN (the `hi - lo` that
        // panics in debug builds before the wrapping fix).
        for _ in 0..100 {
            let v = r.gen_range_i64(i64::MIN, 0);
            assert!(v <= 0);
            let v = r.gen_range_i64(i64::MIN, i64::MAX - 1);
            assert!(v < i64::MAX);
            let v = r.gen_range_i64(-1, i64::MAX);
            assert!(v >= -1);
        }
        // Degenerate extremes.
        assert_eq!(r.gen_range_i64(i64::MIN, i64::MIN), i64::MIN);
        assert_eq!(r.gen_range_i64(i64::MAX, i64::MAX), i64::MAX);
    }

    #[test]
    fn extreme_usize_ranges_do_not_overflow() {
        let mut r = Rng::seed_from_u64(12);
        for _ in 0..100 {
            let _ = r.gen_range_usize(0, usize::MAX);
            let v = r.gen_range_usize(1, usize::MAX);
            assert!(v >= 1);
        }
        assert_eq!(r.gen_range_usize(usize::MAX, usize::MAX), usize::MAX);
    }
}
