//! Staged-cohort rollout orchestration with rollback chains.
//!
//! The [`fleet`](crate::fleet) module owns worker lifecycle and
//! queueing; *driving* a patch across workers lives here. The unit of
//! driving is a [`RolloutPlan`]: an ordered list of [`CohortSpec`]s
//! (cumulative targets — e.g. 1 worker, then 25%, then 100%), an
//! optional [`PauseSlo`] health gate judging every worker after its
//! cohort applies, a soak window between cohorts, and a
//! [`BreachAction`] for when a gate trips. Every classic policy is a
//! degenerate plan:
//!
//! * [`RolloutPolicy::Simultaneous`](crate::RolloutPolicy) — one
//!   all-worker cohort, barrier-coordinated, no gate;
//! * [`RolloutPolicy::Rolling`](crate::RolloutPolicy) — one cohort per
//!   worker, no gate;
//! * [`RolloutPolicy::Guarded`](crate::RolloutPolicy) — one cohort per
//!   worker, canary first, gated.
//!
//! An [`Orchestrator`] drives one plan across *several* shard
//! [`Fleet`]s at once: cohorts are resolved over the global worker set,
//! cross-fleet cohort members rendezvous on one shared barrier, and a
//! configurable **version-skew bound** caps how many distinct versions
//! may serve simultaneously fleet-of-fleets-wide. On a breach, a
//! [`BreachAction::ChainRollBack`] walks every worker's snapshot-ring
//! rollback *chain* (v3 → v2 → v1) down to a target version — undoing
//! earlier rollouts too, not just the breached one. The whole run is
//! summarised in one [`OrchestratorReport`] (merged
//! [`RolloutReportCard`], per-cohort timings, skew peak and window).
//!
//! When the shard fleets share a write-ahead
//! [`Journal`] (see [`FleetConfig::with_journal`](crate::FleetConfig)),
//! an orchestrator killed mid-rollout can be rebuilt and
//! [`Orchestrator::resume`]d: completed cohorts are reconstructed from
//! the persisted `Committed` events and driving restarts at the first
//! incomplete cohort.

use std::collections::HashSet;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use dsu_core::{FleetUpdateReport, Patch, UpdateReport};
use dsu_obs::{Journal, Stage};

use crate::fleet::{Fleet, FleetError};
use crate::guard::{
    windowed_quantile, BreachAction, ErrorRateWindow, HealthBreach, HealthGate, PauseSlo,
    RolloutOutcome, RolloutReportCard, StepHealth,
};

/// How many times a cohort worker's patch is re-driven after a
/// supervised restart withdrew it mid-wait.
const MAX_REDRIVES: usize = 2;

/// How many extra soak windows a marginal step can earn before the
/// rollout advances anyway.
const MAX_SOAK_EXTENDS: usize = 3;

/// One stage of a [`RolloutPlan`], as a *cumulative* coverage target
/// over the global worker set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CohortSpec {
    /// Grow coverage to `n` workers total.
    Count(usize),
    /// Grow coverage to `⌈fraction · workers⌉` total.
    Fraction(f64),
    /// Expand every not-yet-covered worker into its own singleton
    /// cohort (the classic rolling/guarded shape).
    EachRemaining,
}

/// An ordered staged-rollout plan: which workers update together, in
/// what order, judged how, with what reaction to a health breach.
#[derive(Debug, Clone)]
pub struct RolloutPlan {
    /// The worker (global id) updated first — cohort order starts here.
    pub canary: usize,
    /// Cumulative cohort targets, in driving order. Targets that add no
    /// new workers resolve to nothing and are skipped.
    pub cohorts: Vec<CohortSpec>,
    /// How long the orchestrator soaks (keeps serving, watching) between
    /// cohorts.
    pub soak: Duration,
    /// The pause budget each worker is judged against after its cohort
    /// applies; `None` drives ungated (stalls become errors, nothing
    /// else is judged).
    pub gate: Option<PauseSlo>,
    /// Optional end-to-end request-latency SLO, judged over the window
    /// of each stepped worker's sojourn histogram that filled during the
    /// step. Only effective when `gate` is set.
    pub latency_slo: Option<PauseSlo>,
    /// Optional error-rate window (read errors plus sheds, over
    /// completions plus sheds). When set, raw read errors are judged by
    /// ratio instead of tripping on the first one. Only effective when
    /// `gate` is set.
    pub error_budget: Option<ErrorRateWindow>,
    /// What to do when a gated step breaches.
    pub on_breach: BreachAction,
}

impl RolloutPlan {
    /// One all-worker cohort, barrier-coordinated, ungated — the
    /// [`RolloutPolicy::Simultaneous`](crate::RolloutPolicy) shape.
    pub fn simultaneous() -> RolloutPlan {
        RolloutPlan {
            canary: 0,
            cohorts: vec![CohortSpec::Fraction(1.0)],
            soak: Duration::ZERO,
            gate: None,
            latency_slo: None,
            error_budget: None,
            on_breach: BreachAction::Hold,
        }
    }

    /// One cohort per worker, ungated — the
    /// [`RolloutPolicy::Rolling`](crate::RolloutPolicy) shape.
    pub fn rolling() -> RolloutPlan {
        RolloutPlan {
            canary: 0,
            cohorts: vec![CohortSpec::EachRemaining],
            soak: Duration::ZERO,
            gate: None,
            latency_slo: None,
            error_budget: None,
            on_breach: BreachAction::Hold,
        }
    }

    /// One cohort per worker, canary first, every step gated — the
    /// [`RolloutPolicy::Guarded`](crate::RolloutPolicy) shape.
    pub fn guarded(canary: usize, slo: PauseSlo, on_breach: BreachAction) -> RolloutPlan {
        RolloutPlan {
            canary,
            cohorts: vec![CohortSpec::EachRemaining],
            soak: Duration::ZERO,
            gate: Some(slo),
            latency_slo: None,
            error_budget: None,
            on_breach,
        }
    }

    /// The canonical staged shape: 1 worker → 25% → 100%, gated.
    pub fn staged(canary: usize, slo: PauseSlo, on_breach: BreachAction) -> RolloutPlan {
        RolloutPlan {
            canary,
            cohorts: vec![
                CohortSpec::Count(1),
                CohortSpec::Fraction(0.25),
                CohortSpec::Fraction(1.0),
            ],
            soak: Duration::ZERO,
            gate: Some(slo),
            latency_slo: None,
            error_budget: None,
            on_breach,
        }
    }

    /// Sets the between-cohort soak window.
    #[must_use]
    pub fn with_soak(mut self, soak: Duration) -> RolloutPlan {
        self.soak = soak;
        self
    }

    /// Adds an end-to-end request-latency SLO: each gated step's
    /// windowed sojourn quantile must stay within `slo.max`.
    #[must_use]
    pub fn with_latency_slo(mut self, slo: PauseSlo) -> RolloutPlan {
        self.latency_slo = Some(slo);
        self
    }

    /// Adds an error-rate window verdict over each gated step's read
    /// errors and sheds.
    #[must_use]
    pub fn with_error_budget(mut self, window: ErrorRateWindow) -> RolloutPlan {
        self.error_budget = Some(window);
        self
    }

    /// Resolves the plan against an `n`-worker global set into concrete
    /// cohorts of global worker ids: canary first, then id order, each
    /// spec claiming workers up to its cumulative target. Cohorts that
    /// claim nothing are dropped; workers beyond the last target are
    /// never updated (the plan's choice).
    pub fn resolve(&self, n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let canary = self.canary.min(n - 1);
        let order: Vec<usize> = std::iter::once(canary)
            .chain((0..n).filter(|&i| i != canary))
            .collect();
        let mut cohorts = Vec::new();
        let mut taken = 0usize;
        for spec in &self.cohorts {
            match spec {
                CohortSpec::EachRemaining => {
                    while taken < n {
                        cohorts.push(vec![order[taken]]);
                        taken += 1;
                    }
                }
                CohortSpec::Count(k) => {
                    let target = (*k).min(n);
                    if target > taken {
                        cohorts.push(order[taken..target].to_vec());
                        taken = target;
                    }
                }
                CohortSpec::Fraction(f) => {
                    let target = ((f * n as f64).ceil() as usize).min(n);
                    if target > taken {
                        cohorts.push(order[taken..target].to_vec());
                        taken = target;
                    }
                }
            }
        }
        cohorts
    }
}

/// One driven cohort's summary inside an [`OrchestratorReport`].
#[derive(Debug, Clone)]
pub struct CohortReport {
    /// Position in the resolved plan (0-based; stable across resume).
    pub index: usize,
    /// Global worker ids the cohort covered.
    pub workers: Vec<usize>,
    /// The cohort's pooled update pause at the plan's SLO quantile
    /// (maximum pause for ungated plans); `None` when no pause was seen.
    pub pause_at_quantile: Option<Duration>,
    /// Wall-clock from first enqueue to last verdict (soak excluded).
    pub dur: Duration,
    /// Whether the orchestrator soaked after this cohort.
    pub soaked: bool,
    /// Extra soak windows this cohort earned because its latest health
    /// reading was marginal (0 when the soak ended on schedule).
    pub soak_extends: usize,
}

/// Everything one orchestrated rollout left behind.
#[derive(Debug)]
pub struct OrchestratorReport {
    /// The merged per-worker apply/failure/pause report (worker ids are
    /// global across fleets).
    pub fleet_report: FleetUpdateReport,
    /// The guarded-rollout report card (steps, outcome, rollbacks,
    /// final versions — global ids throughout).
    pub card: RolloutReportCard,
    /// Per-cohort summaries, in driving order.
    pub cohorts: Vec<CohortReport>,
    /// How many shard fleets the orchestrator drove.
    pub fleets: usize,
    /// The configured skew bound (`usize::MAX` when unbounded).
    pub skew_bound: usize,
    /// Peak cross-fleet version skew observed (distinct versions − 1).
    pub max_skew: usize,
    /// Total wall-clock during which skew was non-zero (the
    /// mixed-version exposure window).
    pub skew_window: Duration,
    /// The cohort index this run started from (non-zero after
    /// [`Orchestrator::resume`]).
    pub resumed_from: usize,
}

impl OrchestratorReport {
    /// One JSON object (single line) summarising the run; the embedded
    /// `card` is [`RolloutReportCard::to_json`].
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"fleets\":{},\"workers\":{},\"skew_bound\":{},\"max_skew\":{},\
             \"skew_window_us\":{},\"resumed_from\":{},\"cohorts\":[",
            self.fleets,
            self.fleet_report.workers,
            if self.skew_bound == usize::MAX {
                -1i64
            } else {
                self.skew_bound as i64
            },
            self.max_skew,
            self.skew_window.as_micros(),
            self.resumed_from,
        );
        for (i, c) in self.cohorts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"index\":{},\"workers\":{:?},\"pause_at_quantile_us\":{},\
                 \"dur_us\":{},\"soaked\":{},\"soak_extends\":{}}}",
                c.index,
                c.workers,
                c.pause_at_quantile
                    .map(|d| d.as_micros() as i128)
                    .unwrap_or(-1),
                c.dur.as_micros(),
                c.soaked,
                c.soak_extends,
            ));
        }
        s.push_str("],\"card\":");
        s.push_str(&self.card.to_json());
        s.push('}');
        s
    }

    /// A human-readable multi-cohort timeline of the run.
    pub fn render(&self) -> String {
        let (from, to) = &self.card.transition;
        let mut out = format!(
            "staged rollout {from} -> {to}: {} fleets / {} workers",
            self.fleets, self.fleet_report.workers
        );
        if self.skew_bound != usize::MAX {
            out.push_str(&format!(" (skew bound {})", self.skew_bound));
        }
        if self.resumed_from > 0 {
            out.push_str(&format!("  [resumed at cohort {}]", self.resumed_from));
        }
        out.push('\n');
        for c in &self.cohorts {
            let workers = c
                .workers
                .iter()
                .map(|w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ");
            let pause = match c.pause_at_quantile {
                Some(d) => format!("{:.1?}", d),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  cohort {:>2}  [{workers}]  pause@q {pause}  {:.1?}{}\n",
                c.index,
                c.dur,
                match (c.soaked, c.soak_extends) {
                    (false, _) => String::new(),
                    (true, 0) => "  soak".to_string(),
                    (true, n) => format!("  soak (+{n} extends)"),
                },
            ));
        }
        match &self.card.outcome {
            RolloutOutcome::Completed => out.push_str("  outcome: completed\n"),
            RolloutOutcome::Held(b) => out.push_str(&format!("  outcome: HELD — {b}\n")),
            RolloutOutcome::RolledBack(b) => {
                out.push_str(&format!("  outcome: ROLLED BACK — {b}\n"));
                for (w, r) in &self.card.rollbacks {
                    out.push_str(&format!(
                        "    w{w}: {} -> {} undone\n",
                        r.to_version, r.from_version
                    ));
                }
            }
        }
        out.push_str(&format!(
            "  skew: peak {}, mixed-version window {:.1?}; final versions {:?}\n",
            self.max_skew, self.skew_window, self.card.final_versions
        ));
        out
    }
}

/// Mutable skew bookkeeping for one orchestrated run.
struct SkewWatch {
    bound: usize,
    max: usize,
    window: Duration,
    open: Option<Instant>,
}

impl SkewWatch {
    fn new(bound: usize) -> SkewWatch {
        SkewWatch {
            bound,
            max: 0,
            window: Duration::ZERO,
            open: None,
        }
    }

    /// Folds one skew sample in; errors when the bound is crossed.
    fn sample(&mut self, skew: usize) -> Result<(), FleetError> {
        self.max = self.max.max(skew);
        if skew > 0 && self.open.is_none() {
            self.open = Some(Instant::now());
        }
        if skew == 0 {
            if let Some(t0) = self.open.take() {
                self.window += t0.elapsed();
            }
        }
        if skew > self.bound {
            return Err(FleetError::SkewExceeded {
                observed: skew,
                bound: self.bound,
            });
        }
        Ok(())
    }

    fn close(&mut self) {
        if let Some(t0) = self.open.take() {
            self.window += t0.elapsed();
        }
    }
}

/// Drives several shard [`Fleet`]s through one [`RolloutPlan`].
///
/// Worker addressing is *global*: fleet 0's workers come first, then
/// fleet 1's, and so on; plan canaries, cohort members, report cards
/// and health verdicts all speak global ids. For the shared journal to
/// agree, boot each shard with
/// [`FleetConfig::worker_base`](crate::FleetConfig) set to its offset.
pub struct Orchestrator<'a> {
    fleets: &'a [Fleet],
    skew_bound: usize,
}

impl<'a> Orchestrator<'a> {
    /// An orchestrator over `fleets`, with no skew bound.
    pub fn new(fleets: &'a [Fleet]) -> Orchestrator<'a> {
        assert!(
            !fleets.is_empty(),
            "an orchestrator needs at least one fleet"
        );
        Orchestrator {
            fleets,
            skew_bound: usize::MAX,
        }
    }

    /// Caps the cross-fleet version skew (distinct live versions minus
    /// one); a rollout observing more fails with
    /// [`FleetError::SkewExceeded`].
    #[must_use]
    pub fn skew_bound(mut self, bound: usize) -> Orchestrator<'a> {
        self.skew_bound = bound;
        self
    }

    /// Total workers across all shard fleets.
    pub fn worker_count(&self) -> usize {
        self.fleets.iter().map(Fleet::worker_count).sum()
    }

    /// `(fleet index, local worker index)` for a global worker id.
    fn locate(&self, gid: usize) -> (usize, usize) {
        let mut offset = 0;
        for (fi, f) in self.fleets.iter().enumerate() {
            if gid < offset + f.worker_count() {
                return (fi, gid - offset);
            }
            offset += f.worker_count();
        }
        panic!("worker {gid} out of range ({} total)", offset);
    }

    /// Global id offsets per fleet.
    fn offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.fleets.len());
        let mut off = 0;
        for f in self.fleets {
            offsets.push(off);
            off += f.worker_count();
        }
        offsets
    }

    /// Every worker's live version, in global id order.
    pub fn live_versions(&self) -> Vec<String> {
        self.fleets.iter().flat_map(Fleet::live_versions).collect()
    }

    /// Distinct live versions minus one, across every fleet.
    pub fn global_skew(&self) -> usize {
        let mut versions = self.live_versions();
        versions.sort();
        versions.dedup();
        versions.len().saturating_sub(1)
    }

    /// Drives `patch` through the whole `plan`.
    ///
    /// # Errors
    ///
    /// [`FleetError::SkewExceeded`] when the skew bound is crossed; an
    /// ungated stall surfaces as [`FleetError::RolloutStalled`] (nothing
    /// updated) or [`FleetError::PartialRollout`]; a stalled *rollback*
    /// is [`FleetError::RolloutStalled`]. Gated forward stalls are
    /// health breaches, not errors.
    pub fn rollout(
        &self,
        patch: &Patch,
        plan: &RolloutPlan,
    ) -> Result<OrchestratorReport, FleetError> {
        self.rollout_span(patch, plan, 0, None)
    }

    /// Drives `count` cohorts of `plan` starting at resolved-cohort
    /// index `start` (`None` = all remaining). The crash-test seam:
    /// a prefix run, a kill, then [`Orchestrator::resume`].
    ///
    /// # Errors
    ///
    /// As [`Orchestrator::rollout`].
    pub fn rollout_span(
        &self,
        patch: &Patch,
        plan: &RolloutPlan,
        start: usize,
        count: Option<usize>,
    ) -> Result<OrchestratorReport, FleetError> {
        let n = self.worker_count();
        assert!(n > 0, "an orchestrator needs at least one worker");
        let cohorts = plan.resolve(n);
        let end = match count {
            Some(c) => (start + c).min(cohorts.len()),
            None => cohorts.len(),
        };

        for f in self.fleets {
            if let Some(t) = f.telemetry() {
                t.record_rollout_start();
            }
        }
        let traces: Vec<_> = self.fleets.iter().map(Fleet::begin_rollout_trace).collect();

        let mut run = Run {
            orch: self,
            patch,
            plan,
            gate: plan.gate.map(|slo| {
                let mut g = HealthGate::new(slo);
                if let Some(l) = plan.latency_slo {
                    g = g.with_latency_slo(l);
                }
                if let Some(w) = plan.error_budget {
                    g = g.with_error_rate(w);
                }
                g
            }),
            baselines: self.fleets.iter().map(Fleet::baselines).collect(),
            steps: Vec::new(),
            forward: Vec::new(),
            rollbacks: Vec::new(),
            outcome: RolloutOutcome::Completed,
            cohort_reports: Vec::new(),
            skew: SkewWatch::new(self.skew_bound),
        };
        let result = run.drive(&cohorts, start, end);
        run.skew.close();
        // Root spans close on every exit path — a stalled or skew-bounded
        // rollout still leaves complete traces behind.
        for (f, rt) in self.fleets.iter().zip(traces) {
            f.end_rollout_trace(rt, patch);
        }
        let Run {
            baselines,
            steps,
            forward,
            rollbacks,
            outcome,
            cohort_reports,
            skew,
            ..
        } = run;
        result?;

        let offsets = self.offsets();
        let mut fleet_report = FleetUpdateReport {
            workers: n,
            ..FleetUpdateReport::default()
        };
        for ((f, base), off) in self.fleets.iter().zip(&baselines).zip(&offsets) {
            let r = f.collect_report(base);
            fleet_report
                .applied
                .extend(r.applied.into_iter().map(|(i, rep)| (off + i, rep)));
            fleet_report
                .failed
                .extend(r.failed.into_iter().map(|(i, e)| (off + i, e)));
            fleet_report.pauses.extend(r.pauses);
        }

        let card = RolloutReportCard {
            transition: (patch.from_version.clone(), patch.to_version.clone()),
            canary: plan.canary.min(n - 1),
            slo: plan.gate.unwrap_or(PauseSlo {
                quantile: 1.0,
                max: Duration::MAX,
            }),
            steps,
            outcome,
            forward,
            rollbacks,
            final_versions: self.live_versions(),
        };
        Ok(OrchestratorReport {
            fleet_report,
            card,
            cohorts: cohort_reports,
            fleets: self.fleets.len(),
            skew_bound: self.skew_bound,
            max_skew: skew.max,
            skew_window: skew.window,
            resumed_from: start,
        })
    }

    /// Resumes a rollout from the cohort progress persisted in
    /// `journal`: cohorts whose every member already committed
    /// `patch`'s transition are skipped, driving restarts at the first
    /// incomplete one.
    ///
    /// # Errors
    ///
    /// As [`Orchestrator::rollout`].
    pub fn resume(
        &self,
        patch: &Patch,
        plan: &RolloutPlan,
        journal: &Journal,
    ) -> Result<OrchestratorReport, FleetError> {
        let done = Orchestrator::completed_cohorts(journal, patch, plan, self.worker_count());
        self.rollout_span(patch, plan, done, None)
    }

    /// How many leading resolved cohorts of `plan` are fully committed
    /// in `journal` for `patch`'s transition — the resume point after a
    /// crash. Counts stop at the first cohort with any uncommitted
    /// member.
    pub fn completed_cohorts(
        journal: &Journal,
        patch: &Patch,
        plan: &RolloutPlan,
        workers: usize,
    ) -> usize {
        let committed: HashSet<usize> = journal
            .events()
            .iter()
            .filter(|e| {
                e.stage == Stage::Committed
                    && e.from_version == patch.from_version
                    && e.to_version == patch.to_version
            })
            .filter_map(|e| e.worker)
            .collect();
        plan.resolve(workers)
            .iter()
            .take_while(|cohort| cohort.iter().all(|gid| committed.contains(gid)))
            .count()
    }
}

/// One in-flight orchestrated rollout's mutable state. Baselines are
/// owned and mutable: a supervised restart resets a worker's history,
/// so its baseline is re-captured before the patch is re-driven.
struct Run<'o, 'a> {
    orch: &'o Orchestrator<'a>,
    patch: &'o Patch,
    plan: &'o RolloutPlan,
    gate: Option<HealthGate>,
    baselines: Vec<Vec<(usize, usize, usize)>>,
    steps: Vec<StepHealth>,
    forward: Vec<(usize, UpdateReport)>,
    rollbacks: Vec<(usize, UpdateReport)>,
    outcome: RolloutOutcome,
    cohort_reports: Vec<CohortReport>,
    skew: SkewWatch,
}

/// Point-in-time counters opening one health window over a worker:
/// readings taken at step (or soak) start, judged against the current
/// values when the window closes.
struct StepMarks {
    failures: usize,
    read_errors: u64,
    completions: usize,
    sheds: u64,
    sojourn_buckets: Option<Vec<u64>>,
}

impl Run<'_, '_> {
    /// Drives cohorts `start..end`, judging, soaking and reacting to
    /// breaches along the way.
    fn drive(
        &mut self,
        cohorts: &[Vec<usize>],
        start: usize,
        end: usize,
    ) -> Result<(), FleetError> {
        let orch = self.orch;
        for ci in start..end {
            let members = &cohorts[ci];
            let began = Instant::now();
            let breach = self.drive_cohort(members)?;
            let pooled: Vec<Duration> = members
                .iter()
                .flat_map(|&gid| {
                    let (fi, li) = orch.locate(gid);
                    let pauses0 = self.baselines[fi][li].2;
                    orch.fleets[fi].workers()[li]
                        .remote()
                        .pauses()
                        .into_iter()
                        .skip(pauses0)
                        .map(|p| p.dur)
                        .collect::<Vec<_>>()
                })
                .collect();
            let slo = self.plan.gate.unwrap_or(PauseSlo {
                quantile: 1.0,
                max: Duration::MAX,
            });
            let breached = breach.is_some();
            let last = ci + 1 == cohorts.len();
            let soaked = !breached && !last && self.plan.soak > Duration::ZERO;
            self.cohort_reports.push(CohortReport {
                index: ci,
                workers: members.clone(),
                pause_at_quantile: slo.observe(&pooled),
                dur: began.elapsed(),
                soaked,
                soak_extends: 0,
            });
            if let Some(b) = breach {
                self.outcome = match self.plan.on_breach.clone() {
                    BreachAction::Hold => RolloutOutcome::Held(b),
                    BreachAction::RollBack { inverse } => {
                        self.roll_back_forward(inverse.as_deref())?;
                        RolloutOutcome::RolledBack(b)
                    }
                    BreachAction::ChainRollBack { to_version } => {
                        self.chain_roll_back(&to_version)?;
                        RolloutOutcome::RolledBack(b)
                    }
                };
                break;
            }
            if soaked {
                thread::sleep(self.plan.soak);
                let extends = self.extend_soak_while_marginal(members);
                if let Some(report) = self.cohort_reports.last_mut() {
                    report.soak_extends = extends;
                }
            }
        }
        Ok(())
    }

    /// Auto-extends a soak window: while the latest health reading for
    /// the cohort's last-stepped worker is *marginal* (passing, but at
    /// 80%+ of some budget), sleep another soak window and re-measure —
    /// up to [`MAX_SOAK_EXTENDS`] times. Returns the extensions taken.
    fn extend_soak_while_marginal(&mut self, members: &[usize]) -> usize {
        let (Some(gate), Some(&gid)) = (self.gate, members.last()) else {
            return 0;
        };
        let mut marginal = self.steps.last().is_some_and(|h| gate.marginal(h));
        let mut extends = 0;
        while marginal && extends < MAX_SOAK_EXTENDS {
            extends += 1;
            let marks = self.step_marks(gid);
            thread::sleep(self.plan.soak);
            let health = self.window_health(gid, &marks, None);
            marginal = gate.marginal(&health);
        }
        extends
    }

    /// Opens a health window over global worker `gid`: the counter
    /// readings later deltas are taken against.
    fn step_marks(&self, gid: usize) -> StepMarks {
        let (fi, li) = self.orch.locate(gid);
        let fleet = &self.orch.fleets[fi];
        let worker_t = fleet.telemetry().map(|t| t.worker(li));
        StepMarks {
            failures: fleet.workers()[li].remote().failure_count(),
            read_errors: fleet.read_error_counts()[li],
            completions: fleet.shared().completions_len(),
            sheds: worker_t.map_or(0, |t| t.edge_sheds()),
            sojourn_buckets: worker_t.map(|t| t.sojourn_histogram().bucket_counts()),
        }
    }

    /// Closes the window `marks` opened over `gid` into a
    /// [`StepHealth`]. Saturating deltas: a supervised restart can
    /// shrink a worker's history below its marks.
    fn window_health(&self, gid: usize, marks: &StepMarks, pause: Option<Duration>) -> StepHealth {
        let (fi, li) = self.orch.locate(gid);
        let fleet = &self.orch.fleets[fi];
        let worker_t = fleet.telemetry().map(|t| t.worker(li));
        let sojourn_at_quantile = self.gate.and_then(|g| g.latency).and_then(|slo| {
            let t = worker_t?;
            let before = marks.sojourn_buckets.as_ref()?;
            let hist = t.sojourn_histogram();
            windowed_quantile(
                hist.bounds_us(),
                before,
                &hist.bucket_counts(),
                slo.quantile,
            )
        });
        StepHealth {
            worker: gid,
            pause_at_quantile: pause,
            new_failures: fleet.workers()[li]
                .remote()
                .failure_count()
                .saturating_sub(marks.failures),
            new_read_errors: fleet.read_error_counts()[li].saturating_sub(marks.read_errors),
            new_completions: fleet
                .shared()
                .completions_len()
                .saturating_sub(marks.completions),
            queued: fleet.shared().queue_len(),
            sojourn_at_quantile,
            new_sheds: worker_t.map_or(0, |t| t.edge_sheds().saturating_sub(marks.sheds)),
        }
    }

    /// Drives one cohort: barrier gates first (a fast worker must find
    /// its rendezvous installed when it pauses), then every member's
    /// patch enqueued, then each awaited and judged in cohort order.
    ///
    /// A member whose supervisor restarts it mid-wait (the in-flight
    /// patch was withdrawn at death) is *re-driven*: its baseline is
    /// re-captured from the rebooted history and the patch re-enqueued,
    /// up to [`MAX_REDRIVES`] times. A member whose supervisor gave up
    /// on it reads as a stall — a breach under a gate, an error without
    /// one. Returns the first health breach, if any.
    fn drive_cohort(&mut self, members: &[usize]) -> Result<Option<HealthBreach>, FleetError> {
        let orch = self.orch;
        if members.len() > 1 {
            let barrier = Arc::new(Barrier::new(members.len()));
            for &gid in members {
                let (fi, li) = orch.locate(gid);
                let b = Arc::clone(&barrier);
                orch.fleets[fi].workers()[li]
                    .remote()
                    .set_gate(Box::new(move || {
                        b.wait();
                    }));
            }
        }
        let mut marks = Vec::with_capacity(members.len());
        let mut epochs = Vec::with_capacity(members.len());
        let mut remotes = Vec::with_capacity(members.len());
        for &gid in members {
            let (fi, li) = orch.locate(gid);
            marks.push(self.step_marks(gid));
            // Epoch before enqueue: a restart between the two counts as a
            // withdrawal of this patch, never goes unnoticed. The handle
            // we enqueue on is kept: if the seat is swapped mid-wait, the
            // defuse must land on *this* incarnation's queue, not the
            // replacement's.
            epochs.push(orch.fleets[fi].workers()[li].epoch());
            let remote = orch.fleets[fi].workers()[li].remote();
            remote.enqueue(self.patch.clone());
            remotes.push(remote);
        }
        let mut breach: Option<HealthBreach> = None;
        for (mi, &gid) in members.iter().enumerate() {
            let (fi, li) = orch.locate(gid);
            let fleet = &orch.fleets[fi];
            let w = &fleet.workers()[li];
            let mut base = self.baselines[fi][li];
            let mut epoch0 = epochs[mi];
            let mut redrives = 0usize;
            let mut down = false;
            let stalled = loop {
                match fleet.await_worker(w, base, epoch0) {
                    Ok(()) => break false,
                    Err(FleetError::WorkerRestarted { .. }) if redrives < MAX_REDRIVES => {
                        redrives += 1;
                        // Defuse the handle we enqueued on: if the enqueue
                        // raced past the supervisor's withdrawal onto the
                        // dead incarnation's queue, this closes that
                        // lifecycle (`Aborted`) instead of leaving it
                        // dangling `Enqueued`. On the live replacement
                        // it is a no-op (applied) or an explicit
                        // withdrawal ahead of the re-drive below.
                        remotes[mi].cancel_pending("withdrawn after supervised restart");
                        let remote = w.remote();
                        base = (
                            remote.applied_count(),
                            remote.failure_count(),
                            remote.pauses().len(),
                        );
                        self.baselines[fi][li] = base;
                        marks[mi] = self.step_marks(gid);
                        epoch0 = w.epoch();
                        if fleet.worker_version(w) == self.patch.to_version {
                            // The reboot replayed past this transition
                            // already — nothing left to drive.
                            break false;
                        }
                        remote.enqueue(self.patch.clone());
                        remotes[mi] = remote;
                    }
                    Err(FleetError::WorkerDown { .. }) => {
                        down = true;
                        break true;
                    }
                    Err(_) => break true,
                }
            };
            if stalled {
                // The worker never reached its boundary: defuse the
                // handle the patch was enqueued on so it cannot land
                // after the rollout moved on.
                remotes[mi].cancel_pending(if self.gate.is_some() {
                    "guarded rollout: step stalled"
                } else {
                    "rolling rollout stalled"
                });
            } else if self.gate.is_some() {
                // The apply is visible before its pause event (the worker
                // pushes the pause after the op drains); wait for the
                // event so the gate never judges a step pauseless.
                let deadline = Instant::now() + fleet.deadline();
                while w.remote().pauses().len() <= base.2 && Instant::now() < deadline {
                    thread::sleep(Duration::from_micros(50));
                }
            }
            let pauses: Vec<Duration> = w
                .remote()
                .pauses()
                .iter()
                .skip(base.2)
                .map(|p| p.dur)
                .collect();
            let slo = self.plan.gate.unwrap_or(PauseSlo {
                quantile: 1.0,
                max: Duration::MAX,
            });
            let health = self.window_health(gid, &marks[mi], slo.observe(&pauses));
            let verdict = if stalled {
                Err(HealthBreach::Stalled { worker: gid })
            } else {
                match &self.gate {
                    Some(g) => g.check(&health),
                    None => Ok(()),
                }
            };
            self.steps.push(health);
            for r in w.remote().reports().into_iter().skip(base.0) {
                self.forward.push((gid, r));
            }
            fleet.refresh_skew();
            self.skew.sample(orch.global_skew())?;
            if self.gate.is_none() && stalled {
                if down {
                    return Err(FleetError::WorkerDown { worker: gid });
                }
                return Err(self.stall_fallout(gid));
            }
            if let Err(b) = verdict {
                breach.get_or_insert(b);
            }
        }
        Ok(breach)
    }

    /// An ungated stall at global worker `stalled`: withdraw every
    /// still-pending patch (none may land after the coordinator gave
    /// up), then classify — nothing updated keeps the plain stall
    /// error, a mid-rollout stall becomes
    /// [`FleetError::PartialRollout`] (global ids).
    fn stall_fallout(&self, stalled: usize) -> FleetError {
        let offsets = self.orch.offsets();
        let mut updated = Vec::new();
        let mut all = Vec::new();
        for ((f, base), off) in self.orch.fleets.iter().zip(&self.baselines).zip(&offsets) {
            for (w, (applied0, _, _)) in f.workers().iter().zip(base) {
                let gid = off + w.id;
                all.push(gid);
                let remote = w.remote();
                if remote.pending_count() > 0 {
                    remote.cancel_pending("rolling rollout stalled");
                }
                if remote.applied_count() > *applied0 {
                    updated.push(gid);
                }
            }
            f.refresh_skew();
        }
        if updated.is_empty() {
            return FleetError::RolloutStalled { worker: stalled };
        }
        let remaining = all.into_iter().filter(|g| !updated.contains(g)).collect();
        FleetError::PartialRollout { updated, remaining }
    }

    /// Rolls every worker updated *by this rollout* back one hop,
    /// newest first: through `inverse` when supplied (state-preserving
    /// reverse transformers), through each worker's snapshot ring
    /// otherwise.
    fn roll_back_forward(&mut self, inverse: Option<&Patch>) -> Result<(), FleetError> {
        let orch = self.orch;
        let order: Vec<usize> = self.forward.iter().rev().map(|(gid, _)| *gid).collect();
        for gid in order {
            let (fi, li) = orch.locate(gid);
            let fleet = &orch.fleets[fi];
            let w = &fleet.workers()[li];
            let remote = w.remote();
            let base = (
                remote.applied_count(),
                remote.failure_count(),
                remote.pauses().len(),
            );
            let epoch0 = w.epoch();
            match inverse {
                Some(p) => remote.enqueue_rollback(p.clone()),
                None => remote.enqueue_snapshot_rollback(),
            }
            if let Err(e) = fleet.await_worker(w, base, epoch0) {
                // Close the hop's lifecycle on the handle it was enqueued
                // on (the seat may have been swapped under us) before
                // surfacing the failure.
                remote.cancel_pending("rollback interrupted");
                return Err(self.globalize_stall(e, fi));
            }
            if let Some(r) = remote.reports().last() {
                if r.rolled_back {
                    self.rollbacks.push((gid, r.clone()));
                }
            }
            fleet.refresh_skew();
            self.skew.sample(orch.global_skew())?;
        }
        Ok(())
    }

    /// Walks every worker's rollback chain down to `to_version`, newest
    /// global id first — across fleets, and across *earlier* rollouts,
    /// not just the breached one. Workers already at the target are
    /// skipped; workers whose rings don't reach it are left where their
    /// chain ends.
    fn chain_roll_back(&mut self, to_version: &str) -> Result<(), FleetError> {
        let orch = self.orch;
        let offsets = orch.offsets();
        let mut targets: Vec<(usize, usize, usize)> = Vec::new(); // (gid, fi, li)
        for (fi, (f, off)) in orch.fleets.iter().zip(&offsets).enumerate() {
            for w in f.workers() {
                targets.push((off + w.id, fi, w.id));
            }
        }
        targets.sort_by_key(|t| std::cmp::Reverse(t.0));
        for (gid, fi, li) in targets {
            let fleet = &orch.fleets[fi];
            let w = &fleet.workers()[li];
            if fleet.worker_version(w) == to_version {
                continue;
            }
            // Hop count: walk the retained transitions newest-first until
            // one *starts* at the target (that hop lands on it).
            let remote = w.remote();
            let transitions = remote.snapshot_transitions();
            let mut hops = 0usize;
            let mut reachable = false;
            for (from, _to) in transitions.iter().rev() {
                hops += 1;
                if from == to_version {
                    reachable = true;
                    break;
                }
            }
            if !reachable {
                continue;
            }
            let base = (
                remote.applied_count(),
                remote.failure_count(),
                remote.pauses().len(),
            );
            let epoch0 = w.epoch();
            let queued = remote.enqueue_rollback_chain(hops);
            let applied0 = base.0;
            if let Err(e) = fleet.await_worker_n(w, base, queued, epoch0) {
                // As in `roll_back_forward`: defuse the enqueued hops on
                // the handle that holds them before surfacing the error.
                remote.cancel_pending("rollback chain interrupted");
                return Err(self.globalize_stall(e, fi));
            }
            for r in remote.reports().into_iter().skip(applied0) {
                if r.rolled_back {
                    self.rollbacks.push((gid, r));
                }
            }
            fleet.refresh_skew();
            self.skew.sample(orch.global_skew())?;
        }
        Ok(())
    }

    /// Remaps a fleet-local stall error to global worker ids.
    fn globalize_stall(&self, e: FleetError, fleet_idx: usize) -> FleetError {
        match e {
            FleetError::RolloutStalled { worker } => FleetError::RolloutStalled {
                worker: self.orch.offsets()[fleet_idx] + worker,
            },
            e => e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_resolve_to_cumulative_cohorts() {
        let staged = RolloutPlan::staged(
            0,
            PauseSlo::p99(Duration::from_millis(2)),
            BreachAction::Hold,
        );
        assert_eq!(
            staged.resolve(12),
            vec![vec![0], vec![1, 2], vec![3, 4, 5, 6, 7, 8, 9, 10, 11],]
        );
        // Canary-first ordering threads through every cohort.
        assert_eq!(
            RolloutPlan::staged(
                5,
                PauseSlo::p99(Duration::from_millis(2)),
                BreachAction::Hold
            )
            .resolve(8),
            vec![vec![5], vec![0], vec![1, 2, 3, 4, 6, 7]]
        );
        assert_eq!(
            RolloutPlan::simultaneous().resolve(4),
            vec![vec![0, 1, 2, 3]]
        );
        assert_eq!(
            RolloutPlan::rolling().resolve(3),
            vec![vec![0], vec![1], vec![2]]
        );
        // Degenerate sizes: empty set resolves to nothing; targets that
        // add no workers are dropped.
        assert_eq!(
            RolloutPlan::simultaneous().resolve(0),
            Vec::<Vec<usize>>::new()
        );
        assert_eq!(
            RolloutPlan::staged(
                0,
                PauseSlo::p99(Duration::from_millis(2)),
                BreachAction::Hold
            )
            .resolve(1),
            vec![vec![0]]
        );
    }

    #[test]
    fn skew_watch_tracks_peak_and_bound() {
        let mut w = SkewWatch::new(1);
        w.sample(0).unwrap();
        w.sample(1).unwrap();
        assert_eq!(w.max, 1);
        let err = w.sample(2).unwrap_err();
        assert!(matches!(
            err,
            FleetError::SkewExceeded {
                observed: 2,
                bound: 1
            }
        ));
        w.sample(0).unwrap();
        w.close();
        assert!(w.window > Duration::ZERO);
    }
}
