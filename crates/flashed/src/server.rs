//! The FlashEd serving harness: process, host environment, driver.
//!
//! A [`Server`] boots one FlashEd version inside a [`vm::Process`]
//! (static or updateable link mode), wires the guest's externs to the
//! simulated filesystem and request queue, and drives the guest `serve`
//! loop through a [`dsu_core::Updater`] so queued dynamic patches apply at
//! the guest's update points — mid-traffic, exactly like the paper's
//! live-update experiments.
//!
//! Several servers can share one request queue and completion log through
//! a [`ServerShared`]: that is the substrate of the multi-worker fleet in
//! [`crate::fleet`], where each worker thread boots its own `Server`
//! against a common queue.
//!
//! Two serve modes are supported (see [`ServeMode`]):
//!
//! * **Blocking** — the guest pulls one request at a time and every
//!   `fs_read` stalls the loop for the device latency (thread-per-worker).
//! * **Event loop** (AMPED, after the Flash server the paper updated) —
//!   the host admits a window of requests, submits their reads to an
//!   [`AsyncFs`] helper pool, parks each request on its read ticket, and
//!   hands requests to the guest only once their content sits in the
//!   buffer cache. The guest's `fs_read` then completes from cache without
//!   sleeping, so one worker overlaps many device waits. Dynamic updates
//!   remain safe: before a patch binds, the updater's drain hook waits for
//!   every parked read, and that wait is charged to the report's (and
//!   journal's) `drain` phase.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dsu_core::{Patch, PauseLog, RunError, Updater};
use dsu_obs::trace::{Span, SpanKind};
use tal::{FnSig, Ty};
use vm::{LinkMode, Process, Value};

use crate::edge::Inbox;
use crate::fault::FaultPlan;
use crate::fs::{AsyncFs, ReadTicket, SimFs};
use crate::telemetry::ServerTelemetry;

/// How a server drives its guest `serve` loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Thread-per-request-at-a-time: the guest's `fs_read` sleeps the
    /// device latency inline. Concurrency comes only from fleet workers.
    Blocking,
    /// AMPED: the host event loop multiplexes a window of in-flight
    /// requests per worker; helper threads absorb device waits and warm
    /// the buffer cache. Guest-visible behaviour is identical.
    EventLoop(EventLoopConfig),
}

/// Tuning for [`ServeMode::EventLoop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLoopConfig {
    /// Helper threads absorbing device waits (the disk queue depth).
    pub helpers: usize,
    /// Buffer-cache capacity, in entries.
    pub cache_entries: usize,
    /// Maximum requests parked on in-flight reads at once.
    pub max_in_flight: usize,
}

impl Default for EventLoopConfig {
    fn default() -> EventLoopConfig {
        EventLoopConfig {
            helpers: 8,
            cache_entries: 256,
            max_in_flight: 16,
        }
    }
}

/// One completed response with its completion time (relative to server
/// start) — the raw material of the throughput-timeline figure.
#[derive(Debug, Clone)]
pub struct Completion {
    /// When the response was sent, relative to [`Server::start`].
    pub at: Duration,
    /// Per-request service time: from the guest pulling the request off
    /// the queue to it sending the response (the latency a client of this
    /// single-threaded server observes, queueing excluded). Time the guest
    /// spent suspended in a dynamic update between pull and response is
    /// *excluded* — it is reported separately as [`Completion::update_pause`].
    pub service: Duration,
    /// Update-pause time that fell inside this request (between its pull
    /// and its response). Zero for the overwhelming majority of requests;
    /// non-zero exactly for requests in flight across an update point.
    pub update_pause: Duration,
    /// Time the request waited in a routed edge inbox before a worker
    /// pulled it. Zero when the request arrived through the legacy shared
    /// queue (arrival instants are only stamped at the edge). End-to-end
    /// sojourn — what a client of the edge observes — is
    /// `queue_wait + service`.
    pub queue_wait: Duration,
    /// Whether this response was matched to a queue pull. A response
    /// without a matching pull (guest answered without calling
    /// `next_request`) carries no meaningful service time and is excluded
    /// from [`latency_stats`].
    pub pulled: bool,
    /// The pull this response was matched to (ids are per-server, starting
    /// at 1 in pull order). `None` exactly when `pulled` is false. Pulls
    /// and responses are matched FIFO, so a guest that pulls several
    /// requests before answering still gets each response timed from its
    /// own pull.
    pub request_id: Option<u64>,
    /// The raw response text.
    pub response: String,
}

/// Service-time percentiles over a set of completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median service time.
    pub p50: Duration,
    /// 99th-percentile service time.
    pub p99: Duration,
    /// Worst observed service time.
    pub max: Duration,
}

/// Computes service-time percentiles (nearest-rank) over the completions
/// that were matched to a queue pull (see [`Completion::pulled`]).
///
/// # Panics
/// Panics when no completion has a measured service time.
pub fn latency_stats(completions: &[Completion]) -> LatencyStats {
    let mut times: Vec<Duration> = completions
        .iter()
        .filter(|c| c.pulled)
        .map(|c| c.service)
        .collect();
    assert!(!times.is_empty(), "no completions");
    times.sort();
    let rank = |p: f64| -> Duration {
        let idx = ((p * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[idx - 1]
    };
    LatencyStats {
        p50: rank(0.50),
        p99: rank(0.99),
        max: *times.last().expect("non-empty"),
    }
}

/// Boot failures.
#[derive(Debug)]
pub enum BootError {
    /// The version source failed to compile.
    Compile(popcorn::CompileError),
    /// The compiled module failed to load.
    Link(vm::LinkError),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::Compile(e) => write!(f, "boot: {e}"),
            BootError::Link(e) => write!(f, "boot: {e}"),
        }
    }
}

impl std::error::Error for BootError {}

/// The host-side state one or more servers serve from: a request queue,
/// a completion log, a guest log, and a common time epoch.
///
/// Cloning shares the underlying state — clones hand the *same* queue to
/// several workers, which is how the fleet shards traffic. Completion
/// timestamps from every sharing server are on the same clock
/// (`started`), so merged completion streams order correctly.
#[derive(Clone)]
pub struct ServerShared {
    queue: Arc<Mutex<VecDeque<String>>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    logs: Arc<Mutex<Vec<String>>>,
    started: Instant,
}

impl Default for ServerShared {
    fn default() -> ServerShared {
        ServerShared::new()
    }
}

impl fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerShared")
            .field("queued_requests", &self.queue_len())
            .field(
                "completions",
                &self.completions.lock().expect("poisoned").len(),
            )
            .finish()
    }
}

impl ServerShared {
    /// Creates an empty shared state; `started` is now.
    pub fn new() -> ServerShared {
        ServerShared {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            completions: Arc::new(Mutex::new(Vec::new())),
            logs: Arc::new(Mutex::new(Vec::new())),
            started: Instant::now(),
        }
    }

    /// Enqueues client requests.
    pub fn push_requests<I>(&self, requests: I)
    where
        I: IntoIterator<Item = String>,
    {
        self.queue.lock().expect("poisoned").extend(requests);
    }

    /// Requests currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.lock().expect("poisoned").len()
    }

    /// Completed responses so far (in completion order).
    pub fn completions(&self) -> Vec<Completion> {
        self.completions.lock().expect("poisoned").clone()
    }

    /// Number of completed responses so far — constant-time, for pollers
    /// ([`Server::completions`] clones every response).
    pub fn completions_len(&self) -> usize {
        self.completions.lock().expect("poisoned").len()
    }

    /// Drains and returns completed responses.
    pub fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("poisoned"))
    }

    /// Guest log lines (v5's request log).
    pub fn logs(&self) -> Vec<String> {
        self.logs.lock().expect("poisoned").clone()
    }

    /// Time since this shared state was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Pops one request off the ingress queue — the edge acceptor's pull
    /// side (workers routed through an edge never touch this queue).
    pub(crate) fn pop_request(&self) -> Option<String> {
        self.queue.lock().expect("poisoned").pop_front()
    }

    /// Appends a host-synthesized completion (the edge's 503 shed
    /// responses). Recorded with `pulled: false` so latency stats skip it
    /// while drain accounting still counts it.
    pub(crate) fn push_completion(&self, completion: Completion) {
        self.completions.lock().expect("poisoned").push(completion);
    }
}

/// A request admitted by the event loop, either parked on an in-flight
/// read or ready for the guest.
#[derive(Debug, Clone)]
struct Admitted {
    /// Pull id (FIFO-matched to the response; see [`Completion::request_id`]).
    id: u64,
    /// The raw request text, exactly as queued.
    request: String,
    /// When the host pulled it off the shared queue — service time is
    /// measured from here, so time parked on a read counts as service.
    pulled_at: Instant,
    /// When the prefetch read was submitted to a helper (event loop only).
    submitted: Option<Instant>,
    /// When the read completed and the request left the parked table.
    reaped: Option<Instant>,
    /// Time the request sat in a routed edge inbox before admission
    /// (zero for shared-queue arrivals).
    queue_wait: Duration,
}

/// One outstanding pull awaiting its response, with the lifecycle
/// instants the request span is cut from. FIFO-matched to responses.
#[derive(Debug, Clone)]
struct PullRec {
    id: u64,
    /// Pull instant — service time and the request span start here.
    t0: Instant,
    /// Read submission / completion instants (the `park` phase), when the
    /// request went through the event loop and needed a device read.
    submitted: Option<Instant>,
    reaped: Option<Instant>,
    /// When the guest picked the request up (`next_request` returning it).
    guest_at: Instant,
    /// Time the request sat in a routed edge inbox before its pull
    /// (zero for shared-queue arrivals).
    queue_wait: Duration,
}

/// Host-side state of one event-loop server: the async filesystem, the
/// parked-request table, and the ready queue the guest drains.
struct EventState {
    afs: AsyncFs,
    cfg: EventLoopConfig,
    /// Requests parked on an in-flight read, keyed by its ticket.
    parked: Mutex<HashMap<ReadTicket, Admitted>>,
    /// Requests whose read (if any) completed, in admission order.
    ready: Mutex<VecDeque<Admitted>>,
}

impl EventState {
    /// Moves every completed read's request from `parked` to `ready`.
    fn reap(&self) {
        for c in self.afs.poll() {
            if let Some(mut entry) = self.parked.lock().expect("poisoned").remove(&c.ticket) {
                entry.reaped = Some(Instant::now());
                self.ready.lock().expect("poisoned").push_back(entry);
            }
        }
    }

    /// True when no admitted request is waiting anywhere in the loop.
    fn is_idle(&self) -> bool {
        self.parked.lock().expect("poisoned").is_empty()
            && self.ready.lock().expect("poisoned").is_empty()
    }
}

/// The path the guest's handler will read for `req`, if any: the request
/// target when it exists, else its query-stripped form (v5 strips query
/// strings before the lookup). `None` means no device read will happen
/// (bad request, or a miss the guest answers 404 from `fs_exists` alone).
fn prefetch_path(req: &str, fs: &SimFs) -> Option<String> {
    let mut parts = req.split(' ');
    let target = parts.nth(1)?;
    if target.is_empty() {
        return None;
    }
    if fs.exists(target) {
        return Some(target.to_string());
    }
    let stripped = target.split('?').next().unwrap_or(target);
    if stripped != target && fs.exists(stripped) {
        return Some(stripped.to_string());
    }
    None
}

/// Emits one sampled request's span tree: a root `Request` span covering
/// pull → response, with `RequestPhase` children for the AMPED lifecycle
/// — `admit` (instantaneous, at the pull), `park` (read submitted →
/// reaped, when the request waited on a device read), `guest-exec`
/// (guest pickup → response) and `respond` (instantaneous, at the end).
/// Children are clamped into the root, so span invariants hold even when
/// clocks are read across lock boundaries.
fn record_request_spans(tracer: &dsu_obs::Tracer, worker: Option<usize>, rec: &PullRec) {
    let trace = tracer.next_trace_id();
    let root_id = tracer.next_span_id();
    let start = tracer.since_epoch(rec.t0);
    let end = tracer.now().max(start);
    let child = |name: &'static str, s: Duration, e: Duration| Span {
        trace,
        id: tracer.next_span_id(),
        parent: Some(root_id),
        kind: SpanKind::RequestPhase,
        name,
        worker,
        start: s,
        dur: e.saturating_sub(s),
        update: None,
        request: Some(rec.id),
        detail: None,
    };
    let mut spans = vec![Span {
        trace,
        id: root_id,
        parent: None,
        kind: SpanKind::Request,
        name: "request",
        worker,
        start,
        dur: end.saturating_sub(start),
        update: None,
        request: Some(rec.id),
        detail: None,
    }];
    spans.push(child("admit", start, start));
    if let (Some(sub), Some(reap)) = (rec.submitted, rec.reaped) {
        let s = tracer.since_epoch(sub).clamp(start, end);
        let e = tracer.since_epoch(reap).clamp(s, end);
        spans.push(child("park", s, e));
    }
    let g = tracer.since_epoch(rec.guest_at).clamp(start, end);
    spans.push(child("guest-exec", g, end));
    spans.push(child("respond", end, end));
    tracer.record_many(spans);
}

/// A running FlashEd server.
pub struct Server {
    proc: Process,
    /// The dynamic-update driver; queue patches through [`Server::queue_patch`].
    pub updater: Updater,
    shared: ServerShared,
    telemetry: Option<ServerTelemetry>,
    /// Pause-log entries already observed into the pause histogram.
    pauses_seen: usize,
    /// Event-loop state; `None` in [`ServeMode::Blocking`].
    event: Option<Arc<EventState>>,
    /// Pull-id source shared with the `next_request` host closure.
    pull_ids: Arc<AtomicU64>,
    /// The routed edge inbox this worker pulls from, if fronted by an
    /// [`Edge`](crate::Edge). A routed worker never touches the shared
    /// ingress queue — the acceptor is its only producer.
    inbox: Option<Arc<Inbox>>,
    /// The filesystem handle the guest serves from (shared with the host
    /// closures; content is shared with every clone of the same disk).
    fs: Arc<SimFs>,
    /// Injected misbehaviour, shared with the updater's drain hook.
    fault: Arc<Mutex<FaultPlan>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("mode", &self.proc.mode())
            .field("shared", &self.shared)
            .finish()
    }
}

impl Server {
    /// Compiles `src` (a FlashEd version) and boots it over `fs` in the
    /// given link mode, with a private queue and completion log.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    pub fn start(mode: LinkMode, src: &str, version: &str, fs: SimFs) -> Result<Server, BootError> {
        Server::start_shared(mode, src, version, fs, ServerShared::new())
    }

    /// Like [`Server::start`], but serving from caller-provided shared
    /// state — several servers handed clones of the same [`ServerShared`]
    /// pull from one queue and append to one completion log.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    pub fn start_shared(
        mode: LinkMode,
        src: &str,
        version: &str,
        fs: SimFs,
        shared: ServerShared,
    ) -> Result<Server, BootError> {
        Server::start_with(mode, src, version, fs, shared, None)
    }

    /// Like [`Server::start_shared`], with telemetry: the journal is
    /// attached to the updater (every patch lifecycle is recorded), and
    /// the request-path host calls record pull/response counters, queue
    /// depth and service-time observations as they happen.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    pub fn start_with(
        mode: LinkMode,
        src: &str,
        version: &str,
        fs: SimFs,
        shared: ServerShared,
        telemetry: Option<ServerTelemetry>,
    ) -> Result<Server, BootError> {
        Server::start_full(
            mode,
            ServeMode::Blocking,
            src,
            version,
            fs,
            shared,
            telemetry,
        )
    }

    /// The full constructor: like [`Server::start_with`], plus the serve
    /// mode. [`ServeMode::EventLoop`] boots the AMPED machinery — helper
    /// pool, buffer cache, drain hook — around the same guest.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    #[allow(clippy::too_many_arguments)]
    pub fn start_full(
        mode: LinkMode,
        serve_mode: ServeMode,
        src: &str,
        version: &str,
        fs: SimFs,
        shared: ServerShared,
        telemetry: Option<ServerTelemetry>,
    ) -> Result<Server, BootError> {
        Server::start_routed(mode, serve_mode, src, version, fs, shared, telemetry, None)
    }

    /// Like [`Server::start_full`], but pulling from a routed edge
    /// `inbox` instead of the shared ingress queue. The worker's
    /// `next_request` path (and the event loop's admission path) drains
    /// the inbox exclusively; completion timestamps stay on the shared
    /// clock so routed and shared-queue completion streams merge.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    #[allow(clippy::too_many_arguments)]
    pub fn start_routed(
        mode: LinkMode,
        serve_mode: ServeMode,
        src: &str,
        version: &str,
        fs: SimFs,
        shared: ServerShared,
        telemetry: Option<ServerTelemetry>,
        inbox: Option<Arc<Inbox>>,
    ) -> Result<Server, BootError> {
        let module = popcorn::compile(src, "flashed", version, &popcorn::Interface::new())
            .map_err(BootError::Compile)?;
        let mut proc = Process::new(mode);
        let updater = Updater::new();
        if let Some(tel) = &telemetry {
            updater.set_journal(tel.journal().clone(), tel.worker());
            if let Some(tr) = tel.tracer() {
                updater.set_tracer(tr.clone());
            }
        }

        let fs = Arc::new(fs);
        let started = shared.started;
        let event = match serve_mode {
            ServeMode::Blocking => None,
            ServeMode::EventLoop(cfg) => Some(Arc::new(EventState {
                afs: AsyncFs::new((*fs).clone(), cfg.helpers, cfg.cache_entries),
                cfg,
                parked: Mutex::new(HashMap::new()),
                ready: Mutex::new(VecDeque::new()),
            })),
        };
        // Quiescence hook, run and timed at the start of every pause. In
        // event-loop mode it first drains the parked reads (before any
        // patch binds, every in-flight read must complete; the wait lands
        // in the report's and journal's `drain` phase). In both modes it
        // then sleeps any injected pause faults, so an injected stall is
        // charged exactly where a genuine quiescence stall would be.
        let fault = Arc::new(Mutex::new(FaultPlan::default()));
        {
            let fault = Arc::clone(&fault);
            let ev = event.clone();
            updater.set_drain_hook(Box::new(move || {
                if let Some(ev) = &ev {
                    loop {
                        ev.reap();
                        if ev.parked.lock().expect("poisoned").is_empty() {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(20));
                    }
                }
                let plan = *fault.lock().expect("poisoned");
                plan.sleep();
                // The mid-pause crash point lives here: the pause has
                // begun, queued ops are still Enqueued, and the thread
                // dies exactly where a real quiescence-stall watchdog
                // kill would land.
                crate::fault::crash_if_armed(&fault, crate::fault::CrashPoint::MidPause);
            }));
        }

        {
            let fs = Arc::clone(&fs);
            let event = event.clone();
            let tel = telemetry.clone();
            // A read that comes back empty for a file that *exists* is a
            // device error (e.g. an injected `SimFs` read failure); the
            // guest is served an empty body and the error is counted
            // immediately so a mid-rollout health gate sees it.
            let read_or_count = move |fs: &SimFs, path: &str| -> String {
                match fs.read(path) {
                    Some(content) => content,
                    None => {
                        if fs.exists(path) {
                            if let Some(tel) = &tel {
                                tel.record_read_error();
                            }
                        }
                        String::new()
                    }
                }
            };
            proc.register_host(
                "fs_read",
                FnSig::new(vec![Ty::Str], Ty::Str),
                Box::new(move |args| {
                    let path = args[0].as_str();
                    match &event {
                        // Event loop: the admission path prefetched this
                        // file into the buffer cache, so the common case
                        // completes without sleeping. A miss (request
                        // never admitted through the loop) falls back to
                        // the blocking read and warms the cache.
                        Some(ev) => match ev.afs.cache().peek(&path) {
                            Some(content) => Ok(Value::str(&content)),
                            None => {
                                let content = read_or_count(&fs, &path);
                                ev.afs.cache().insert(&path, content.clone());
                                Ok(Value::str(&content))
                            }
                        },
                        None => Ok(Value::str(read_or_count(&fs, &path))),
                    }
                }),
            );
        }
        {
            let fs = Arc::clone(&fs);
            proc.register_host(
                "fs_exists",
                FnSig::new(vec![Ty::Str], Ty::Bool),
                Box::new(move |args| Ok(Value::Bool(fs.exists(&args[0].as_str())))),
            );
        }
        // Outstanding pulls in pull order. `send_response` pops the
        // front, matching responses to pulls FIFO, so several
        // concurrently pulled requests each get timed from their own
        // pull, and a response that was never preceded by a pull is
        // detectable rather than silently timed from some stale (or
        // boot-time) instant.
        let outstanding: Arc<Mutex<VecDeque<PullRec>>> = Arc::new(Mutex::new(VecDeque::new()));
        let pull_ids = Arc::new(AtomicU64::new(0));
        {
            let queue = Arc::clone(&shared.queue);
            let outstanding = Arc::clone(&outstanding);
            let pull_ids = Arc::clone(&pull_ids);
            let event = event.clone();
            let tel = telemetry.clone();
            let inbox = inbox.clone();
            proc.register_host(
                "next_request",
                FnSig::new(vec![], Ty::Str),
                Box::new(move |_| {
                    if let Some(ev) = &event {
                        // Event loop: the guest drains the ready queue;
                        // the pull (id, instant) was assigned at host
                        // admission so time parked on the read counts.
                        let next = ev.ready.lock().expect("poisoned").pop_front();
                        return match next {
                            Some(r) => {
                                outstanding.lock().expect("poisoned").push_back(PullRec {
                                    id: r.id,
                                    t0: r.pulled_at,
                                    submitted: r.submitted,
                                    reaped: r.reaped,
                                    guest_at: Instant::now(),
                                    queue_wait: r.queue_wait,
                                });
                                Ok(Value::str(&r.request))
                            }
                            // Batch drained: back to the host loop.
                            None => Ok(Value::str("")),
                        };
                    }
                    // Routed worker: the inbox is the only request
                    // source — the acceptor owns the shared ingress
                    // queue, so the per-worker pull path never contends
                    // on the fleet-wide lock.
                    let (req, remaining, queue_wait) = match &inbox {
                        Some(inbox) => match inbox.pop() {
                            Some(routed) => (
                                Some(routed.request),
                                inbox.depth(),
                                routed.accepted_at.elapsed(),
                            ),
                            None => (None, 0, Duration::ZERO),
                        },
                        None => {
                            let mut q = queue.lock().expect("poisoned");
                            (q.pop_front(), q.len(), Duration::ZERO)
                        }
                    };
                    match req {
                        Some(req) => {
                            if let Some(tel) = &tel {
                                tel.record_pull(remaining);
                                if inbox.is_some() {
                                    tel.set_edge_depth(remaining);
                                }
                            }
                            let id = pull_ids.fetch_add(1, Ordering::Relaxed) + 1;
                            let now = Instant::now();
                            outstanding.lock().expect("poisoned").push_back(PullRec {
                                id,
                                t0: now,
                                submitted: None,
                                reaped: None,
                                guest_at: now,
                                queue_wait,
                            });
                            Ok(Value::str(&req))
                        }
                        None => Ok(Value::str("")),
                    }
                }),
            );
        }
        {
            let completions = Arc::clone(&shared.completions);
            let outstanding = Arc::clone(&outstanding);
            let pauses: PauseLog = updater.pause_log();
            let tel = telemetry.clone();
            proc.register_host(
                "send_response",
                FnSig::new(vec![Ty::Str], Ty::Unit),
                Box::new(move |args| {
                    let rec = outstanding.lock().expect("poisoned").pop_front();
                    let (service, update_pause, queue_wait, request_id) = match &rec {
                        Some(r) => {
                            let raw = r.t0.elapsed();
                            // Suspensions at update points between this
                            // request's pull and its response are update
                            // pause, not service time.
                            let pause: Duration = pauses
                                .lock()
                                .expect("poisoned")
                                .iter()
                                .filter(|ev| ev.at >= r.t0)
                                .map(|ev| ev.dur)
                                .sum();
                            (raw.saturating_sub(pause), pause, r.queue_wait, Some(r.id))
                        }
                        None => (Duration::ZERO, Duration::ZERO, Duration::ZERO, None),
                    };
                    let pulled = request_id.is_some();
                    if let Some(tel) = &tel {
                        tel.record_response(pulled.then_some(service));
                        if pulled {
                            tel.record_sojourn(queue_wait + service);
                        }
                        if let (Some(r), Some(tracer)) = (&rec, tel.tracer()) {
                            if tracer.sample() {
                                record_request_spans(tracer, tel.worker(), r);
                            }
                        }
                    }
                    completions.lock().expect("poisoned").push(Completion {
                        at: started.elapsed(),
                        service,
                        update_pause,
                        queue_wait,
                        pulled,
                        request_id,
                        response: args[0].as_str().to_string(),
                    });
                    Ok(Value::Unit)
                }),
            );
        }
        {
            let logs = Arc::clone(&shared.logs);
            proc.register_host(
                "log_line",
                FnSig::new(vec![Ty::Str], Ty::Unit),
                Box::new(move |args| {
                    logs.lock()
                        .expect("poisoned")
                        .push(args[0].as_str().to_string());
                    Ok(Value::Unit)
                }),
            );
        }

        proc.load_module(&module).map_err(BootError::Link)?;
        Ok(Server {
            proc,
            updater,
            shared,
            telemetry,
            pauses_seen: 0,
            event,
            pull_ids,
            inbox,
            fs,
            fault,
        })
    }

    /// Enqueues client requests.
    pub fn push_requests<I>(&self, requests: I)
    where
        I: IntoIterator<Item = String>,
    {
        self.shared.push_requests(requests);
    }

    /// Queues a dynamic patch; it applies at the next guest update point
    /// (or immediately on the next [`Server::serve`] boundary).
    pub fn queue_patch(&mut self, patch: Patch) {
        self.updater.enqueue(&mut self.proc, patch);
    }

    /// Runs the guest `serve` loop until the request queue drains.
    /// Returns the number of requests the guest reports having served.
    ///
    /// In [`ServeMode::EventLoop`] this drives the AMPED loop: admit a
    /// window of requests, submit their reads, and hand the guest batches
    /// of ready requests as completions arrive — until queue, parked set
    /// and ready queue are all empty.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the guest traps or a queued patch fails.
    pub fn serve(&mut self) -> Result<i64, RunError> {
        if let Some(ev) = self.event.clone() {
            return self.serve_event(&ev);
        }
        let v = self.updater.run(&mut self.proc, "serve", vec![]);
        // Publish even when the run errored: the counters up to the trap
        // (and any pauses the failed update incurred) are still real.
        self.publish_telemetry();
        Ok(v?.as_int())
    }

    /// The AMPED host loop (see [`ServeMode::EventLoop`]).
    fn serve_event(&mut self, ev: &Arc<EventState>) -> Result<i64, RunError> {
        let mut served = 0i64;
        loop {
            self.admit(ev);
            ev.reap();
            let have_ready = !ev.ready.lock().expect("poisoned").is_empty();
            if have_ready {
                let v = self.updater.run(&mut self.proc, "serve", vec![]);
                match v {
                    Ok(v) => served += v.as_int(),
                    Err(e) => {
                        self.publish_telemetry();
                        return Err(e);
                    }
                }
            }
            // Patches queued without an armed update signal apply here, at
            // the quiescent loop boundary (the guest's own update points
            // cover the mid-batch, signal-armed case). An `Err` can only
            // surface in strict mode; non-strict failures are recorded in
            // the updater's failure log and the loop keeps serving.
            if self.updater.pending_count() > 0 {
                if let Err(e) = self.updater.apply_pending(&mut self.proc) {
                    self.publish_telemetry();
                    return Err(RunError::Update(e));
                }
            }
            let ingress_empty = match &self.inbox {
                Some(inbox) => inbox.depth() == 0,
                None => self.shared.queue_len() == 0,
            };
            if ev.is_idle() && ingress_empty {
                break;
            }
            if !have_ready {
                // Nothing ready yet: wait briefly for helper completions.
                std::thread::sleep(Duration::from_micros(20));
            }
        }
        self.publish_telemetry();
        Ok(served)
    }

    /// Pulls requests off the shared queue into the event loop until the
    /// in-flight window is full or the queue is empty. Requests needing a
    /// device read are parked on their ticket; the rest go straight to
    /// `ready`.
    fn admit(&mut self, ev: &Arc<EventState>) {
        loop {
            if ev.parked.lock().expect("poisoned").len() >= ev.cfg.max_in_flight {
                return;
            }
            // Routed workers admit from their edge inbox; the shared
            // ingress queue belongs to the acceptor.
            let (req, remaining, queue_wait) = match &self.inbox {
                Some(inbox) => match inbox.pop() {
                    Some(routed) => (
                        Some(routed.request),
                        inbox.depth(),
                        routed.accepted_at.elapsed(),
                    ),
                    None => (None, 0, Duration::ZERO),
                },
                None => {
                    let mut q = self.shared.queue.lock().expect("poisoned");
                    (q.pop_front(), q.len(), Duration::ZERO)
                }
            };
            let Some(req) = req else { return };
            if let Some(tel) = &self.telemetry {
                tel.record_pull(remaining);
                if self.inbox.is_some() {
                    tel.set_edge_depth(remaining);
                }
            }
            let mut entry = Admitted {
                id: self.pull_ids.fetch_add(1, Ordering::Relaxed) + 1,
                request: req,
                pulled_at: Instant::now(),
                submitted: None,
                reaped: None,
                queue_wait,
            };
            match prefetch_path(&entry.request, ev.afs.fs()) {
                // No device read will happen (400/404): ready now.
                None => ev.ready.lock().expect("poisoned").push_back(entry),
                Some(path) => {
                    // Park under the lock so a helper completing before
                    // the insert cannot be reaped against an absent key.
                    entry.submitted = Some(Instant::now());
                    let mut parked = ev.parked.lock().expect("poisoned");
                    let ticket = ev.afs.submit(&path);
                    parked.insert(ticket, entry);
                }
            }
        }
    }

    /// Applies queued patches immediately, without waiting for a guest
    /// update point. Only valid while no guest code is running (the
    /// quiescent case: between serve batches).
    ///
    /// # Errors
    ///
    /// Returns the first failing patch's [`dsu_core::UpdateError`].
    pub fn apply_pending_now(&mut self) -> Result<usize, dsu_core::UpdateError> {
        assert!(!self.proc.is_suspended(), "guest is suspended mid-run");
        let r = self.updater.apply_pending(&mut self.proc);
        self.publish_telemetry();
        r
    }

    /// The telemetry bundle this server records into, if any.
    pub fn telemetry(&self) -> Option<&ServerTelemetry> {
        self.telemetry.as_ref()
    }

    /// Arms (or disarms) the guest VM's hot-path profiler (see
    /// [`vm::Profiler`]). Off by default — profiling is opt-in so the
    /// serving hot path stays unobserved unless asked.
    pub fn set_vm_profiling(&mut self, on: bool) {
        self.proc.set_profiling(on);
    }

    /// Collapsed-stack export of the VM profile, and publishes it into
    /// the telemetry bundle's profile slot. `None` when profiling is off.
    pub fn publish_vm_profile(&self) -> Option<String> {
        let collapsed = self.proc.profile_collapsed()?;
        if let Some(tel) = &self.telemetry {
            tel.set_vm_profile(collapsed.clone());
        }
        Some(collapsed)
    }

    /// How this server drives its guest (set at boot).
    pub fn serve_mode(&self) -> ServeMode {
        match &self.event {
            Some(ev) => ServeMode::EventLoop(ev.cfg),
            None => ServeMode::Blocking,
        }
    }

    /// Buffer-cache `(hits, misses)` so far; `None` in blocking mode.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.event
            .as_ref()
            .map(|ev| (ev.afs.cache().hits(), ev.afs.cache().misses()))
    }

    /// Writes `content` to `path` on this server's disk. In event-loop
    /// mode the write goes through the async filesystem so the buffer
    /// cache drops any stale copy (see [`AsyncFs::write`]); clones of the
    /// same disk (other fleet workers) see the new content on their next
    /// device read.
    pub fn write_file(&self, path: &str, content: &str) {
        match &self.event {
            Some(ev) => ev.afs.write(path, content),
            None => self.fs.write(path, content),
        }
    }

    /// Installs (or replaces) this server's injected fault plan. Pause
    /// faults take effect at the next update pause; read-error faults
    /// cannot be injected here — the filesystem handle is fixed at boot
    /// (see [`FaultPlan::read_errors`]).
    pub fn inject_fault(&self, plan: FaultPlan) {
        *self.fault.lock().expect("poisoned") = plan;
    }

    /// The currently injected fault plan.
    pub fn fault_plan(&self) -> FaultPlan {
        *self.fault.lock().expect("poisoned")
    }

    /// The live fault-plan cell itself. A supervisor keeps this so faults
    /// — including one-shot crash points — can be armed on a *running*
    /// worker from another thread, and so a consumed crash point is
    /// observable as cleared.
    pub fn fault_handle(&self) -> Arc<Mutex<FaultPlan>> {
        Arc::clone(&self.fault)
    }

    /// Restores crash-durable updater state saved by
    /// [`dsu_core::Updater::save_state`] (snapshot ring + pending ops)
    /// into this server's updater — the last step of a supervised
    /// restart, after the replay chain has re-applied the worker to its
    /// pre-crash version.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed section; the updater
    /// is left unchanged on error.
    pub fn load_updater_state(&mut self, text: &str) -> Result<usize, String> {
        self.updater.load_state(&mut self.proc, text)
    }

    /// Publishes quiescent-boundary telemetry: mirrors the interpreter
    /// counters into the shared stats and feeds pause-log entries recorded
    /// since the last publish into the update-pause histogram. No-op
    /// without telemetry. Called automatically after [`Server::serve`] and
    /// [`Server::apply_pending_now`]; long-lived embedders (fleet workers)
    /// may also call it on idle ticks.
    pub fn publish_telemetry(&mut self) {
        let Some(tel) = &self.telemetry else { return };
        tel.publish_vm_stats(&self.proc.stats);
        if let Some(ev) = &self.event {
            let cache = ev.afs.cache();
            tel.publish_cache(
                cache.hits(),
                cache.misses(),
                cache.evictions(),
                ev.afs.in_flight(),
            );
        }
        let pauses = self.updater.pauses();
        for p in &pauses[self.pauses_seen..] {
            tel.record_update_pause(p.dur);
        }
        self.pauses_seen = pauses.len();
    }

    /// The shared state this server serves from (clone to share the queue
    /// with another server, or to observe completions from outside).
    pub fn shared(&self) -> ServerShared {
        self.shared.clone()
    }

    /// Cross-thread control over this server's updater/process pair: feed
    /// patches, arm the update signal, observe reports — from a thread
    /// that does not own the server (see [`dsu_core::UpdaterRemote`]).
    pub fn remote(&self) -> dsu_core::UpdaterRemote {
        self.updater.remote(&self.proc)
    }

    /// Completed responses so far (in completion order).
    pub fn completions(&self) -> Vec<Completion> {
        self.shared.completions()
    }

    /// Drains and returns completed responses.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        self.shared.take_completions()
    }

    /// Guest log lines (v5's request log).
    pub fn logs(&self) -> Vec<String> {
        self.shared.logs()
    }

    /// Time since the server started.
    pub fn elapsed(&self) -> Duration {
        self.shared.elapsed()
    }

    /// The underlying process (for interface extraction and inspection).
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable access to the underlying process.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }
}
