//! The FlashEd serving harness: process, host environment, driver.
//!
//! A [`Server`] boots one FlashEd version inside a [`vm::Process`]
//! (static or updateable link mode), wires the guest's externs to the
//! simulated filesystem and request queue, and drives the guest `serve`
//! loop through a [`dsu_core::Updater`] so queued dynamic patches apply at
//! the guest's update points — mid-traffic, exactly like the paper's
//! live-update experiments.
//!
//! Several servers can share one request queue and completion log through
//! a [`ServerShared`]: that is the substrate of the multi-worker fleet in
//! [`crate::fleet`], where each worker thread boots its own `Server`
//! against a common queue.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dsu_core::{Patch, PauseLog, RunError, Updater};
use tal::{FnSig, Ty};
use vm::{LinkMode, Process, Value};

use crate::fs::SimFs;
use crate::telemetry::ServerTelemetry;

/// One completed response with its completion time (relative to server
/// start) — the raw material of the throughput-timeline figure.
#[derive(Debug, Clone)]
pub struct Completion {
    /// When the response was sent, relative to [`Server::start`].
    pub at: Duration,
    /// Per-request service time: from the guest pulling the request off
    /// the queue to it sending the response (the latency a client of this
    /// single-threaded server observes, queueing excluded). Time the guest
    /// spent suspended in a dynamic update between pull and response is
    /// *excluded* — it is reported separately as [`Completion::update_pause`].
    pub service: Duration,
    /// Update-pause time that fell inside this request (between its pull
    /// and its response). Zero for the overwhelming majority of requests;
    /// non-zero exactly for requests in flight across an update point.
    pub update_pause: Duration,
    /// Whether this response was matched to a queue pull. A response
    /// without a matching pull (guest answered without calling
    /// `next_request`) carries no meaningful service time and is excluded
    /// from [`latency_stats`].
    pub pulled: bool,
    /// The raw response text.
    pub response: String,
}

/// Service-time percentiles over a set of completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median service time.
    pub p50: Duration,
    /// 99th-percentile service time.
    pub p99: Duration,
    /// Worst observed service time.
    pub max: Duration,
}

/// Computes service-time percentiles (nearest-rank) over the completions
/// that were matched to a queue pull (see [`Completion::pulled`]).
///
/// # Panics
/// Panics when no completion has a measured service time.
pub fn latency_stats(completions: &[Completion]) -> LatencyStats {
    let mut times: Vec<Duration> = completions
        .iter()
        .filter(|c| c.pulled)
        .map(|c| c.service)
        .collect();
    assert!(!times.is_empty(), "no completions");
    times.sort();
    let rank = |p: f64| -> Duration {
        let idx = ((p * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[idx - 1]
    };
    LatencyStats {
        p50: rank(0.50),
        p99: rank(0.99),
        max: *times.last().expect("non-empty"),
    }
}

/// Boot failures.
#[derive(Debug)]
pub enum BootError {
    /// The version source failed to compile.
    Compile(popcorn::CompileError),
    /// The compiled module failed to load.
    Link(vm::LinkError),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::Compile(e) => write!(f, "boot: {e}"),
            BootError::Link(e) => write!(f, "boot: {e}"),
        }
    }
}

impl std::error::Error for BootError {}

/// The host-side state one or more servers serve from: a request queue,
/// a completion log, a guest log, and a common time epoch.
///
/// Cloning shares the underlying state — clones hand the *same* queue to
/// several workers, which is how the fleet shards traffic. Completion
/// timestamps from every sharing server are on the same clock
/// (`started`), so merged completion streams order correctly.
#[derive(Clone)]
pub struct ServerShared {
    queue: Arc<Mutex<VecDeque<String>>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    logs: Arc<Mutex<Vec<String>>>,
    started: Instant,
}

impl Default for ServerShared {
    fn default() -> ServerShared {
        ServerShared::new()
    }
}

impl fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerShared")
            .field("queued_requests", &self.queue_len())
            .field(
                "completions",
                &self.completions.lock().expect("poisoned").len(),
            )
            .finish()
    }
}

impl ServerShared {
    /// Creates an empty shared state; `started` is now.
    pub fn new() -> ServerShared {
        ServerShared {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            completions: Arc::new(Mutex::new(Vec::new())),
            logs: Arc::new(Mutex::new(Vec::new())),
            started: Instant::now(),
        }
    }

    /// Enqueues client requests.
    pub fn push_requests<I>(&self, requests: I)
    where
        I: IntoIterator<Item = String>,
    {
        self.queue.lock().expect("poisoned").extend(requests);
    }

    /// Requests currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.lock().expect("poisoned").len()
    }

    /// Completed responses so far (in completion order).
    pub fn completions(&self) -> Vec<Completion> {
        self.completions.lock().expect("poisoned").clone()
    }

    /// Number of completed responses so far — constant-time, for pollers
    /// ([`Server::completions`] clones every response).
    pub fn completions_len(&self) -> usize {
        self.completions.lock().expect("poisoned").len()
    }

    /// Drains and returns completed responses.
    pub fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("poisoned"))
    }

    /// Guest log lines (v5's request log).
    pub fn logs(&self) -> Vec<String> {
        self.logs.lock().expect("poisoned").clone()
    }

    /// Time since this shared state was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// A running FlashEd server.
pub struct Server {
    proc: Process,
    /// The dynamic-update driver; queue patches through [`Server::queue_patch`].
    pub updater: Updater,
    shared: ServerShared,
    telemetry: Option<ServerTelemetry>,
    /// Pause-log entries already observed into the pause histogram.
    pauses_seen: usize,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("mode", &self.proc.mode())
            .field("shared", &self.shared)
            .finish()
    }
}

impl Server {
    /// Compiles `src` (a FlashEd version) and boots it over `fs` in the
    /// given link mode, with a private queue and completion log.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    pub fn start(mode: LinkMode, src: &str, version: &str, fs: SimFs) -> Result<Server, BootError> {
        Server::start_shared(mode, src, version, fs, ServerShared::new())
    }

    /// Like [`Server::start`], but serving from caller-provided shared
    /// state — several servers handed clones of the same [`ServerShared`]
    /// pull from one queue and append to one completion log.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    pub fn start_shared(
        mode: LinkMode,
        src: &str,
        version: &str,
        fs: SimFs,
        shared: ServerShared,
    ) -> Result<Server, BootError> {
        Server::start_with(mode, src, version, fs, shared, None)
    }

    /// Like [`Server::start_shared`], with telemetry: the journal is
    /// attached to the updater (every patch lifecycle is recorded), and
    /// the request-path host calls record pull/response counters, queue
    /// depth and service-time observations as they happen.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    pub fn start_with(
        mode: LinkMode,
        src: &str,
        version: &str,
        fs: SimFs,
        shared: ServerShared,
        telemetry: Option<ServerTelemetry>,
    ) -> Result<Server, BootError> {
        let module = popcorn::compile(src, "flashed", version, &popcorn::Interface::new())
            .map_err(BootError::Compile)?;
        let mut proc = Process::new(mode);
        let updater = Updater::new();
        if let Some(tel) = &telemetry {
            updater.set_journal(tel.journal().clone(), tel.worker());
        }

        let fs = Arc::new(fs);
        let started = shared.started;

        {
            let fs = Arc::clone(&fs);
            proc.register_host(
                "fs_read",
                FnSig::new(vec![Ty::Str], Ty::Str),
                Box::new(move |args| {
                    let path = args[0].as_str();
                    Ok(Value::str(fs.read(&path).unwrap_or("")))
                }),
            );
        }
        {
            let fs = Arc::clone(&fs);
            proc.register_host(
                "fs_exists",
                FnSig::new(vec![Ty::Str], Ty::Bool),
                Box::new(move |args| Ok(Value::Bool(fs.exists(&args[0].as_str())))),
            );
        }
        // When the guest pulled the request it is currently serving; None
        // between requests. `send_response` takes it, so a response that
        // was never preceded by a pull is detectable rather than silently
        // timed from some stale (or boot-time) instant.
        let request_pulled: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
        {
            let queue = Arc::clone(&shared.queue);
            let request_pulled = Arc::clone(&request_pulled);
            let tel = telemetry.clone();
            proc.register_host(
                "next_request",
                FnSig::new(vec![], Ty::Str),
                Box::new(move |_| {
                    let (req, remaining) = {
                        let mut q = queue.lock().expect("poisoned");
                        (q.pop_front(), q.len())
                    };
                    if let Some(tel) = &tel {
                        if req.is_some() {
                            tel.record_pull(remaining);
                        }
                    }
                    *request_pulled.lock().expect("poisoned") = Some(Instant::now());
                    Ok(Value::str(req.unwrap_or_default()))
                }),
            );
        }
        {
            let completions = Arc::clone(&shared.completions);
            let request_pulled = Arc::clone(&request_pulled);
            let pauses: PauseLog = updater.pause_log();
            let tel = telemetry.clone();
            proc.register_host(
                "send_response",
                FnSig::new(vec![Ty::Str], Ty::Unit),
                Box::new(move |args| {
                    let pulled_at = request_pulled.lock().expect("poisoned").take();
                    let (service, update_pause, pulled) = match pulled_at {
                        Some(t0) => {
                            let raw = t0.elapsed();
                            // Suspensions at update points between this
                            // request's pull and its response are update
                            // pause, not service time.
                            let pause: Duration = pauses
                                .lock()
                                .expect("poisoned")
                                .iter()
                                .filter(|ev| ev.at >= t0)
                                .map(|ev| ev.dur)
                                .sum();
                            (raw.saturating_sub(pause), pause, true)
                        }
                        None => (Duration::ZERO, Duration::ZERO, false),
                    };
                    if let Some(tel) = &tel {
                        tel.record_response(pulled.then_some(service));
                    }
                    completions.lock().expect("poisoned").push(Completion {
                        at: started.elapsed(),
                        service,
                        update_pause,
                        pulled,
                        response: args[0].as_str().to_string(),
                    });
                    Ok(Value::Unit)
                }),
            );
        }
        {
            let logs = Arc::clone(&shared.logs);
            proc.register_host(
                "log_line",
                FnSig::new(vec![Ty::Str], Ty::Unit),
                Box::new(move |args| {
                    logs.lock()
                        .expect("poisoned")
                        .push(args[0].as_str().to_string());
                    Ok(Value::Unit)
                }),
            );
        }

        proc.load_module(&module).map_err(BootError::Link)?;
        Ok(Server {
            proc,
            updater,
            shared,
            telemetry,
            pauses_seen: 0,
        })
    }

    /// Enqueues client requests.
    pub fn push_requests<I>(&self, requests: I)
    where
        I: IntoIterator<Item = String>,
    {
        self.shared.push_requests(requests);
    }

    /// Queues a dynamic patch; it applies at the next guest update point
    /// (or immediately on the next [`Server::serve`] boundary).
    pub fn queue_patch(&mut self, patch: Patch) {
        self.updater.enqueue(&mut self.proc, patch);
    }

    /// Runs the guest `serve` loop until the request queue drains.
    /// Returns the number of requests the guest reports having served.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the guest traps or a queued patch fails.
    pub fn serve(&mut self) -> Result<i64, RunError> {
        let v = self.updater.run(&mut self.proc, "serve", vec![]);
        // Publish even when the run errored: the counters up to the trap
        // (and any pauses the failed update incurred) are still real.
        self.publish_telemetry();
        Ok(v?.as_int())
    }

    /// Applies queued patches immediately, without waiting for a guest
    /// update point. Only valid while no guest code is running (the
    /// quiescent case: between serve batches).
    ///
    /// # Errors
    ///
    /// Returns the first failing patch's [`dsu_core::UpdateError`].
    pub fn apply_pending_now(&mut self) -> Result<usize, dsu_core::UpdateError> {
        assert!(!self.proc.is_suspended(), "guest is suspended mid-run");
        let r = self.updater.apply_pending(&mut self.proc);
        self.publish_telemetry();
        r
    }

    /// The telemetry bundle this server records into, if any.
    pub fn telemetry(&self) -> Option<&ServerTelemetry> {
        self.telemetry.as_ref()
    }

    /// Publishes quiescent-boundary telemetry: mirrors the interpreter
    /// counters into the shared stats and feeds pause-log entries recorded
    /// since the last publish into the update-pause histogram. No-op
    /// without telemetry. Called automatically after [`Server::serve`] and
    /// [`Server::apply_pending_now`]; long-lived embedders (fleet workers)
    /// may also call it on idle ticks.
    pub fn publish_telemetry(&mut self) {
        let Some(tel) = &self.telemetry else { return };
        tel.publish_vm_stats(&self.proc.stats);
        let pauses = self.updater.pauses();
        for p in &pauses[self.pauses_seen..] {
            tel.record_update_pause(p.dur);
        }
        self.pauses_seen = pauses.len();
    }

    /// The shared state this server serves from (clone to share the queue
    /// with another server, or to observe completions from outside).
    pub fn shared(&self) -> ServerShared {
        self.shared.clone()
    }

    /// Cross-thread control over this server's updater/process pair: feed
    /// patches, arm the update signal, observe reports — from a thread
    /// that does not own the server (see [`dsu_core::UpdaterRemote`]).
    pub fn remote(&self) -> dsu_core::UpdaterRemote {
        self.updater.remote(&self.proc)
    }

    /// Completed responses so far (in completion order).
    pub fn completions(&self) -> Vec<Completion> {
        self.shared.completions()
    }

    /// Drains and returns completed responses.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        self.shared.take_completions()
    }

    /// Guest log lines (v5's request log).
    pub fn logs(&self) -> Vec<String> {
        self.shared.logs()
    }

    /// Time since the server started.
    pub fn elapsed(&self) -> Duration {
        self.shared.elapsed()
    }

    /// The underlying process (for interface extraction and inspection).
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable access to the underlying process.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }
}
