//! The FlashEd serving harness: process, host environment, driver.
//!
//! A [`Server`] boots one FlashEd version inside a [`vm::Process`]
//! (static or updateable link mode), wires the guest's externs to the
//! simulated filesystem and request queue, and drives the guest `serve`
//! loop through a [`dsu_core::Updater`] so queued dynamic patches apply at
//! the guest's update points — mid-traffic, exactly like the paper's
//! live-update experiments.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

use dsu_core::{Patch, RunError, Updater};
use tal::{FnSig, Ty};
use vm::{LinkMode, Process, Value};

use crate::fs::SimFs;

/// One completed response with its completion time (relative to server
/// start) — the raw material of the throughput-timeline figure.
#[derive(Debug, Clone)]
pub struct Completion {
    /// When the response was sent, relative to [`Server::start`].
    pub at: Duration,
    /// Per-request service time: from the guest pulling the request off
    /// the queue to it sending the response (the latency a client of this
    /// single-threaded server observes, queueing excluded).
    pub service: Duration,
    /// The raw response text.
    pub response: String,
}

/// Service-time percentiles over a set of completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median service time.
    pub p50: Duration,
    /// 99th-percentile service time.
    pub p99: Duration,
    /// Worst observed service time.
    pub max: Duration,
}

/// Computes service-time percentiles (nearest-rank).
///
/// # Panics
/// Panics when `completions` is empty.
pub fn latency_stats(completions: &[Completion]) -> LatencyStats {
    assert!(!completions.is_empty(), "no completions");
    let mut times: Vec<Duration> = completions.iter().map(|c| c.service).collect();
    times.sort();
    let rank = |p: f64| -> Duration {
        let idx = ((p * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[idx - 1]
    };
    LatencyStats { p50: rank(0.50), p99: rank(0.99), max: *times.last().expect("non-empty") }
}

/// Boot failures.
#[derive(Debug)]
pub enum BootError {
    /// The version source failed to compile.
    Compile(popcorn::CompileError),
    /// The compiled module failed to load.
    Link(vm::LinkError),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::Compile(e) => write!(f, "boot: {e}"),
            BootError::Link(e) => write!(f, "boot: {e}"),
        }
    }
}

impl std::error::Error for BootError {}

/// A running FlashEd server.
pub struct Server {
    proc: Process,
    /// The dynamic-update driver; queue patches through [`Server::queue_patch`].
    pub updater: Updater,
    queue: Rc<RefCell<VecDeque<String>>>,
    completions: Rc<RefCell<Vec<Completion>>>,
    logs: Rc<RefCell<Vec<String>>>,
    started: Instant,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("mode", &self.proc.mode())
            .field("queued_requests", &self.queue.borrow().len())
            .field("completions", &self.completions.borrow().len())
            .finish()
    }
}

impl Server {
    /// Compiles `src` (a FlashEd version) and boots it over `fs` in the
    /// given link mode.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the source does not compile or link.
    pub fn start(mode: LinkMode, src: &str, version: &str, fs: SimFs) -> Result<Server, BootError> {
        let module = popcorn::compile(src, "flashed", version, &popcorn::Interface::new())
            .map_err(BootError::Compile)?;
        let mut proc = Process::new(mode);

        let fs = Rc::new(fs);
        let queue: Rc<RefCell<VecDeque<String>>> = Rc::new(RefCell::new(VecDeque::new()));
        let completions: Rc<RefCell<Vec<Completion>>> = Rc::new(RefCell::new(Vec::new()));
        let logs: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let started = Instant::now();

        {
            let fs = Rc::clone(&fs);
            proc.register_host(
                "fs_read",
                FnSig::new(vec![Ty::Str], Ty::Str),
                Box::new(move |args| {
                    let path = args[0].as_str();
                    Ok(Value::str(fs.read(&path).unwrap_or("")))
                }),
            );
        }
        {
            let fs = Rc::clone(&fs);
            proc.register_host(
                "fs_exists",
                FnSig::new(vec![Ty::Str], Ty::Bool),
                Box::new(move |args| Ok(Value::Bool(fs.exists(&args[0].as_str())))),
            );
        }
        let request_pulled: Rc<std::cell::Cell<Instant>> =
            Rc::new(std::cell::Cell::new(started));
        {
            let queue = Rc::clone(&queue);
            let request_pulled = Rc::clone(&request_pulled);
            proc.register_host(
                "next_request",
                FnSig::new(vec![], Ty::Str),
                Box::new(move |_| {
                    request_pulled.set(Instant::now());
                    Ok(Value::str(queue.borrow_mut().pop_front().unwrap_or_default()))
                }),
            );
        }
        {
            let completions = Rc::clone(&completions);
            let request_pulled = Rc::clone(&request_pulled);
            proc.register_host(
                "send_response",
                FnSig::new(vec![Ty::Str], Ty::Unit),
                Box::new(move |args| {
                    completions.borrow_mut().push(Completion {
                        at: started.elapsed(),
                        service: request_pulled.get().elapsed(),
                        response: args[0].as_str().to_string(),
                    });
                    Ok(Value::Unit)
                }),
            );
        }
        {
            let logs = Rc::clone(&logs);
            proc.register_host(
                "log_line",
                FnSig::new(vec![Ty::Str], Ty::Unit),
                Box::new(move |args| {
                    logs.borrow_mut().push(args[0].as_str().to_string());
                    Ok(Value::Unit)
                }),
            );
        }

        proc.load_module(&module).map_err(BootError::Link)?;
        Ok(Server {
            proc,
            updater: Updater::new(),
            queue,
            completions,
            logs,
            started,
        })
    }

    /// Enqueues client requests.
    pub fn push_requests<I>(&self, requests: I)
    where
        I: IntoIterator<Item = String>,
    {
        self.queue.borrow_mut().extend(requests);
    }

    /// Queues a dynamic patch; it applies at the next guest update point
    /// (or immediately on the next [`Server::serve`] boundary).
    pub fn queue_patch(&mut self, patch: Patch) {
        self.updater.enqueue(&mut self.proc, patch);
    }

    /// Runs the guest `serve` loop until the request queue drains.
    /// Returns the number of requests the guest reports having served.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the guest traps or a queued patch fails.
    pub fn serve(&mut self) -> Result<i64, RunError> {
        let v = self.updater.run(&mut self.proc, "serve", vec![])?;
        Ok(v.as_int())
    }

    /// Applies queued patches immediately, without waiting for a guest
    /// update point. Only valid while no guest code is running (the
    /// quiescent case: between serve batches).
    ///
    /// # Errors
    ///
    /// Returns the first failing patch's [`dsu_core::UpdateError`].
    pub fn apply_pending_now(&mut self) -> Result<usize, dsu_core::UpdateError> {
        assert!(!self.proc.is_suspended(), "guest is suspended mid-run");
        self.updater.apply_pending(&mut self.proc)
    }

    /// Completed responses so far (in completion order).
    pub fn completions(&self) -> Vec<Completion> {
        self.completions.borrow().clone()
    }

    /// Drains and returns completed responses.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.borrow_mut())
    }

    /// Guest log lines (v5's request log).
    pub fn logs(&self) -> Vec<String> {
        self.logs.borrow().clone()
    }

    /// Time since the server started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The underlying process (for interface extraction and inspection).
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable access to the underlying process.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }
}
